"""Nested spans with simulated-time durations and exact cost attribution.

The tutorial's Part II argument is a *cost* argument: every design exists
because NAND page reads, block erases and the 128 KB RAM bound dominate.
The :class:`Tracer` makes those costs *attributable*: a span brackets one
logical operation (a query, one Tselect probe, one protocol phase), and its
duration and counters are **deltas of the existing cost models** — the
flash chip's :class:`~repro.hardware.flash.FlashStats`, the page cache's
:class:`~repro.storage.cache.CacheStats`, the MCU cycle counters, the
network's :class:`~repro.net.metrics.NetMetrics` — never wall-clock time.

Attribution is exact by construction:

* ``span.counters`` is the *inclusive* delta (children included) of every
  watched counter over the span's lifetime;
* ``span.self_counters`` subtracts the children's inclusive deltas, so
  summing ``self_counters`` over any complete trace reproduces the watched
  totals with no double-count and no leakage (asserted by the test suite);
* flash page reads are additionally *tagged*: the chip reports each page
  number to the innermost open span, so "which pages did this one probe
  touch, and why" is a question the trace can answer.

Span context propagates through a :class:`contextvars.ContextVar`, so spans
opened inside asyncio tasks nest under the span that spawned the task —
the natural cross-hop link for :mod:`repro.net` message flows.

A second context var carries the *distributed* trace context
(:class:`~repro.obs.telemetry.TraceContext`): trace id, the parent span id
on the far side of a wire or process boundary, and the head-sampling
decision. A span opened with no local parent but an active trace context
re-parents under the context's remote parent — that is how one query's
spans line up into a single tree across wire frames and worker processes.
When both sides share one tracer (the in-process simulated network), the
re-parented child's counters are subtracted from the still-open parent the
same way nested spans are, so the attribution invariant survives the hop.

When no tracer is installed (the default), every instrumentation site costs
one ``None`` check and returns a shared no-op span — the "disabled
overhead" budget of the hot paths.
"""

from __future__ import annotations

import contextvars
from typing import Callable, Iterable

#: Innermost open span of the current (task-local) execution context.
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Active distributed trace context (duck-typed: any object with
#: ``trace_id``, ``parent_span_id`` and ``sampled`` attributes — in
#: practice a :class:`repro.obs.telemetry.TraceContext`). ``None`` means
#: "no distributed trace": spans behave exactly as before this existed.
_TRACE: contextvars.ContextVar[object | None] = contextvars.ContextVar(
    "repro_obs_trace_context", default=None
)


def current_trace_context():
    """The active distributed trace context, or None."""
    return _TRACE.get()


def set_trace_context(context):
    """Activate ``context``; returns a token for :func:`reset_trace_context`."""
    return _TRACE.set(context)


def reset_trace_context(token) -> None:
    _TRACE.reset(token)

#: Pages tagged per span before further tags are only counted, not stored.
MAX_TAGGED_PAGES = 4096


class Span:
    """One timed, counted operation; nested spans form the trace tree."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "process",
        "attrs",
        "start_us",
        "end_us",
        "track",
        "pages",
        "pages_overflow",
        "links",
        "counters",
        "self_counters",
        "levels",
        "_start_counts",
        "_child_counts",
        "_remote_parent",
        "_token",
        "_closed",
    )

    def __init__(
        self, tracer: "Tracer", name: str, parent: "Span | None", attrs: dict
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = tracer._next_span_id()
        self.process = None
        self._remote_parent = False
        context = _TRACE.get()
        self.trace_id = (
            (context.trace_id or None) if context is not None else None
        )
        if parent is not None:
            self.parent_id = parent.span_id
        else:
            self.parent_id = None
            if context is not None and context.parent_span_id:
                # No local parent but a distributed one: link under the
                # span that submitted the frame / shard we now serve.
                self.parent_id = context.parent_span_id
                self._remote_parent = True
        self.attrs = attrs
        self.start_us = 0.0
        self.end_us = 0.0
        self.track = 0
        self.pages: list[int] = []
        self.pages_overflow = 0
        self.links: list[int] = []
        self.counters: dict[str, float] = {}
        self.self_counters: dict[str, float] = {}
        self.levels: dict[str, float] = {}
        self._start_counts: dict[str, float] = {}
        self._child_counts: dict[str, float] = {}
        self._token = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on an open span."""
        self.attrs.update(attrs)
        return self

    def link(self, span_id: int | None) -> "Span":
        """Record a causal link to another span (e.g. across a network hop)."""
        if span_id is not None:
            self.links.append(span_id)
        return self

    def tag_page(self, page_no: int) -> None:
        """Attribute one flash page read to this span."""
        if len(self.pages) < MAX_TAGGED_PAGES:
            self.pages.append(page_no)
        else:
            self.pages_overflow += 1

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.start_us = tracer.now_us()
        self._start_counts = tracer._collect_counts()
        self.track = tracer._current_track()
        self._token = _CURRENT.set(self)
        tracer._open[self.span_id] = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        tracer = self.tracer
        tracer._open.pop(self.span_id, None)
        self.end_us = tracer.now_us()
        end_counts = tracer._collect_counts()
        start = self._start_counts
        counters = {}
        for key, value in end_counts.items():
            delta = value - start.get(key, 0.0)
            if delta:
                counters[key] = delta
        self.counters = counters
        child = self._child_counts
        self.self_counters = {
            key: value - child.get(key, 0.0)
            for key, value in counters.items()
            if value - child.get(key, 0.0)
        }
        self.levels = tracer._collect_levels()
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        parent = _CURRENT.get()
        if parent is None and self._remote_parent:
            # Re-parented across a wire hop: if the submitting span is
            # still open on this tracer (in-process simulated network),
            # charge our inclusive deltas to it like any nested child —
            # both sides watched the same counters, so without this the
            # parent's self_counters would double-count ours.
            parent = tracer._open.get(self.parent_id)
        if parent is not None and parent.tracer is tracer:
            accum = parent._child_counts
            for key, value in counters.items():
                accum[key] = accum.get(key, 0.0) + value
        tracer._record(self)


class NullSpan:
    """Shared no-op span returned when tracing is disabled."""

    __slots__ = ()

    span_id = None
    parent_id = None
    trace_id = None
    process = None
    pages: tuple = ()
    links: tuple = ()
    counters: dict = {}
    self_counters: dict = {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> "NullSpan":
        return self

    def link(self, span_id) -> "NullSpan":
        return self

    def tag_page(self, page_no: int) -> None:
        return None

    def close(self) -> None:
        return None


NULL_SPAN = NullSpan()


class Tracer:
    """Produces spans whose costs come from watched simulation counters.

    Counter *sources* are callables returning ``{name: number}`` snapshots
    of monotonic counters (flash ops, cache hits, bytes sent, CPU cycles).
    *Time sources* return simulated microseconds and sum into the trace
    clock. *Level sources* are non-monotonic gauges (RAM high-water)
    sampled at span close.
    """

    def __init__(self, max_spans: int = 200_000, max_events: int = 200_000):
        import os

        self.max_spans = max_spans
        self.max_events = max_events
        #: Process the tracer was created in. A forked pool worker inherits
        #: the parent's installed tracer; comparing pids is how
        #: :func:`repro.obs.telemetry.remote_recording` tells "serial,
        #: in-process" from "child process holding a dead copy".
        self.pid = os.getpid()
        self.spans: list[Span] = []
        self.events: list[dict] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        #: Called with each span as it is recorded (flight recorder hook).
        self.on_record: Callable[[Span], None] | None = None
        #: Called with each event record as it is appended.
        self.on_event: Callable[[dict], None] | None = None
        #: Human labels of asyncio-task tracks (Perfetto thread names).
        self.track_names: dict[int, str] = {}
        self._sources: list[tuple[str, Callable[[], dict]]] = []
        self._time_sources: list[Callable[[], float]] = []
        self._levels: list[tuple[str, Callable[[], float]]] = []
        self._detach: list[Callable[[], None]] = []
        self._span_counter = 0
        self._tracks: dict[int, int] = {}
        self._open: dict[int, Span] = {}

    # ------------------------------------------------------------------
    # Source registration
    # ------------------------------------------------------------------
    def add_source(self, prefix: str, fn: Callable[[], dict]) -> None:
        """Register a monotonic counter source, namespaced by ``prefix``."""
        self._sources.append((prefix, fn))

    def add_time_source(self, fn: Callable[[], float]) -> None:
        """Register a simulated-time contributor (microseconds)."""
        self._time_sources.append(fn)

    def add_level(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge sampled at every span close."""
        self._levels.append((name, fn))

    def watch_flash(self, flash, prefix: str = "flash") -> None:
        """Watch a :class:`NandFlash`: op counters, sim time, page tags."""
        stats = flash.stats
        cost = flash.cost_model
        self.add_source(
            prefix,
            lambda: {
                "page_reads": stats.page_reads,
                "page_programs": stats.page_programs,
                "block_erases": stats.block_erases,
            },
        )
        self.add_time_source(lambda: stats.time_us(cost))
        previous = getattr(flash, "trace_read", None)
        hook = self._on_page_read  # bind once so detach can compare with `is`
        flash.trace_read = hook

        def detach(flash=flash, previous=previous, hook=hook):
            if flash.trace_read is hook:
                flash.trace_read = previous

        self._detach.append(detach)

    def watch_cache(self, cache, prefix: str = "cache") -> None:
        """Watch a :class:`PageCache`'s hit/miss/eviction counters."""
        stats = cache.stats
        self.add_source(
            prefix,
            lambda: {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
            },
        )

    def watch_mcu(self, mcu, prefix: str = "cpu") -> None:
        """Watch a :class:`Microcontroller`: cycle counters + CPU time."""
        stats = mcu.stats
        self.add_source(prefix, lambda: {"cycles": stats.total_cycles})
        self.add_time_source(mcu.elapsed_us)

    def watch_ram(self, ram, prefix: str = "ram") -> None:
        """Sample a :class:`RamArena`'s levels at span close."""
        self.add_level(f"{prefix}.in_use", lambda: ram.in_use)
        self.add_level(f"{prefix}.high_water", lambda: ram.high_water)

    def watch_net(self, metrics, prefix: str = "net") -> None:
        """Watch a :class:`NetMetrics`: frames, bytes, drops, retries."""
        self.add_source(
            prefix,
            lambda: {
                "frames_sent": metrics.frames_sent,
                "frames_delivered": metrics.frames_delivered,
                "frames_dropped": metrics.frames_dropped,
                "bytes_sent": metrics.bytes_sent,
                "bytes_delivered": metrics.comm.bytes,
                "dropped_after_retry": metrics.dropped_after_retry,
            },
        )

    def use_wall_clock(self) -> None:
        """Add a wall-clock time source (microseconds since installation).

        The simulated clock is the default because Part II costs *are*
        simulated; the long-lived service, though, is a real wall-clock
        system (its latency SLOs are wall seconds), so its telemetry
        tracer opts into real time. Offset to zero at installation so
        trace timestamps stay small and diffable.
        """
        import time

        epoch = time.perf_counter()
        self.add_time_source(lambda: (time.perf_counter() - epoch) * 1e6)

    def watch_modexp(self, prefix: str = "crypto") -> None:
        """Watch the process-wide ``crypto.modexp_count`` counter.

        Every full-width modular exponentiation in :mod:`repro.crypto`
        lands in the global registry; watching it lets spans attribute
        crypto cost the same way flash spans attribute page reads.
        """
        from repro.obs.metrics import global_registry

        counter = global_registry().counter("crypto.modexp_count")
        self.add_source(prefix, lambda: {"modexp_count": counter.value})

    def watch_token(self, token, prefix: str = "") -> None:
        """Watch every cost model of one :class:`SecurePortableToken`."""
        dot = f"{prefix}." if prefix else ""
        self.watch_flash(token.flash, f"{dot}flash")
        self.watch_mcu(token.mcu, f"{dot}cpu")
        self.watch_ram(token.mcu.ram, f"{dot}ram")
        if token.page_cache is not None:
            self.watch_cache(token.page_cache, f"{dot}cache")

    def close(self) -> None:
        """Detach every hook installed on watched objects (idempotent)."""
        while self._detach:
            self._detach.pop()()

    # ------------------------------------------------------------------
    # Span / event production
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """Open a nested span; use as a context manager."""
        return Span(self, name, _CURRENT.get(), attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instant event attached to the current span."""
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        current = _CURRENT.get()
        record = {
            "name": name,
            "ts_us": self.now_us(),
            "span_id": current.span_id if current is not None else None,
            "attrs": attrs,
        }
        self.events.append(record)
        if self.on_event is not None:
            self.on_event(record)

    def label_current_track(self, name: str) -> None:
        """Name the current asyncio task's track (Perfetto thread name)."""
        self.track_names[self._current_track()] = name

    def current_span(self) -> Span | None:
        return _CURRENT.get()

    def current_span_id(self) -> int | None:
        current = _CURRENT.get()
        return current.span_id if current is not None else None

    def now_us(self) -> float:
        """The simulated clock: sum of every watched cost model's time."""
        return sum(fn() for fn in self._time_sources)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_span_id(self) -> int:
        self._span_counter += 1
        return self._span_counter

    def _collect_counts(self) -> dict[str, float]:
        counts: dict[str, float] = {}
        for prefix, fn in self._sources:
            for key, value in fn().items():
                counts[f"{prefix}.{key}"] = value
        return counts

    def _collect_levels(self) -> dict[str, float]:
        return {name: fn() for name, fn in self._levels}

    def _current_track(self) -> int:
        """Small integer id of the current asyncio task (0 outside tasks)."""
        try:
            import asyncio

            task = asyncio.current_task()
        except RuntimeError:
            task = None
        if task is None:
            return 0
        key = id(task)
        track = self._tracks.get(key)
        if track is None:
            track = len(self._tracks) + 1
            self._tracks[key] = track
        return track

    def _record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(span)
        if self.on_record is not None:
            self.on_record(span)

    # ------------------------------------------------------------------
    # Cross-process span adoption
    # ------------------------------------------------------------------
    def adopt_remote(self, records: list[dict], parent: "Span | None") -> list:
        """Re-home spans recorded in another process under ``parent``.

        ``records`` are :func:`repro.obs.export.span_dict` dicts shipped
        back from a worker (see
        :func:`repro.obs.telemetry.remote_recording`), in recording order
        (children before parents). Each gets a fresh span id in this
        tracer's id space; intra-batch parent links are remapped, batch
        roots re-parent under ``parent``. Remote timestamps are rebased so
        the batch lands inside the adopting span's window (worker
        ``perf_counter`` clocks are not comparable across processes).

        Attribution stays exact: each batch root's inclusive counters are
        added to ``parent._child_counts``, so a parent that mirrors the
        same counters in-process (e.g. ``crypto.modexp_count`` echoed via
        ``count_modexp``) subtracts the children's share from its own
        self_counters instead of double-counting.
        """
        if not records:
            return []
        starts = [r["start_us"] for r in records]
        offset = (parent.start_us if parent is not None else 0.0) - min(starts)
        # Two passes: records arrive children-before-parents (recording
        # order), so every remote id must be mapped before links resolve.
        spans: list[Span] = []
        id_map: dict[int, int] = {}
        for record in records:
            span = Span(self, record["name"], None, dict(record.get("attrs", {})))
            id_map[record["span_id"]] = span.span_id
            spans.append(span)
        for record, span in zip(records, spans):
            remote_parent = record.get("parent_id")
            # A record flagged remote_parent points at the *submitting*
            # tracer's id space — never resolve it through id_map even if
            # the integer collides with a worker-local span id.
            is_batch_root = bool(record.get("remote_parent")) or (
                remote_parent not in id_map
            )
            span._remote_parent = False
            if not is_batch_root:
                span.parent_id = id_map[remote_parent]
            elif parent is not None:
                span.parent_id = parent.span_id
            else:
                span.parent_id = remote_parent
                span._remote_parent = remote_parent is not None
            span.trace_id = record.get("trace_id") or (
                parent.trace_id if parent is not None else None
            )
            span.process = record.get("process")
            span.track = parent.track if parent is not None else 0
            span.start_us = record["start_us"] + offset
            span.end_us = record["end_us"] + offset
            span.counters = dict(record.get("counters", {}))
            span.self_counters = dict(record.get("self_counters", {}))
            span.levels = dict(record.get("levels", {}))
            span.pages = list(record.get("pages", ()))
            span.pages_overflow = record.get("pages_overflow", 0)
            span.links = list(record.get("links", ()))
            span._closed = True
            if parent is not None and is_batch_root:
                accum = parent._child_counts
                for key, value in span.counters.items():
                    accum[key] = accum.get(key, 0.0) + value
            self._record(span)
        return spans

    def _on_page_read(self, page_no: int) -> None:
        current = _CURRENT.get()
        if current is not None:
            current.tag_page(page_no)

    # ------------------------------------------------------------------
    def totals(self, counter: str, self_only: bool = True) -> float:
        """Sum one counter over every recorded span (``self`` by default)."""
        if self_only:
            return sum(s.self_counters.get(counter, 0.0) for s in self.spans)
        return sum(
            s.counters.get(counter, 0.0)
            for s in self.spans
            if s.parent_id is None
        )

    def spans_named(self, name: str) -> Iterable[Span]:
        return [span for span in self.spans if span.name == name]
