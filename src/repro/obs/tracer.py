"""Nested spans with simulated-time durations and exact cost attribution.

The tutorial's Part II argument is a *cost* argument: every design exists
because NAND page reads, block erases and the 128 KB RAM bound dominate.
The :class:`Tracer` makes those costs *attributable*: a span brackets one
logical operation (a query, one Tselect probe, one protocol phase), and its
duration and counters are **deltas of the existing cost models** — the
flash chip's :class:`~repro.hardware.flash.FlashStats`, the page cache's
:class:`~repro.storage.cache.CacheStats`, the MCU cycle counters, the
network's :class:`~repro.net.metrics.NetMetrics` — never wall-clock time.

Attribution is exact by construction:

* ``span.counters`` is the *inclusive* delta (children included) of every
  watched counter over the span's lifetime;
* ``span.self_counters`` subtracts the children's inclusive deltas, so
  summing ``self_counters`` over any complete trace reproduces the watched
  totals with no double-count and no leakage (asserted by the test suite);
* flash page reads are additionally *tagged*: the chip reports each page
  number to the innermost open span, so "which pages did this one probe
  touch, and why" is a question the trace can answer.

Span context propagates through a :class:`contextvars.ContextVar`, so spans
opened inside asyncio tasks nest under the span that spawned the task —
the natural cross-hop link for :mod:`repro.net` message flows.

When no tracer is installed (the default), every instrumentation site costs
one ``None`` check and returns a shared no-op span — the "disabled
overhead" budget of the hot paths.
"""

from __future__ import annotations

import contextvars
from typing import Callable, Iterable

#: Innermost open span of the current (task-local) execution context.
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Pages tagged per span before further tags are only counted, not stored.
MAX_TAGGED_PAGES = 4096


class Span:
    """One timed, counted operation; nested spans form the trace tree."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "start_us",
        "end_us",
        "track",
        "pages",
        "pages_overflow",
        "links",
        "counters",
        "self_counters",
        "levels",
        "_start_counts",
        "_child_counts",
        "_token",
        "_closed",
    )

    def __init__(
        self, tracer: "Tracer", name: str, parent: "Span | None", attrs: dict
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = tracer._next_span_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.attrs = attrs
        self.start_us = 0.0
        self.end_us = 0.0
        self.track = 0
        self.pages: list[int] = []
        self.pages_overflow = 0
        self.links: list[int] = []
        self.counters: dict[str, float] = {}
        self.self_counters: dict[str, float] = {}
        self.levels: dict[str, float] = {}
        self._start_counts: dict[str, float] = {}
        self._child_counts: dict[str, float] = {}
        self._token = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on an open span."""
        self.attrs.update(attrs)
        return self

    def link(self, span_id: int | None) -> "Span":
        """Record a causal link to another span (e.g. across a network hop)."""
        if span_id is not None:
            self.links.append(span_id)
        return self

    def tag_page(self, page_no: int) -> None:
        """Attribute one flash page read to this span."""
        if len(self.pages) < MAX_TAGGED_PAGES:
            self.pages.append(page_no)
        else:
            self.pages_overflow += 1

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.start_us = tracer.now_us()
        self._start_counts = tracer._collect_counts()
        self.track = tracer._current_track()
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        tracer = self.tracer
        self.end_us = tracer.now_us()
        end_counts = tracer._collect_counts()
        start = self._start_counts
        counters = {}
        for key, value in end_counts.items():
            delta = value - start.get(key, 0.0)
            if delta:
                counters[key] = delta
        self.counters = counters
        child = self._child_counts
        self.self_counters = {
            key: value - child.get(key, 0.0)
            for key, value in counters.items()
            if value - child.get(key, 0.0)
        }
        self.levels = tracer._collect_levels()
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        parent = _CURRENT.get()
        if parent is not None and parent.tracer is tracer:
            accum = parent._child_counts
            for key, value in counters.items():
                accum[key] = accum.get(key, 0.0) + value
        tracer._record(self)


class NullSpan:
    """Shared no-op span returned when tracing is disabled."""

    __slots__ = ()

    span_id = None
    parent_id = None
    pages: tuple = ()
    links: tuple = ()
    counters: dict = {}
    self_counters: dict = {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> "NullSpan":
        return self

    def link(self, span_id) -> "NullSpan":
        return self

    def tag_page(self, page_no: int) -> None:
        return None

    def close(self) -> None:
        return None


NULL_SPAN = NullSpan()


class Tracer:
    """Produces spans whose costs come from watched simulation counters.

    Counter *sources* are callables returning ``{name: number}`` snapshots
    of monotonic counters (flash ops, cache hits, bytes sent, CPU cycles).
    *Time sources* return simulated microseconds and sum into the trace
    clock. *Level sources* are non-monotonic gauges (RAM high-water)
    sampled at span close.
    """

    def __init__(self, max_spans: int = 200_000, max_events: int = 200_000):
        self.max_spans = max_spans
        self.max_events = max_events
        self.spans: list[Span] = []
        self.events: list[dict] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        self._sources: list[tuple[str, Callable[[], dict]]] = []
        self._time_sources: list[Callable[[], float]] = []
        self._levels: list[tuple[str, Callable[[], float]]] = []
        self._detach: list[Callable[[], None]] = []
        self._span_counter = 0
        self._tracks: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Source registration
    # ------------------------------------------------------------------
    def add_source(self, prefix: str, fn: Callable[[], dict]) -> None:
        """Register a monotonic counter source, namespaced by ``prefix``."""
        self._sources.append((prefix, fn))

    def add_time_source(self, fn: Callable[[], float]) -> None:
        """Register a simulated-time contributor (microseconds)."""
        self._time_sources.append(fn)

    def add_level(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge sampled at every span close."""
        self._levels.append((name, fn))

    def watch_flash(self, flash, prefix: str = "flash") -> None:
        """Watch a :class:`NandFlash`: op counters, sim time, page tags."""
        stats = flash.stats
        cost = flash.cost_model
        self.add_source(
            prefix,
            lambda: {
                "page_reads": stats.page_reads,
                "page_programs": stats.page_programs,
                "block_erases": stats.block_erases,
            },
        )
        self.add_time_source(lambda: stats.time_us(cost))
        previous = getattr(flash, "trace_read", None)
        hook = self._on_page_read  # bind once so detach can compare with `is`
        flash.trace_read = hook

        def detach(flash=flash, previous=previous, hook=hook):
            if flash.trace_read is hook:
                flash.trace_read = previous

        self._detach.append(detach)

    def watch_cache(self, cache, prefix: str = "cache") -> None:
        """Watch a :class:`PageCache`'s hit/miss/eviction counters."""
        stats = cache.stats
        self.add_source(
            prefix,
            lambda: {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
            },
        )

    def watch_mcu(self, mcu, prefix: str = "cpu") -> None:
        """Watch a :class:`Microcontroller`: cycle counters + CPU time."""
        stats = mcu.stats
        self.add_source(prefix, lambda: {"cycles": stats.total_cycles})
        self.add_time_source(mcu.elapsed_us)

    def watch_ram(self, ram, prefix: str = "ram") -> None:
        """Sample a :class:`RamArena`'s levels at span close."""
        self.add_level(f"{prefix}.in_use", lambda: ram.in_use)
        self.add_level(f"{prefix}.high_water", lambda: ram.high_water)

    def watch_net(self, metrics, prefix: str = "net") -> None:
        """Watch a :class:`NetMetrics`: frames, bytes, drops, retries."""
        self.add_source(
            prefix,
            lambda: {
                "frames_sent": metrics.frames_sent,
                "frames_delivered": metrics.frames_delivered,
                "frames_dropped": metrics.frames_dropped,
                "bytes_sent": metrics.bytes_sent,
                "bytes_delivered": metrics.comm.bytes,
                "dropped_after_retry": metrics.dropped_after_retry,
            },
        )

    def watch_token(self, token, prefix: str = "") -> None:
        """Watch every cost model of one :class:`SecurePortableToken`."""
        dot = f"{prefix}." if prefix else ""
        self.watch_flash(token.flash, f"{dot}flash")
        self.watch_mcu(token.mcu, f"{dot}cpu")
        self.watch_ram(token.mcu.ram, f"{dot}ram")
        if token.page_cache is not None:
            self.watch_cache(token.page_cache, f"{dot}cache")

    def close(self) -> None:
        """Detach every hook installed on watched objects (idempotent)."""
        while self._detach:
            self._detach.pop()()

    # ------------------------------------------------------------------
    # Span / event production
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """Open a nested span; use as a context manager."""
        return Span(self, name, _CURRENT.get(), attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instant event attached to the current span."""
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        current = _CURRENT.get()
        self.events.append(
            {
                "name": name,
                "ts_us": self.now_us(),
                "span_id": current.span_id if current is not None else None,
                "attrs": attrs,
            }
        )

    def current_span(self) -> Span | None:
        return _CURRENT.get()

    def current_span_id(self) -> int | None:
        current = _CURRENT.get()
        return current.span_id if current is not None else None

    def now_us(self) -> float:
        """The simulated clock: sum of every watched cost model's time."""
        return sum(fn() for fn in self._time_sources)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_span_id(self) -> int:
        self._span_counter += 1
        return self._span_counter

    def _collect_counts(self) -> dict[str, float]:
        counts: dict[str, float] = {}
        for prefix, fn in self._sources:
            for key, value in fn().items():
                counts[f"{prefix}.{key}"] = value
        return counts

    def _collect_levels(self) -> dict[str, float]:
        return {name: fn() for name, fn in self._levels}

    def _current_track(self) -> int:
        """Small integer id of the current asyncio task (0 outside tasks)."""
        try:
            import asyncio

            task = asyncio.current_task()
        except RuntimeError:
            task = None
        if task is None:
            return 0
        key = id(task)
        track = self._tracks.get(key)
        if track is None:
            track = len(self._tracks) + 1
            self._tracks[key] = track
        return track

    def _record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(span)

    def _on_page_read(self, page_no: int) -> None:
        current = _CURRENT.get()
        if current is not None:
            current.tag_page(page_no)

    # ------------------------------------------------------------------
    def totals(self, counter: str, self_only: bool = True) -> float:
        """Sum one counter over every recorded span (``self`` by default)."""
        if self_only:
            return sum(s.self_counters.get(counter, 0.0) for s in self.spans)
        return sum(
            s.counters.get(counter, 0.0)
            for s in self.spans
            if s.parent_id is None
        )

    def spans_named(self, name: str) -> Iterable[Span]:
        return [span for span in self.spans if span.name == name]
