"""Trace exporters: JSONL span log, Chrome ``trace_event`` JSON, text reports.

Three consumers, three formats:

* **JSONL** — one JSON object per line (``type: meta | span | event``), the
  stable machine-readable schema validated by :mod:`repro.obs.check` and
  consumed by regression tooling;
* **Chrome trace_event** — a ``{"traceEvents": [...]}`` file loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; spans become
  complete (``"X"``) events on one track per asyncio task, with counters
  and tagged pages in ``args``;
* **text reports** — a top-cost table (per span name: calls, self flash
  reads, self simulated time) and a folded-stack flame listing compatible
  with standard flamegraph tooling.

Timestamps everywhere are *simulated* microseconds from the tracer's cost
clock, so a Perfetto view of a Tjoin literally shows where the page reads
went.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import Span, Tracer

SCHEMA_VERSION = 2


def span_dict(span: Span) -> dict:
    """JSON-ready representation of one span (the JSONL ``span`` record)."""
    record = {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "track": span.track,
        "start_us": round(span.start_us, 3),
        "end_us": round(span.end_us, 3),
        "duration_us": round(span.duration_us, 3),
        "counters": span.counters,
        "self_counters": span.self_counters,
    }
    # Schema v2: distributed-trace fields, present only when set so v1
    # single-process traces serialize byte-identically to before.
    if span.trace_id is not None:
        record["trace_id"] = span.trace_id
    if span.process is not None:
        record["process"] = span.process
    if getattr(span, "_remote_parent", False):
        # parent_id refers to a span id in the *submitting* tracer's id
        # space (shipped in via TraceContext), not this record stream's.
        record["remote_parent"] = True
    if span.attrs:
        record["attrs"] = {k: _jsonable(v) for k, v in span.attrs.items()}
    if span.levels:
        record["levels"] = span.levels
    if span.pages:
        record["pages"] = span.pages
    if span.pages_overflow:
        record["pages_overflow"] = span.pages_overflow
    if span.links:
        record["links"] = span.links
    return record


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def trace_records(tracer: Tracer) -> list[dict]:
    """Every JSONL record of one trace: meta header, spans, events."""
    records: list[dict] = [
        {
            "type": "meta",
            "schema_version": SCHEMA_VERSION,
            "span_count": len(tracer.spans),
            "event_count": len(tracer.events),
            "dropped_spans": tracer.dropped_spans,
            "dropped_events": tracer.dropped_events,
        }
    ]
    records.extend(span_dict(span) for span in tracer.spans)
    for event in tracer.events:
        records.append(
            {
                "type": "event",
                "name": event["name"],
                "ts_us": round(event["ts_us"], 3),
                "span_id": event["span_id"],
                "attrs": {
                    k: _jsonable(v) for k, v in event["attrs"].items()
                },
            }
        )
    return records


def write_jsonl(tracer: Tracer, path) -> Path:
    """Write the JSONL span log; returns the path written."""
    path = Path(path)
    with path.open("w") as fh:
        for record in trace_records(tracer):
            fh.write(json.dumps(record) + "\n")
    return path


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """The ``trace_event`` document for Perfetto / chrome://tracing.

    Adopted cross-process spans (``span.process`` set) get their own
    Perfetto process row, named after the worker that ran them; labeled
    asyncio-task tracks (``tracer.track_names``, e.g. the service worker
    loops) get thread-name metadata — no manual pid decoding in the UI.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for track, name in sorted(tracer.track_names.items()):
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": track,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    process_pids: dict[str, int] = {}
    for span in tracer.spans:
        pid = 1
        if span.process is not None:
            pid = process_pids.get(span.process, 0)
            if pid == 0:
                pid = len(process_pids) + 2
                process_pids[span.process] = pid
                events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "name": "process_name",
                        "args": {"name": span.process},
                    }
                )
        args: dict = {"span_id": span.span_id}
        if span.attrs:
            args.update({k: _jsonable(v) for k, v in span.attrs.items()})
        if span.self_counters:
            args["self"] = span.self_counters
        if span.pages:
            args["pages"] = span.pages[:64]
        if span.links:
            args["links"] = span.links
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": span.track,
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ts": round(span.start_us, 3),
                "dur": round(max(span.duration_us, 0.001), 3),
                "args": args,
            }
        )
    for event in tracer.events:
        events.append(
            {
                "ph": "i",
                "pid": 1,
                "tid": 0,
                "name": event["name"],
                "cat": event["name"].split(".", 1)[0],
                "ts": round(event["ts_us"], 3),
                "s": "g",
                "args": {
                    k: _jsonable(v) for k, v in event["attrs"].items()
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path, process_name: str = "repro") -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, process_name), indent=1))
    return path


# ----------------------------------------------------------------------
# Text reports
# ----------------------------------------------------------------------
def _child_time_us(tracer: Tracer) -> dict[int, float]:
    """span_id -> summed duration of direct children (single pass)."""
    totals: dict[int, float] = {}
    for span in tracer.spans:
        if span.parent_id is not None:
            totals[span.parent_id] = (
                totals.get(span.parent_id, 0.0) + span.duration_us
            )
    return totals


def aggregate_by_name(tracer: Tracer) -> dict[str, dict]:
    """Per-span-name rollup: calls, self time, self counters."""
    child_time = _child_time_us(tracer)
    rollup: dict[str, dict] = {}
    for span in tracer.spans:
        entry = rollup.setdefault(
            span.name,
            {"calls": 0, "self_time_us": 0.0, "time_us": 0.0, "self": {}},
        )
        entry["calls"] += 1
        entry["time_us"] += span.duration_us
        entry["self_time_us"] += span.duration_us - child_time.get(
            span.span_id, 0.0
        )
        for key, value in span.self_counters.items():
            entry["self"][key] = entry["self"].get(key, 0.0) + value
    return rollup


def top_cost_report(
    tracer: Tracer,
    sort_key: str = "self_time_us",
    limit: int = 20,
) -> str:
    """Plain-text "top" view: costliest span names first."""
    rollup = aggregate_by_name(tracer)

    def sort_value(entry: dict) -> float:
        if sort_key in entry:
            return entry[sort_key]
        return entry["self"].get(sort_key, 0.0)

    ranked = sorted(
        rollup.items(), key=lambda item: sort_value(item[1]), reverse=True
    )[:limit]
    lines = [
        f"{'span':<28} {'calls':>7} {'self_us':>12} {'total_us':>12} "
        f"{'flash_reads(self)':>18}",
        "-" * 80,
    ]
    for name, entry in ranked:
        reads = sum(
            value
            for key, value in entry["self"].items()
            if key.endswith(".page_reads")
        )
        lines.append(
            f"{name:<28} {entry['calls']:>7} {entry['self_time_us']:>12.1f} "
            f"{entry['time_us']:>12.1f} {reads:>18.0f}"
        )
    return "\n".join(lines)


def flame_report(tracer: Tracer, counter: str | None = None) -> str:
    """Folded-stack flame lines: ``root;child;leaf <weight>``.

    Weight is self simulated time (microseconds, rounded) by default, or a
    named self-counter (e.g. ``flash.page_reads``).
    """
    by_id = {span.span_id: span for span in tracer.spans}

    def stack(span: Span) -> str:
        parts = [span.name]
        parent_id = span.parent_id
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                break
            parts.append(parent.name)
            parent_id = parent.parent_id
        return ";".join(reversed(parts))

    child_time = _child_time_us(tracer)
    folded: dict[str, float] = {}
    for span in tracer.spans:
        if counter is None:
            weight = span.duration_us - child_time.get(span.span_id, 0.0)
        else:
            weight = span.self_counters.get(counter, 0.0)
        if weight <= 0:
            continue
        key = stack(span)
        folded[key] = folded.get(key, 0.0) + weight
    return "\n".join(
        f"{key} {round(weight)}" for key, weight in sorted(folded.items())
    )
