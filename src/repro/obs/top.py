"""``python -m repro.obs.top`` — a text dashboard over the TELEMETRY endpoint.

The :class:`~repro.service.server.SsiQueryService` answers ``TELEMETRY``
wire frames with a live snapshot (metrics registry + sampler + flight
recorder + SLO monitors). This module is the consumer: :func:`fetch`
requests one snapshot over a bus endpoint, :func:`render` turns it into
the classic ``top``-style text block.

Run standalone it demonstrates the loop end to end: a small traced
service is stood up on a simulated bus, queriers drive it, and the
dashboard is polled over the wire between bursts — the same frames a
separate operator process would send. Pass a path to a saved snapshot
JSON (e.g. captured by the E26 bench) to render it offline instead.
"""

from __future__ import annotations

import asyncio
import json
import sys

from repro.net.codec import (
    KIND_TELEMETRY,
    Frame,
    decode_json_payload,
    encode_json_payload,
)

#: Registry keys rendered as headline scalars, in display order.
_HEADLINE = (
    "service.arrivals",
    "service.completed",
    "service.shed",
    "service.errors",
    "service.cache_hits_served",
    "service.queue_depth",
    "service.shed_queue_depth",
)


async def fetch(endpoint, service_addr: str = "ssi", timeout: float = 30.0) -> dict:
    """One TELEMETRY round trip over the bus; returns the decoded snapshot."""
    await endpoint.send(
        service_addr,
        Frame(
            KIND_TELEMETRY,
            endpoint.name,
            0,
            encode_json_payload({"request_id": f"{endpoint.name}/top"}),
        ),
    )
    while True:
        frame = await endpoint.recv(timeout=timeout)
        if frame.kind == KIND_TELEMETRY:
            return decode_json_payload(frame.payload)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render(snapshot: dict) -> str:
    """The text dashboard for one telemetry snapshot."""
    metrics = snapshot.get("metrics", {})
    lines = ["== SSI telemetry ==", ""]

    headline = [
        f"{key.split('.', 1)[1]}={_fmt(metrics[key])}"
        for key in _HEADLINE
        if key in metrics
    ]
    if headline:
        lines.append("  " + "  ".join(headline))

    if "globalq.ingest.deltas" in metrics:
        fold = metrics.get("globalq.ingest.fold_ms") or {}
        batch = metrics.get("globalq.ingest.batch_size") or {}
        parts = [
            f"deltas={_fmt(metrics['globalq.ingest.deltas'])}",
            f"folded={_fmt(metrics.get('globalq.ingest.folded', 0))}",
            f"rate={_fmt(metrics.get('globalq.ingest.deltas_per_s', 0.0))}/s",
            f"fold_p50={fold.get('p50', 0.0):.1f}ms"
            if isinstance(fold, dict)
            else "",
            f"batch_avg={batch.get('mean', 0.0):.1f}"
            if isinstance(batch, dict)
            else "",
            f"shed={_fmt(metrics.get('globalq.ingest.shed', 0))}",
            f"rejected={_fmt(metrics.get('globalq.ingest.rejected', 0))}",
        ]
        lines.append("  ingest: " + "  ".join(p for p in parts if p))

    sheds = {
        key.rsplit(".", 1)[1]: value
        for key, value in metrics.items()
        if key.startswith("service.shed.")
    }
    if sheds:
        lines.append(
            "  rejects/class: "
            + "  ".join(f"{cls}={_fmt(n)}" for cls, n in sorted(sheds.items()))
        )

    latency = {
        key[len("service.latency_ms."):]: value
        for key, value in metrics.items()
        if key.startswith("service.latency_ms.") and isinstance(value, dict)
    }
    if "service.latency_ms" in metrics:
        latency["(all)"] = metrics["service.latency_ms"]
    if latency:
        lines.append("")
        lines.append(
            f"  {'class':<16} {'count':>7} {'p50_ms':>9} {'p99_ms':>9} "
            f"{'p999_ms':>9}"
        )
        for cls in sorted(latency):
            summary = latency[cls]
            lines.append(
                f"  {cls:<16} {summary.get('count', 0):>7} "
                f"{summary.get('p50', 0.0):>9.1f} "
                f"{summary.get('p99', 0.0):>9.1f} "
                f"{summary.get('p999', 0.0):>9.1f}"
            )

    telemetry = snapshot.get("telemetry")
    if telemetry:
        sampler = telemetry.get("sampler", {})
        recorder = telemetry.get("recorder", {})
        slo = telemetry.get("slo", {})
        lines.append("")
        lines.append(
            f"  sampling: rate={sampler.get('rate')} "
            f"kept={sampler.get('kept')}/{sampler.get('decisions')}  "
            f"spans={telemetry.get('spans_recorded')} "
            f"events={telemetry.get('events_recorded')} "
            f"dropped={telemetry.get('dropped_spans')}"
        )
        lines.append(
            f"  recorder: buffered={recorder.get('spans_buffered')}"
            f"/{recorder.get('capacity')} "
            f"triggers={recorder.get('triggers')} "
            f"dumps={len(recorder.get('dumps', []))}"
        )
        last = recorder.get("last_trigger")
        if last:
            lines.append(
                f"  last trigger: {last.get('reason')} {last.get('details')}"
            )
        breaches = slo.get("breaches", {})
        if breaches:
            lines.append(
                "  slo breaches: "
                + "  ".join(
                    f"{cls}={n}" for cls, n in sorted(breaches.items())
                )
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Standalone demo / offline rendering
# ----------------------------------------------------------------------
async def _demo(refreshes: int = 3) -> None:
    import random

    from repro.globalq.protocol import PdsNode, TokenFleet
    from repro.net.bus import LinkProfile, MessageBus
    from repro.net.codec import KIND_QUERY
    from repro.obs.telemetry import Telemetry
    from repro.service import (
        ServiceConfig,
        ServicePopulation,
        SsiQueryService,
        standard_mix,
    )
    from repro.workloads.people import CITIES, PersonRecord

    rng = random.Random(11)
    nodes = [
        PdsNode(
            i,
            [
                PersonRecord(
                    {
                        "city": CITIES[rng.randrange(len(CITIES))],
                        "salary": float(1500 + rng.randrange(3000)),
                    }
                )
            ],
        )
        for i in range(24)
    ]
    population = ServicePopulation(nodes, TokenFleet(0))
    bus = MessageBus(
        rng=random.Random(3), default_link=LinkProfile(latency_ms=2.0)
    )
    with Telemetry(sample_rate=1.0) as telemetry:
        service = SsiQueryService(
            population,
            ServiceConfig(max_in_flight=2, max_queue_depth=8),
            telemetry=telemetry,
        )
        service.start()
        server = asyncio.ensure_future(
            service.serve_endpoint(bus.register("ssi"))
        )
        client = bus.register("operator")
        querier = bus.register("querier-0")
        descriptors = standard_mix().descriptors()
        try:
            for refresh in range(refreshes):
                for seq, descriptor in enumerate(descriptors):
                    body = dict(
                        descriptor.to_dict(),
                        request_id=f"querier-0/{refresh}/{seq}",
                    )
                    await querier.send(
                        "ssi",
                        Frame(
                            KIND_QUERY,
                            "querier-0",
                            seq,
                            encode_json_payload(body),
                        ),
                    )
                for _ in descriptors:
                    await querier.recv(timeout=60.0)
                snapshot = await fetch(client)
                print(render(snapshot))
                print()
        finally:
            server.cancel()
            await service.stop()


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        snapshot = json.loads(open(argv[0]).read())
        print(render(snapshot))
        return 0
    asyncio.run(_demo())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
