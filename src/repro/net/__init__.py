"""`repro.net` — an asyncio simulated network for the global protocols.

The tutorial's Part III runs on an asymmetric architecture: millions of
intermittently connected secure tokens talking to an always-on, untrusted
SSI. This package models the *communication* half of that claim — per-link
latency/jitter/loss (:class:`MessageBus`, :class:`LinkProfile`), bounded
mailboxes with backpressure (:class:`Endpoint`), retry with exponential
backoff (:func:`with_retries`), byte-level framing (:mod:`repro.net.codec`),
node churn scheduling (:class:`NodeRuntime`, :class:`ChurnModel`) and
traffic metrics that subsume the synchronous protocols'
``CommStats`` (:class:`NetMetrics`).

:mod:`repro.globalq.async_protocol` drives the three [TNP14] protocol
families over this runtime.
"""

from repro.errors import NetError, NetTimeout, RetriesExhausted
from repro.net.bus import LinkProfile, MessageBus
from repro.net.codec import (
    KIND_ACK,
    KIND_ASSIGN,
    KIND_CLAIM,
    KIND_CONTRIB,
    KIND_DONE,
    KIND_FIN,
    KIND_PARTIAL,
    KIND_PLAN,
    KIND_WAIT,
    Frame,
    decode_contribution,
    decode_frame,
    decode_outcome,
    decode_partition,
    encode_contribution,
    encode_frame,
    encode_outcome,
    encode_partition,
)
from repro.net.endpoint import Endpoint
from repro.net.metrics import LatencyStats, NetMetrics
from repro.net.retry import RetryPolicy, with_retries
from repro.net.runtime import ChurnModel, NodeRuntime

__all__ = [
    "KIND_ACK",
    "KIND_ASSIGN",
    "KIND_CLAIM",
    "KIND_CONTRIB",
    "KIND_DONE",
    "KIND_FIN",
    "KIND_PARTIAL",
    "KIND_PLAN",
    "KIND_WAIT",
    "ChurnModel",
    "Endpoint",
    "Frame",
    "LatencyStats",
    "LinkProfile",
    "MessageBus",
    "NetError",
    "NetMetrics",
    "NetTimeout",
    "NodeRuntime",
    "RetriesExhausted",
    "RetryPolicy",
    "decode_contribution",
    "decode_frame",
    "decode_outcome",
    "decode_partition",
    "encode_contribution",
    "encode_frame",
    "encode_outcome",
    "encode_partition",
    "with_retries",
]
