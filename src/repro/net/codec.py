"""Byte-level codec of the simulated network (`repro.net`).

Everything that crosses the :class:`~repro.net.bus.MessageBus` is a
:class:`Frame` — a small header plus an opaque payload — so latency, loss and
bandwidth models act on real byte counts, not Python objects. The payload
codecs extend the wire formats of :mod:`repro.globalq.messages`:

* :func:`encode_contribution` / :func:`decode_contribution` — an
  :class:`~repro.globalq.messages.EncryptedContribution` (blob + optional
  deterministic group tag + optional cleartext bucket id);
* :func:`encode_partition` / :func:`decode_partition` — a partition the SSI
  assigns to a claiming token (partition id + contribution list);
* :func:`encode_outcome` / :func:`decode_outcome` — a token's partial
  aggregate (:class:`~repro.globalq.protocol.AggregationOutcome`) on its way
  to the querier.

Malformed bytes always raise :class:`~repro.errors.ProtocolError`, never a
bare struct/unicode error — receivers must be able to discard garbage.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ProtocolError

if TYPE_CHECKING:  # imported lazily at runtime to keep repro.net standalone
    from repro.globalq.continuous import EncryptedDelta
    from repro.globalq.messages import EncryptedContribution
    from repro.globalq.protocol import AggregationOutcome

# ---------------------------------------------------------------------------
# Frame kinds (the protocol control vocabulary)
# ---------------------------------------------------------------------------

KIND_CONTRIB = 1  #: PDS -> SSI: one encrypted contribution
KIND_ACK = 2  #: receiver -> sender: positive acknowledgement (seq echo)
KIND_CLAIM = 3  #: token -> SSI: "give me a partition to aggregate"
KIND_ASSIGN = 4  #: SSI -> token: a partition (id + contributions)
KIND_WAIT = 5  #: SSI -> token: nothing free right now, back off and re-claim
KIND_FIN = 6  #: SSI -> token: every partition is aggregated, disconnect
KIND_PARTIAL = 7  #: token -> querier: partial aggregate of one partition
KIND_PLAN = 8  #: SSI -> querier: how many partials to expect
KIND_DONE = 9  #: querier -> SSI: partition completed, stop reassigning it
KIND_QUERY = 10  #: querier -> SSI service: a query descriptor to serve
KIND_RESULT = 11  #: SSI service -> querier: the served aggregate
KIND_REJECT = 12  #: SSI service -> querier: admission control shed the query
KIND_TELEMETRY = 13  #: telemetry snapshot request/response (obs.top)
KIND_SUBSCRIBE = 14  #: querier -> SSI service: register a standing query
KIND_DELTA = 15  #: PDS -> SSI service: one encrypted +/- contribution delta
KIND_UPDATE = 16  #: SSI service -> querier: a window-boundary update
KIND_DELTA_BATCH = 17  #: PDS -> SSI service: many deltas in one frame

KIND_NAMES = {
    KIND_CONTRIB: "CONTRIB",
    KIND_ACK: "ACK",
    KIND_CLAIM: "CLAIM",
    KIND_ASSIGN: "ASSIGN",
    KIND_WAIT: "WAIT",
    KIND_FIN: "FIN",
    KIND_PARTIAL: "PARTIAL",
    KIND_PLAN: "PLAN",
    KIND_DONE: "DONE",
    KIND_QUERY: "QUERY",
    KIND_RESULT: "RESULT",
    KIND_REJECT: "REJECT",
    KIND_TELEMETRY: "TELEMETRY",
    KIND_SUBSCRIBE: "SUBSCRIBE",
    KIND_DELTA: "DELTA",
    KIND_UPDATE: "UPDATE",
    KIND_DELTA_BATCH: "DELTA_BATCH",
}

_MAGIC = 0xA7
_VERSION = 1
#: Version-2 frames carry a fixed trace-context block (trace id, parent
#: span id, sampling flags) between sender and payload. Emitted only when
#: a frame actually propagates a context, so untraced traffic stays
#: byte-identical to version 1 — and the 17 context bytes of traced
#: traffic are charged by the bandwidth model like any other bytes.
_VERSION_TRACED = 2
_TRACE_BLOCK = struct.Struct("<QQB")  # trace id, parent span id, flags
_FRAME_HEADER = struct.Struct("<BBBBII")  # magic, version, kind, slen, seq, plen
_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class Frame:
    """One message on the wire: kind, sender address, sequence, payload.

    ``trace`` is an optional distributed trace context
    (:class:`repro.obs.telemetry.TraceContext`, duck-typed: anything with
    ``to_bytes()`` producing the 17-byte block) linking the work this
    frame triggers to the span that sent it.
    """

    kind: int
    sender: str
    seq: int
    payload: bytes = b""
    trace: "object | None" = None

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"kind-{self.kind}")


def encode_frame(frame: Frame) -> bytes:
    sender = frame.sender.encode("utf-8")
    if len(sender) > 255:
        raise ProtocolError("sender address longer than 255 bytes")
    if frame.kind not in KIND_NAMES:
        raise ProtocolError(f"unknown frame kind {frame.kind}")
    version = _VERSION
    trace_block = b""
    if frame.trace is not None:
        trace_block = frame.trace.to_bytes()
        if len(trace_block) != _TRACE_BLOCK.size:
            raise ProtocolError("trace context block has the wrong size")
        version = _VERSION_TRACED
    return (
        _FRAME_HEADER.pack(
            _MAGIC, version, frame.kind, len(sender),
            frame.seq & 0xFFFFFFFF, len(frame.payload),
        )
        + sender
        + trace_block
        + frame.payload
    )


def decode_frame(data: bytes) -> Frame:
    if len(data) < _FRAME_HEADER.size:
        raise ProtocolError("frame shorter than its header")
    magic, version, kind, slen, seq, plen = _FRAME_HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic 0x{magic:02x}")
    if version not in (_VERSION, _VERSION_TRACED):
        raise ProtocolError(f"unsupported frame version {version}")
    if kind not in KIND_NAMES:
        raise ProtocolError(f"unknown frame kind {kind}")
    trace_len = _TRACE_BLOCK.size if version == _VERSION_TRACED else 0
    if len(data) != _FRAME_HEADER.size + slen + trace_len + plen:
        raise ProtocolError("frame length does not match its header")
    offset = _FRAME_HEADER.size
    try:
        sender = data[offset : offset + slen].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError("frame sender is not valid UTF-8") from exc
    offset += slen
    trace = None
    if trace_len:
        from repro.obs.telemetry import TraceContext

        trace = TraceContext.from_bytes(data[offset : offset + trace_len])
        offset += trace_len
    return Frame(kind, sender, seq, bytes(data[offset:]), trace=trace)


def encode_json_payload(obj) -> bytes:
    """Canonical JSON bytes for the service control plane (QUERY/RESULT/
    REJECT frames carry small structured records, not ciphertext bags —
    sorted keys keep the encoding deterministic for byte-level tests)."""
    try:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"payload is not JSON-encodable: {exc}") from exc


def decode_json_payload(data: bytes) -> dict:
    """Decode a JSON control payload; garbage raises :class:`ProtocolError`."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("payload is not valid JSON") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("JSON payload must be an object")
    return obj


def pack_u32(value: int) -> bytes:
    return _U32.pack(value)


def unpack_u32(data: bytes) -> int:
    if len(data) < _U32.size:
        raise ProtocolError("u32 payload too short")
    return _U32.unpack_from(data, 0)[0]


# ---------------------------------------------------------------------------
# EncryptedContribution
# ---------------------------------------------------------------------------

_FLAG_TAG = 0x01
_FLAG_BUCKET = 0x02
_CONTRIB_HEADER = struct.Struct("<BIHi")  # flags, blob_len, tag_len, bucket


def encode_contribution(contribution: "EncryptedContribution") -> bytes:
    tag = contribution.group_tag or b""
    flags = 0
    if contribution.group_tag is not None:
        flags |= _FLAG_TAG
    bucket = 0
    if contribution.bucket_id is not None:
        flags |= _FLAG_BUCKET
        bucket = contribution.bucket_id
    return (
        _CONTRIB_HEADER.pack(flags, len(contribution.blob), len(tag), bucket)
        + contribution.blob
        + tag
    )


def decode_contribution(data: bytes) -> "EncryptedContribution":
    from repro.globalq.messages import EncryptedContribution

    if len(data) < _CONTRIB_HEADER.size:
        raise ProtocolError("contribution frame too short")
    flags, blob_len, tag_len, bucket = _CONTRIB_HEADER.unpack_from(data, 0)
    offset = _CONTRIB_HEADER.size
    if len(data) != offset + blob_len + tag_len:
        raise ProtocolError("contribution length does not match its header")
    blob = bytes(data[offset : offset + blob_len])
    tag = bytes(data[offset + blob_len :])
    return EncryptedContribution(
        blob=blob,
        group_tag=tag if flags & _FLAG_TAG else None,
        bucket_id=bucket if flags & _FLAG_BUCKET else None,
    )


# ---------------------------------------------------------------------------
# Partition assignment (SSI -> token)
# ---------------------------------------------------------------------------

_PARTITION_HEADER = struct.Struct("<IH")  # partition id, contribution count


def encode_partition(
    partition_id: int, contributions: "list[EncryptedContribution]"
) -> bytes:
    parts = [_PARTITION_HEADER.pack(partition_id, len(contributions))]
    for contribution in contributions:
        encoded = encode_contribution(contribution)
        parts.append(_U32.pack(len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def decode_partition(
    data: bytes,
) -> "tuple[int, list[EncryptedContribution]]":
    if len(data) < _PARTITION_HEADER.size:
        raise ProtocolError("partition frame too short")
    partition_id, count = _PARTITION_HEADER.unpack_from(data, 0)
    offset = _PARTITION_HEADER.size
    contributions = []
    for _ in range(count):
        if len(data) < offset + _U32.size:
            raise ProtocolError("partition frame truncated")
        (length,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        if len(data) < offset + length:
            raise ProtocolError("partition frame truncated")
        contributions.append(decode_contribution(data[offset : offset + length]))
        offset += length
    if offset != len(data):
        raise ProtocolError("partition frame has trailing bytes")
    return partition_id, contributions


# ---------------------------------------------------------------------------
# Partial aggregate (token -> querier)
# ---------------------------------------------------------------------------

_OUTCOME_HEADER = struct.Struct("<IIIIII")  # pid, real, fake, fail, nseen, ngrp
_SEEN_PAIR = struct.Struct("<II")
_GROUP_STATS = struct.Struct("<dI")  # sum, count
_U16 = struct.Struct("<H")


def encode_outcome(partition_id: int, outcome: "AggregationOutcome") -> bytes:
    accumulator = outcome.accumulator
    parts = [
        _OUTCOME_HEADER.pack(
            partition_id,
            outcome.real_tuples,
            outcome.fake_tuples,
            outcome.integrity_failures,
            len(outcome.seen_pds_sequences),
            len(accumulator.sums),
        )
    ]
    for pds_id, sequence in sorted(outcome.seen_pds_sequences):
        parts.append(_SEEN_PAIR.pack(pds_id, sequence))
    for group in sorted(accumulator.sums):
        encoded = group.encode("utf-8")
        parts.append(_U16.pack(len(encoded)))
        parts.append(encoded)
        parts.append(
            _GROUP_STATS.pack(accumulator.sums[group], accumulator.counts[group])
        )
    return b"".join(parts)


def decode_outcome(data: bytes) -> "tuple[int, AggregationOutcome]":
    from repro.globalq.protocol import AggregationOutcome
    from repro.globalq.queries import Accumulator

    if len(data) < _OUTCOME_HEADER.size:
        raise ProtocolError("outcome frame too short")
    pid, real, fake, failures, nseen, ngroups = _OUTCOME_HEADER.unpack_from(
        data, 0
    )
    offset = _OUTCOME_HEADER.size
    seen: set[tuple[int, int]] = set()
    for _ in range(nseen):
        if len(data) < offset + _SEEN_PAIR.size:
            raise ProtocolError("outcome frame truncated in seen set")
        seen.add(_SEEN_PAIR.unpack_from(data, offset))
        offset += _SEEN_PAIR.size
    accumulator = Accumulator()
    for _ in range(ngroups):
        if len(data) < offset + _U16.size:
            raise ProtocolError("outcome frame truncated in groups")
        (glen,) = _U16.unpack_from(data, offset)
        offset += _U16.size
        if len(data) < offset + glen + _GROUP_STATS.size:
            raise ProtocolError("outcome frame truncated in groups")
        try:
            group = data[offset : offset + glen].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("outcome group is not valid UTF-8") from exc
        offset += glen
        total, count = _GROUP_STATS.unpack_from(data, offset)
        offset += _GROUP_STATS.size
        accumulator.sums[group] = total
        accumulator.counts[group] = count
    if offset != len(data):
        raise ProtocolError("outcome frame has trailing bytes")
    return pid, AggregationOutcome(
        accumulator=accumulator,
        real_tuples=real,
        fake_tuples=fake,
        integrity_failures=failures,
        seen_pds_sequences=seen,
    )


# ---------------------------------------------------------------------------
# Encrypted contribution delta (PDS -> SSI service, standing queries)
# ---------------------------------------------------------------------------

# subscription id, pds id, seq, timestamp, value len, count len
_DELTA_HEADER = struct.Struct("<IIIqHH")


def encode_delta(subscription_id: int, delta: "EncryptedDelta") -> bytes:
    """One ``DELTA`` payload: header + the two big-endian ciphertexts.

    The ciphertext blobs are what the bandwidth model charges — for a
    512-bit key each is 128 bytes, so one delta costs ~270 wire bytes
    against the ~one-ciphertext-per-PDS cost of a full recollection.
    """
    value = delta.value_cipher.to_bytes(
        (delta.value_cipher.bit_length() + 7) // 8 or 1, "big"
    )
    count = delta.count_cipher.to_bytes(
        (delta.count_cipher.bit_length() + 7) // 8 or 1, "big"
    )
    if len(value) > 0xFFFF or len(count) > 0xFFFF:
        raise ProtocolError("delta ciphertext longer than 65535 bytes")
    return (
        _DELTA_HEADER.pack(
            subscription_id,
            delta.pds_id,
            delta.seq,
            delta.timestamp,
            len(value),
            len(count),
        )
        + value
        + count
    )


def decode_delta(data: bytes) -> "tuple[int, EncryptedDelta]":
    from repro.globalq.continuous import EncryptedDelta

    if len(data) < _DELTA_HEADER.size:
        raise ProtocolError("delta frame too short")
    sub_id, pds_id, seq, timestamp, vlen, clen = _DELTA_HEADER.unpack_from(
        data, 0
    )
    offset = _DELTA_HEADER.size
    if len(data) != offset + vlen + clen:
        raise ProtocolError("delta length does not match its header")
    value = int.from_bytes(data[offset : offset + vlen], "big")
    count = int.from_bytes(data[offset + vlen :], "big")
    return sub_id, EncryptedDelta(
        pds_id=pds_id,
        seq=seq,
        timestamp=timestamp,
        value_cipher=value,
        count_cipher=count,
    )


# ---------------------------------------------------------------------------
# Batched deltas (PDS -> SSI service, high-throughput ingest)
# ---------------------------------------------------------------------------

_BATCH_HEADER = struct.Struct("<H")  # entry count


def encode_delta_batch(entries) -> bytes:
    """One ``DELTA_BATCH`` payload: many ``(subscription_id, delta)`` pairs.

    Each entry is a length-prefixed single-delta encoding, so the batch
    frame charges the bandwidth model for exactly the ciphertext bytes of
    its deltas plus 4 framing bytes per entry — one frame header and one
    bus hop amortized over the whole batch instead of paid per delta.
    Entries may target different subscriptions (a PDS holding several
    standing subscriptions flushes them in one frame).
    """
    entries = list(entries)
    if len(entries) > 0xFFFF:
        raise ProtocolError("delta batch larger than 65535 entries")
    parts = [_BATCH_HEADER.pack(len(entries))]
    for subscription_id, delta in entries:
        encoded = encode_delta(subscription_id, delta)
        parts.append(_U32.pack(len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def decode_delta_batch(data: bytes) -> "list[tuple[int, EncryptedDelta]]":
    """Decode a ``DELTA_BATCH`` payload; garbage raises ProtocolError."""
    if len(data) < _BATCH_HEADER.size:
        raise ProtocolError("delta batch frame too short")
    (count,) = _BATCH_HEADER.unpack_from(data, 0)
    offset = _BATCH_HEADER.size
    entries = []
    for _ in range(count):
        if len(data) < offset + _U32.size:
            raise ProtocolError("delta batch frame truncated")
        (length,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        if len(data) < offset + length:
            raise ProtocolError("delta batch frame truncated")
        entries.append(decode_delta(data[offset : offset + length]))
        offset += length
    if offset != len(data):
        raise ProtocolError("delta batch frame has trailing bytes")
    return entries
