"""Traffic accounting for the simulated network.

:class:`NetMetrics` subsumes the synchronous protocols' accounting
(:class:`repro.smc.parties.CommStats`): every *delivered* frame is recorded
into an embedded ``CommStats`` with the same ``(sender, receiver)`` edge
keys, so benches that read ``channel.stats`` off a synchronous run can read
``metrics.comm`` off an asynchronous one and compare like with like. On top
of that it tracks what only a real network has: frames dropped (and why),
in-flight message histograms, and per-phase simulated latency.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.smc.parties import CommStats


@dataclass
class LatencyStats:
    """Streaming summary of simulated one-way latencies (milliseconds)."""

    count: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0

    def add(self, latency_ms: float) -> None:
        self.count += 1
        self.total_ms += latency_ms
        self.max_ms = max(self.max_ms, latency_ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


def _inflight_bucket(inflight: int) -> int:
    """Power-of-two histogram bucket (0, 1, 2, 4, 8, ...)."""
    bucket = 1
    while bucket < inflight:
        bucket *= 2
    return bucket if inflight else 0


@dataclass
class NetMetrics:
    """Everything the bus measures about one run."""

    comm: CommStats = field(default_factory=CommStats)
    frames_sent: int = 0
    frames_delivered: int = 0
    bytes_sent: int = 0
    sent_by_kind: Counter = field(default_factory=Counter)
    drops: Counter = field(default_factory=Counter)  # reason -> count
    dropped_bytes: int = 0
    #: Messages abandoned by their sender after exhausting every retry —
    #: these never reach :meth:`on_deliver`, so without this counter they
    #: would vanish from the latency picture entirely.
    dropped_after_retry: int = 0
    retry_exhausted_by: Counter = field(default_factory=Counter)
    inflight: int = 0
    max_inflight: int = 0
    inflight_histogram: Counter = field(default_factory=Counter)
    phase: str = "idle"
    latency_by_phase: dict = field(default_factory=dict)

    def set_phase(self, phase: str) -> None:
        self.phase = phase

    def on_send(self, kind_name: str, nbytes: int) -> None:
        self.frames_sent += 1
        self.bytes_sent += nbytes
        self.sent_by_kind[kind_name] += 1
        self.inflight += 1
        self.max_inflight = max(self.max_inflight, self.inflight)
        self.inflight_histogram[_inflight_bucket(self.inflight)] += 1

    def on_drop(self, reason: str, nbytes: int) -> None:
        self.inflight -= 1
        self.drops[reason] += 1
        self.dropped_bytes += nbytes

    def on_retry_exhausted(self, what: str = "message") -> None:
        """Record a message its sender gave up on after max retries."""
        self.dropped_after_retry += 1
        self.retry_exhausted_by[what] += 1

    def on_deliver(
        self, sender: str, receiver: str, nbytes: int, latency_ms: float
    ) -> None:
        self.inflight -= 1
        self.frames_delivered += 1
        self.comm.record(sender, receiver, nbytes)
        self.latency_by_phase.setdefault(self.phase, LatencyStats()).add(
            latency_ms
        )

    @property
    def frames_dropped(self) -> int:
        return sum(self.drops.values())

    def merge_channel_stats(self, stats: CommStats) -> None:
        """Fold a synchronous :class:`CommStats` into this run's totals.

        Lets hybrid drivers (e.g. a local SMC step inside an async global
        query) account in one place.
        """
        self.comm.messages += stats.messages
        self.comm.bytes += stats.bytes
        for edge, size in stats.by_edge.items():
            self.comm.by_edge[edge] = self.comm.by_edge.get(edge, 0) + size

    def summary(self) -> dict:
        """Flat dict for bench tables and logs."""
        return {
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "frames_dropped": self.frames_dropped,
            "dropped_after_retry": self.dropped_after_retry,
            "retry_exhausted_by": dict(self.retry_exhausted_by),
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.comm.bytes,
            "max_inflight": self.max_inflight,
            "drop_reasons": dict(self.drops),
            "latency_ms_by_phase": {
                phase: round(stats.mean_ms, 3)
                for phase, stats in self.latency_by_phase.items()
            },
        }
