"""The message bus: per-link latency/jitter/loss models over asyncio.

The bus is the SSI-side network fabric of the asymmetric architecture: every
frame between PDS tokens, the SSI and the querier crosses it as *bytes*
(through :mod:`repro.net.codec`), and each directed link applies a
:class:`LinkProfile` — base latency, jitter, i.i.d. loss, and an optional
bandwidth that adds serialization delay proportional to frame size.

Two clocks coexist:

* **simulated time** — the latency a frame *would* experience, sampled from
  the link profile and recorded in :class:`~repro.net.metrics.NetMetrics`
  (per-phase latency summaries);
* **real time** — the asyncio delay actually awaited, ``simulated *
  time_scale``. The default ``time_scale=0`` delivers on the next loop tick,
  so benches with thousands of nodes finish in seconds while preserving the
  concurrency structure (interleaving, retries, churn windows).

Endpoints can be flipped offline (:meth:`MessageBus.set_offline`): frames
to or from an offline endpoint are dropped, which is how
:class:`~repro.net.runtime.NodeRuntime` models token churn.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

from repro import obs
from repro.errors import ProtocolError
from repro.net.codec import Frame, encode_frame
from repro.net.endpoint import Endpoint
from repro.net.metrics import NetMetrics

#: Extra scheduling slots beyond the mailbox, so short bursts don't block.
_INFLIGHT_SLACK = 64


@dataclass(frozen=True)
class LinkProfile:
    """Fault/latency model of one directed link."""

    latency_ms: float = 5.0
    jitter_ms: float = 0.0
    loss: float = 0.0
    bandwidth_bps: float | None = None  # None = infinite

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ValueError("latency and jitter must be non-negative")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")

    def delay_ms(self, nbytes: int, rng: random.Random) -> float:
        """One simulated one-way delay for a frame of ``nbytes``."""
        delay = self.latency_ms
        if self.jitter_ms:
            delay += rng.random() * self.jitter_ms
        if self.bandwidth_bps is not None:
            delay += nbytes * 8 * 1000.0 / self.bandwidth_bps
        return delay


class MessageBus:
    """Simulated network connecting named endpoints."""

    def __init__(
        self,
        rng: random.Random | None = None,
        default_link: LinkProfile | None = None,
        time_scale: float = 0.0,
        metrics: NetMetrics | None = None,
    ) -> None:
        self.rng = rng or random.Random(0)
        self.default_link = default_link or LinkProfile()
        self.time_scale = time_scale
        self.metrics = metrics or NetMetrics()
        self._endpoints: dict[str, Endpoint] = {}
        self._capacity: dict[str, asyncio.Semaphore] = {}
        self._links: dict[tuple[str, str], LinkProfile] = {}
        self._offline: set[str] = set()
        self._deliveries: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, name: str, queue_size: int = 256) -> Endpoint:
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already registered")
        endpoint = Endpoint(self, name, queue_size)
        self._endpoints[name] = endpoint
        self._capacity[name] = asyncio.Semaphore(queue_size + _INFLIGHT_SLACK)
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        return self._endpoints[name]

    def set_link(self, sender: str, receiver: str, profile: LinkProfile) -> None:
        """Override the profile of the directed ``sender -> receiver`` link."""
        self._links[(sender, receiver)] = profile

    def link_for(self, sender: str, receiver: str) -> LinkProfile:
        return self._links.get((sender, receiver), self.default_link)

    def set_offline(self, name: str, offline: bool) -> None:
        if offline:
            self._offline.add(name)
        else:
            self._offline.discard(name)

    def is_online(self, name: str) -> bool:
        return name not in self._offline

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    async def send(self, sender: str, receiver: str, frame: Frame) -> bool:
        """Encode and transmit one frame; returns whether it was *accepted*.

        ``False`` means the frame was lost at send time (offline party or
        link loss). ``True`` means a delivery was scheduled — it can still
        be dropped if the receiver goes offline before it lands. Senders
        that need reliability layer retries on top (:mod:`repro.net.retry`).
        """
        if receiver not in self._endpoints:
            raise ProtocolError(f"unknown endpoint {receiver!r}")
        data = encode_frame(frame)
        size = len(data)
        metrics = self.metrics
        metrics.on_send(frame.kind_name, size)
        # The span that sent this frame: the delivery task inherits its
        # context (asyncio copies contextvars at task creation), and the
        # deliver/drop events carry its id as a cross-hop link.
        send_span = obs.current_span_id()
        if sender in self._offline or receiver in self._offline:
            metrics.on_drop("offline", size)
            obs.event(
                "net.drop", reason="offline", sender=sender,
                receiver=receiver, bytes=size, link=send_span,
            )
            return False
        link = self.link_for(sender, receiver)
        if link.loss and self.rng.random() < link.loss:
            metrics.on_drop("loss", size)
            obs.event(
                "net.drop", reason="loss", sender=sender,
                receiver=receiver, bytes=size, link=send_span,
            )
            return False
        latency_ms = link.delay_ms(size, self.rng)
        # Backpressure: block the sender while the receiver's mailbox and
        # its in-flight allowance are both full.
        await self._capacity[receiver].acquire()
        task = asyncio.ensure_future(
            self._deliver(sender, receiver, data, size, latency_ms, send_span)
        )
        self._deliveries.add(task)
        task.add_done_callback(self._deliveries.discard)
        return True

    async def _deliver(
        self, sender: str, receiver: str, data: bytes, size: int,
        latency_ms: float, send_span: int | None = None,
    ) -> None:
        try:
            await asyncio.sleep(latency_ms / 1000.0 * self.time_scale)
            if receiver in self._offline:
                self.metrics.on_drop("offline", size)
                obs.event(
                    "net.drop", reason="offline", sender=sender,
                    receiver=receiver, bytes=size, link=send_span,
                )
                return
            await self._endpoints[receiver]._put(data)
            self.metrics.on_deliver(sender, receiver, size, latency_ms)
            obs.event(
                "net.deliver", sender=sender, receiver=receiver,
                bytes=size, latency_ms=round(latency_ms, 3), link=send_span,
            )
        finally:
            self._capacity[receiver].release()

    async def close(self) -> None:
        """Cancel in-flight deliveries (end of a run)."""
        for task in list(self._deliveries):
            task.cancel()
        if self._deliveries:
            await asyncio.gather(*self._deliveries, return_exceptions=True)
        self._deliveries.clear()
