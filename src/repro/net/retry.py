"""Timeout / exponential-backoff retry for unreliable links.

The [TNP14] architecture assumes tokens are "low-powered and highly
disconnected": every reliable exchange in :mod:`repro.globalq.async_protocol`
is an *at-least-once* loop — send, await a matching ACK within a timeout,
back off exponentially (with jitter, to avoid retry synchronization across
thousands of nodes) and retransmit. Receivers deduplicate, making the
composition effectively exactly-once.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterator

from repro.errors import NetTimeout, RetriesExhausted


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule of one reliable operation (real seconds)."""

    attempts: int = 16
    timeout: float = 0.1  # per-attempt wait for the response
    base_delay: float = 0.01  # backoff after the first failure
    factor: float = 1.6
    max_delay: float = 0.4
    jitter: float = 0.5  # fraction of the delay randomized away

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("need at least one attempt")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """The sleep before each retry (``attempts - 1`` values)."""
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            jittered = delay
            if self.jitter and rng is not None:
                jittered = delay * (1 - self.jitter * rng.random())
            yield jittered
            delay = min(delay * self.factor, self.max_delay)


async def with_retries(
    op: Callable[[int], Awaitable],
    policy: RetryPolicy | None = None,
    rng: random.Random | None = None,
    description: str = "operation",
):
    """Run ``op(attempt)`` until it returns, retrying on :class:`NetTimeout`.

    ``op`` performs one full attempt (e.g. transmit + await ACK) and raises
    :class:`NetTimeout` (or ``asyncio.TimeoutError``) when the response does
    not arrive in time. After the last attempt fails,
    :class:`RetriesExhausted` carries the attempt count.
    """
    policy = policy or RetryPolicy()
    delays = policy.delays(rng)
    for attempt in range(policy.attempts):
        try:
            return await op(attempt)
        except (NetTimeout, asyncio.TimeoutError):
            backoff = next(delays, None)
            if backoff is None:
                raise RetriesExhausted(
                    f"{description}: no response after "
                    f"{policy.attempts} attempts"
                ) from None
            await asyncio.sleep(backoff)
    raise AssertionError("unreachable")  # pragma: no cover
