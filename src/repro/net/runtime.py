"""Node scheduling: thousands of concurrent PDS tasks under churn.

:class:`NodeRuntime` owns the population side of a simulated run: it
registers one endpoint per PDS, runs every node's coroutine concurrently,
and drives a :class:`ChurnModel` that flips nodes offline/online while they
work — the "intermittently connected token" reality the tutorial insists
on. Connectivity is enforced by the bus (frames to/from an offline endpoint
are dropped), so node code never checks its own link: it just retries, the
way real sync agents do.

Churn is driven by a single event-heap task rather than one sleeper task
per node, so 5000 nodes cost 5000 protocol tasks plus *one* churn driver.
"""

from __future__ import annotations

import asyncio
import heapq
import random
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.net.bus import MessageBus
from repro.net.endpoint import Endpoint


@dataclass(frozen=True)
class ChurnModel:
    """Stationary on/off connectivity process for every node.

    ``offline_fraction`` is the long-run probability a node is disconnected
    at any instant; ``mean_online`` is the mean connected-session length in
    *real* seconds (sessions are exponential, so flips are memoryless).
    """

    offline_fraction: float = 0.0
    mean_online: float = 0.03

    def __post_init__(self) -> None:
        if not 0.0 <= self.offline_fraction < 1.0:
            raise ValueError("offline fraction must be in [0, 1)")
        if self.mean_online <= 0:
            raise ValueError("mean online session must be positive")

    @property
    def active(self) -> bool:
        return self.offline_fraction > 0.0

    @property
    def mean_offline(self) -> float:
        fraction = self.offline_fraction
        return self.mean_online * fraction / (1.0 - fraction)

    def online_duration(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_online)

    def offline_duration(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_offline)


class NodeRuntime:
    """Schedules node coroutines and their connectivity on one bus."""

    def __init__(
        self,
        bus: MessageBus,
        churn: ChurnModel | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.bus = bus
        self.churn = churn or ChurnModel()
        self.rng = rng or random.Random(0)
        self.node_names: list[str] = []
        self.flips = 0
        self._flip_listeners: list[Callable[[str, bool], None]] = []
        self._churn_task: asyncio.Task | None = None

    def add_flip_listener(self, listener: Callable[[str, bool], None]) -> None:
        """Call ``listener(name, online)`` after every connectivity flip.

        This is how higher layers observe churn *as it happens* — e.g. the
        query service's population membership and result-cache
        invalidation. Listeners run synchronously inside the churn driver,
        so they must be cheap and must not await.
        """
        self._flip_listeners.append(listener)

    def _flip(self, name: str, offline: bool) -> None:
        self.bus.set_offline(name, offline)
        self.flips += 1
        for listener in self._flip_listeners:
            listener(name, not offline)

    def register_node(self, name: str, queue_size: int = 64) -> Endpoint:
        """Register one PDS endpoint managed (and churned) by this runtime."""
        endpoint = self.bus.register(name, queue_size)
        self.node_names.append(name)
        return endpoint

    @property
    def offline_now(self) -> int:
        return sum(
            0 if self.bus.is_online(name) else 1 for name in self.node_names
        )

    async def run(self, coros: dict[str, Awaitable]) -> list:
        """Run every node coroutine to completion under churn.

        ``coros`` maps endpoint names to the node's work; the churn driver
        runs only while nodes do, and every node is back online when this
        returns (a finished node has, by definition, reconnected long
        enough to deliver its last message).
        """
        self.start_churn()
        try:
            return await asyncio.gather(*coros.values())
        finally:
            await self.stop_churn()

    def start_churn(self) -> asyncio.Task | None:
        """Start the churn driver without node coroutines (service mode).

        A long-lived server wants churn flipping its population while *it*
        decides how long to run; :meth:`run` remains the run-to-completion
        wrapper for protocol drivers. No-op (returns None) when churn is
        inactive, there are no nodes, or the driver is already running.
        """
        if not (self.churn.active and self.node_names):
            return None
        if self._churn_task is not None and not self._churn_task.done():
            return self._churn_task
        self._churn_task = asyncio.ensure_future(self._drive_churn())
        return self._churn_task

    async def stop_churn(self) -> None:
        """Cancel the churn driver and reconnect every node."""
        if self._churn_task is not None:
            self._churn_task.cancel()
            try:
                await self._churn_task
            except asyncio.CancelledError:
                pass
            self._churn_task = None
        for name in self.node_names:
            self.bus.set_offline(name, False)

    async def _drive_churn(self) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        events: list[tuple[float, int, str]] = []
        for order, name in enumerate(self.node_names):
            if self.rng.random() < self.churn.offline_fraction:
                self._flip(name, True)
                wake = now + self.churn.offline_duration(self.rng)
            else:
                wake = now + self.churn.online_duration(self.rng)
            heapq.heappush(events, (wake, order, name))
        while events:
            wake, order, name = heapq.heappop(events)
            delay = wake - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            going_offline = self.bus.is_online(name)
            self._flip(name, going_offline)
            duration = (
                self.churn.offline_duration(self.rng)
                if going_offline
                else self.churn.online_duration(self.rng)
            )
            heapq.heappush(events, (loop.time() + duration, order, name))
