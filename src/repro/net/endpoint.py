"""Endpoint mailboxes: bounded queues with receive timeouts.

An :class:`Endpoint` is one party's attachment to the
:class:`~repro.net.bus.MessageBus` — a PDS token, the SSI, the querier. Its
mailbox is a *bounded* ``asyncio.Queue``: when a receiver falls behind, the
bus's per-endpoint capacity semaphore makes senders block in ``send`` —
backpressure instead of unbounded buffering, which is what a token with a
few KB of RAM would actually impose.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.errors import NetTimeout
from repro.net.codec import Frame, decode_frame


class Endpoint:
    """One named party's mailbox on the bus."""

    def __init__(self, bus, name: str, queue_size: int) -> None:
        self._bus = bus
        self.name = name
        self.queue_size = queue_size
        self._queue: asyncio.Queue[bytes] = asyncio.Queue(maxsize=queue_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Endpoint({self.name!r}, pending={self.pending})"

    @property
    def pending(self) -> int:
        """Frames sitting in the mailbox, not yet received."""
        return self._queue.qsize()

    async def send(self, receiver: str, frame: Frame) -> bool:
        """Send a frame from this endpoint (see :meth:`MessageBus.send`)."""
        return await self._bus.send(self.name, receiver, frame)

    async def _put(self, data: bytes) -> None:
        await self._queue.put(data)

    def try_recv(self) -> Frame | None:
        """Non-blocking receive: next frame if one is already queued.

        High-fan-in actors (the SSI during collection) drain bursts with
        this fast path instead of paying a timer per frame.
        """
        try:
            data = self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        return decode_frame(data)

    async def recv(self, timeout: float | None = None) -> Frame:
        """Next frame, decoded; :class:`NetTimeout` after ``timeout`` s.

        Uses ``asyncio.timeout`` rather than ``wait_for``: the latter can
        swallow an *external* cancellation that races with the timer, which
        would make receive loops uncancellable.
        """
        if timeout is None:
            data = await self._queue.get()
        elif hasattr(asyncio, "timeout"):
            try:
                async with asyncio.timeout(timeout):
                    data = await self._queue.get()
            except TimeoutError as exc:
                raise NetTimeout(
                    f"{self.name}: no frame within {timeout:.3f}s"
                ) from exc
        else:  # Python 3.10: emulate with asyncio.wait, which neither
            # swallows external cancellation nor cancels the getter itself.
            getter = asyncio.ensure_future(self._queue.get())
            try:
                done, _ = await asyncio.wait({getter}, timeout=timeout)
            except BaseException:
                getter.cancel()
                raise
            if not done:
                getter.cancel()
                raise NetTimeout(
                    f"{self.name}: no frame within {timeout:.3f}s"
                )
            data = getter.result()
        return decode_frame(data)

    async def recv_match(
        self, predicate: Callable[[Frame], bool], timeout: float
    ) -> Frame:
        """Next frame satisfying ``predicate`` within ``timeout`` seconds.

        Non-matching frames are *discarded* — they are stale responses to
        earlier attempts (e.g. duplicate ACKs from a retransmitted
        contribution), which is exactly the at-least-once noise a retrying
        sender has to tolerate.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise NetTimeout(
                    f"{self.name}: no matching frame within {timeout:.3f}s"
                )
            frame = await self.recv(timeout=remaining)
            if predicate(frame):
                return frame
