"""Guided tour: ``python -m repro`` runs a condensed end-to-end demo.

One minute through the whole tutorial: a PDS with embedded search and
access control (Parts I-II), a global protected aggregate over a small
population (Part III), and the private-graph-query difficulty from the
conclusion. For the full walkthroughs see the scripts in ``examples/``.
"""

from __future__ import annotations

import random


def main() -> None:
    print("repro — Managing Personal Data with Strong Privacy Guarantees")
    print("=" * 62)

    # ------------------------------------------------------------------
    print("\n[Part I+II] One citizen's Personal Data Server")
    from repro.errors import AccessDenied
    from repro.pds import PersonalDataServer, Subject, bill, medical_note

    pds = PersonalDataServer(owner="alice")
    pds.ingest_all(
        [
            medical_note("flu diagnosed, rest prescribed", "flu"),
            bill("electricity invoice march", 84.50, "edf"),
        ]
    )
    hits = pds.search(pds.owner, "invoice")
    print(f"  embedded search for 'invoice': {len(hits)} hit(s), "
          f"kind={hits[0][1].kind}")
    try:
        pds.read(Subject("adtech", "app"), hits[0][1].doc_id)
    except AccessDenied:
        print("  a random app's read was denied and audited "
              f"(chain intact: {pds.audit.verify_chain()})")

    # ------------------------------------------------------------------
    print("\n[Part III] A protected census over 60 citizens")
    from repro.globalq import AggregateQuery, SecureAggregationProtocol
    from repro.pds import PdsPopulation

    population = PdsPopulation(60, seed=4)
    nodes = population.nodes_for(Subject("insee", "querier"))
    report = SecureAggregationProtocol(
        population.fleet, rng=random.Random(1)
    ).run(
        nodes,
        AggregateQuery.count(group_by="city", where=(("kind", "profile"),)),
    )
    top = sorted(report.result.items(), key=lambda kv: -kv[1])[:3]
    print(f"  exact COUNT GROUP BY city via an untrusted cloud "
          f"(leaked categories: {len(report.ssi_tag_histogram)})")
    print(f"  top cities: {[(city, int(count)) for city, count in top]}")

    # ------------------------------------------------------------------
    print("\n[Conclusion] Why graph queries are the hard case")
    import networkx as nx

    from repro.globalq import DistributedGraph, TokenFleet, private_reachability
    from repro.smc.parties import Channel

    graph = nx.connected_watts_strogatz_graph(50, 4, 0.1, seed=2)
    dgraph = DistributedGraph(
        {node: set(graph.neighbors(node)) for node in graph},
        TokenFleet(seed=2),
    )
    target = max(
        graph.nodes, key=lambda n: nx.shortest_path_length(graph, 0, n)
    )
    result = private_reachability(dgraph, 0, target, 32, Channel())
    print(f"  distance(0, {target}) = {result.distance}, and the protocol "
          f"needed exactly {result.rounds} SSI rounds —")
    print("  security must be assured all along the path.")

    print("\nRun `pytest benchmarks/ --benchmark-only -s` for the full "
          "experiment tables (E1-E17).")


if __name__ == "__main__":
    main()
