"""repro.service — the SSI as a long-lived query service.

The tutorial's Secure Storage Infrastructure is not a batch job: it is an
always-on server that many queriers hit concurrently while the population
churns and citizens exercise deletion. This package runs the [TNP14]
protocol families in that regime:

* :class:`~repro.service.descriptor.QueryDescriptor` — canonical query
  form: cache key, wire form, and seed input;
* :class:`~repro.service.population.ServicePopulation` — the shared,
  versioned membership (churn + ``forget()``, snapshot isolation);
* :class:`~repro.service.server.SsiQueryService` — admission control,
  fair scheduling, version-exact result caching, latency accounting;
* :class:`~repro.service.loadgen.OpenLoopLoadGenerator` — Poisson traffic
  and the saturation-knee analysis (bench E24);
* :func:`~repro.service.reference.run_query` — the one-shot batch driver
  every served answer must match bit-identically.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionStats,
    Overloaded,
)
from repro.service.cache import CacheEntry, ResultCache, ResultCacheStats
from repro.service.descriptor import (
    FAMILIES,
    FAMILY_EMBEDDED,
    FAMILY_HISTOGRAM,
    FAMILY_NOISE,
    FAMILY_SECURE_AGG,
    QueryDescriptor,
    WorkloadMix,
    derive_seed,
    embedded_mix,
    standard_mix,
)
from repro.service.loadgen import (
    LoadReport,
    OpenLoopDeltaStorm,
    OpenLoopLoadGenerator,
    find_knee,
)
from repro.service.population import (
    MembershipChurn,
    PopulationSnapshot,
    ServicePopulation,
    slim_population,
)
from repro.service.reference import build_protocol, run_embedded, run_query
from repro.service.server import (
    QueryTicket,
    ServedResult,
    ServiceConfig,
    SsiQueryService,
)
from repro.service.standing import (
    SimClock,
    StandingRegistry,
    StandingSubscription,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CacheEntry",
    "FAMILIES",
    "FAMILY_EMBEDDED",
    "FAMILY_HISTOGRAM",
    "FAMILY_NOISE",
    "FAMILY_SECURE_AGG",
    "LoadReport",
    "MembershipChurn",
    "OpenLoopDeltaStorm",
    "OpenLoopLoadGenerator",
    "Overloaded",
    "PopulationSnapshot",
    "QueryDescriptor",
    "QueryTicket",
    "ResultCache",
    "ResultCacheStats",
    "ServedResult",
    "ServiceConfig",
    "ServicePopulation",
    "SimClock",
    "SsiQueryService",
    "StandingRegistry",
    "StandingSubscription",
    "WorkloadMix",
    "build_protocol",
    "derive_seed",
    "embedded_mix",
    "find_knee",
    "run_embedded",
    "run_query",
    "slim_population",
    "standard_mix",
]
