"""The shared, versioned PDS population a long-lived service queries.

One-shot drivers take a node list and die; a service shares one population
across every concurrent query *while the population changes underneath it*:
tokens churn offline/online, citizens exercise the tutorial's ``forget()``
right and their tuples must stop contributing. :class:`ServicePopulation`
makes those changes observable and exact:

* every mutation (churn flip, forget) bumps a monotonically increasing
  **version** and notifies listeners synchronously — the result cache's
  invalidation hook;
* :meth:`snapshot` returns an immutable view (version + the online nodes in
  population order). Forget is copy-on-write on the node object, so a
  snapshot taken before the deletion keeps answering exactly as admitted —
  in-flight queries are never half-mutated.

Churn can come from two sources: a :class:`~repro.net.runtime.NodeRuntime`
flip listener (:meth:`bind_runtime` — bus connectivity *is* membership, the
PR 1 network model), or :class:`MembershipChurn`, an event-heap driver over
the same :class:`~repro.net.runtime.ChurnModel` statistics for populations
too large to register a bus endpoint each (the 1M-PDS configuration).
"""

from __future__ import annotations

import asyncio
import heapq
import random
from dataclasses import dataclass
from typing import Callable

from repro.globalq.protocol import PdsNode, TokenFleet
from repro.net.runtime import ChurnModel, NodeRuntime
from repro.workloads.people import CITIES, PersonRecord

#: Listener signature: (event, pds_id, new_version). ``event`` is "churn",
#: "forget" or "update".
PopulationListener = Callable[[str, int, int], None]


@dataclass(frozen=True)
class PopulationSnapshot:
    """Immutable view one query executes against."""

    version: int
    nodes: tuple[PdsNode, ...]


class ServicePopulation:
    """A shared node fleet with exact, versioned membership."""

    def __init__(self, nodes: list[PdsNode], fleet: TokenFleet) -> None:
        self._nodes: list[PdsNode] = list(nodes)
        self._online: list[bool] = [True] * len(self._nodes)
        self.fleet = fleet
        self.version = 0
        self._listeners: list[PopulationListener] = []
        self.churn_events = 0
        self.forget_events = 0
        self.update_events = 0

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def online_count(self) -> int:
        return sum(self._online)

    def is_online(self, pds_id: int) -> bool:
        return self._online[pds_id]

    def node(self, pds_id: int) -> PdsNode:
        """The current node object for ``pds_id`` (delta emitters read it)."""
        return self._nodes[pds_id]

    def online_nodes(self):
        """Iterate the online nodes in population order (no snapshot copy)."""
        for node, online in zip(self._nodes, self._online):
            if online:
                yield node

    def add_listener(self, listener: PopulationListener) -> None:
        self._listeners.append(listener)

    def _notify(self, event: str, pds_id: int) -> None:
        self.version += 1
        for listener in self._listeners:
            listener(event, pds_id, self.version)

    # ------------------------------------------------------------------
    # Mutations (each one is a cache-invalidation point)
    # ------------------------------------------------------------------
    def set_online(self, pds_id: int, online: bool) -> bool:
        """Flip one PDS's membership; returns whether anything changed."""
        if self._online[pds_id] == online:
            return False
        self._online[pds_id] = online
        self.churn_events += 1
        self._notify("churn", pds_id)
        return True

    def forget(self, pds_id: int, predicate=None) -> int:
        """Delete a citizen's records (all, or those matching ``predicate``).

        Copy-on-write: the node object is *replaced*, never mutated, so
        snapshots handed to in-flight queries keep the records they were
        admitted with. Returns the number of records forgotten.
        """
        node = self._nodes[pds_id]
        if predicate is None:
            kept: list[PersonRecord] = []
        else:
            kept = [r for r in node.records if not predicate(r)]
        removed = len(node.records) - len(kept)
        if removed == 0:
            return 0
        self._nodes[pds_id] = PdsNode(pds_id=node.pds_id, records=kept)
        self.forget_events += 1
        self._notify("forget", pds_id)
        return removed

    def update_records(self, pds_id: int, records) -> None:
        """Replace a citizen's records (the insert/update mutation).

        Copy-on-write like :meth:`forget`: in-flight snapshots keep the old
        node object. Standing subscriptions see the change as an "update"
        event and emit the encrypted delta moving the PDS's contribution
        from its old records to ``records``.
        """
        node = self._nodes[pds_id]
        self._nodes[pds_id] = PdsNode(pds_id=node.pds_id, records=list(records))
        self.update_events += 1
        self._notify("update", pds_id)

    # ------------------------------------------------------------------
    def snapshot(self) -> PopulationSnapshot:
        """The online population, frozen, with the version it reflects."""
        return PopulationSnapshot(
            version=self.version,
            nodes=tuple(
                node
                for node, online in zip(self._nodes, self._online)
                if online
            ),
        )

    # ------------------------------------------------------------------
    # Churn sources
    # ------------------------------------------------------------------
    def bind_runtime(
        self,
        runtime: NodeRuntime,
        pds_id_of: Callable[[str], int | None],
    ) -> None:
        """Follow a :class:`NodeRuntime`'s connectivity flips.

        ``pds_id_of`` maps an endpoint name to the PDS id it hosts (None
        for endpoints that are not population members, e.g. queriers).
        """

        def on_flip(name: str, online: bool) -> None:
            pds_id = pds_id_of(name)
            if pds_id is not None:
                self.set_online(pds_id, online)

        runtime.add_flip_listener(on_flip)


class MembershipChurn:
    """Seeded on/off membership process for populations of any size.

    The same exponential session statistics as the bus-level
    :class:`~repro.net.runtime.ChurnModel`, driven by one event heap —
    but flipping :class:`ServicePopulation` membership directly instead of
    bus endpoints, so a million-PDS population does not need a million
    mailboxes to churn.
    """

    def __init__(
        self,
        population: ServicePopulation,
        churn: ChurnModel,
        rng: random.Random | None = None,
        sample: int | None = None,
    ) -> None:
        if not churn.active:
            raise ValueError("churn model is inactive (offline_fraction=0)")
        self.population = population
        self.churn = churn
        self.rng = rng or random.Random(0)
        #: Only this many PDSs (uniformly sampled) participate in churn;
        #: None churns everyone. Large fleets churn a sample so the event
        #: heap stays small while cache semantics stay exact.
        count = len(population)
        if sample is None or sample >= count:
            self._members = list(range(count))
        else:
            self._members = self.rng.sample(range(count), sample)
        self._task: asyncio.Task | None = None
        self.flips = 0

    def start(self) -> asyncio.Task:
        if self._task is None or self._task.done():
            self._task = asyncio.ensure_future(self._drive())
        return self._task

    async def stop(self, reconnect: bool = True) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if reconnect:
            for pds_id in self._members:
                self.population.set_online(pds_id, True)

    async def _drive(self) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        events: list[tuple[float, int]] = []
        for pds_id in self._members:
            if self.rng.random() < self.churn.offline_fraction:
                if self.population.set_online(pds_id, False):
                    self.flips += 1
                wake = now + self.churn.offline_duration(self.rng)
            else:
                wake = now + self.churn.online_duration(self.rng)
            heapq.heappush(events, (wake, pds_id))
        while events:
            wake, pds_id = heapq.heappop(events)
            delay = wake - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            going_offline = self.population.is_online(pds_id)
            if self.population.set_online(pds_id, not going_offline):
                self.flips += 1
            duration = (
                self.churn.offline_duration(self.rng)
                if going_offline
                else self.churn.online_duration(self.rng)
            )
            heapq.heappush(events, (loop.time() + duration, pds_id))


def slim_population(
    count: int, seed: int = 23, fleet_seed: int = 0
) -> ServicePopulation:
    """A flat one-record-per-PDS population (the E23/E24 scale workload).

    Salaries are integer-valued floats, so every aggregate is an exact sum
    of integers in double precision — the bit-identical comparisons of the
    service tests never hinge on float association order.
    """
    rng = random.Random(seed)
    cities = list(CITIES)
    nodes = [
        PdsNode(
            i,
            [
                PersonRecord(
                    {
                        "city": cities[rng.randrange(len(cities))],
                        "salary": float(1200 + rng.randrange(0, 4000)),
                    }
                )
            ],
        )
        for i in range(count)
    ]
    return ServicePopulation(nodes, TokenFleet(fleet_seed))
