"""The long-lived SSI query service: scheduling, caching, accounting.

Everything before this PR runs a query the way a benchmark does — build the
population, run one protocol, exit. :class:`SsiQueryService` runs the SSI
the way the tutorial deploys it: a persistent server multiplexing many
concurrent [TNP14] queries over one shared population while tokens churn
and citizens ``forget()``. Three mechanisms make that safe:

* **admission + scheduling** — arrivals pass the
  :class:`~repro.service.admission.AdmissionController` (bounded queues,
  typed :class:`~repro.service.admission.Overloaded` shedding, round-robin
  class fairness); exactly ``max_in_flight`` worker loops execute admitted
  queries on a thread pool, so protocol CPU never blocks the event loop;
* **snapshot execution** — each execution freezes the population
  (:meth:`ServicePopulation.snapshot`) and derives its seed from the
  (descriptor, version) pair, so the answer is bit-identical to the one-shot
  batch driver run over the same snapshot — concurrency cannot perturb it;
* **version-exact caching** — results are cached per canonical descriptor
  and served only while the population version is unchanged
  (:class:`~repro.service.cache.ResultCache`).

Latency accounting flows through ``repro.obs``: per-query spans plus
streaming :class:`~repro.obs.metrics.PercentileHistogram` latency
(p50/p99/p999) overall and per query class.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.crypto.paillier import PaillierPublicKey
from repro.errors import NetError, ProtocolError, QueryError
from repro.globalq.continuous import EncryptedDelta, WindowSpec
from repro.globalq.parallel import DEFAULT_SHARD_SIZE, WorkerPool
from repro.net.codec import (
    KIND_DELTA,
    KIND_DELTA_BATCH,
    KIND_QUERY,
    KIND_REJECT,
    KIND_RESULT,
    KIND_SUBSCRIBE,
    KIND_TELEMETRY,
    KIND_UPDATE,
    Frame,
    decode_delta,
    decode_delta_batch,
    decode_json_payload,
    encode_json_payload,
)
from repro.obs import telemetry as obs_telemetry
from repro.service.admission import AdmissionController, Overloaded
from repro.service.cache import CacheEntry, ResultCache
from repro.service.descriptor import QueryDescriptor, derive_seed
from repro.service.population import PopulationSnapshot, ServicePopulation
from repro.service.reference import run_query
from repro.service.standing import StandingRegistry
from repro.workloads.people import CITIES


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one service instance."""

    #: Concurrent executions (worker loops / executor threads).
    max_in_flight: int = 4
    #: Total admitted-but-waiting queries before shedding.
    max_queue_depth: int = 64
    #: Result-cache entries (0 disables caching).
    cache_capacity: int = 32
    #: Sharded-collection workers per execution (1 = inline).
    workers: int = 1
    shard_size: int = DEFAULT_SHARD_SIZE
    #: Base seed mixed into every per-query seed derivation.
    seed: int = 0
    #: Public attribute domain (noise fakes, histogram prior).
    domain: tuple[str, ...] = tuple(CITIES)
    #: Keep each result's population snapshot on the ServedResult/cache
    #: entry so tests can re-verify answers bit-identically.
    record_snapshots: bool = False
    #: Optional persistent process pool shared across executions.
    pool: WorkerPool | None = None
    #: Executor for embedded-spj queries: None = engine default (columnar
    #: batches), 0 = legacy tuple-at-a-time, N = explicit batch row count.
    #: Never part of the descriptor — both executors answer identically.
    embedded_batch_size: int | None = None
    #: Queued deltas (across all subscriptions) before ingest shedding.
    ingest_queue_depth: int = 4096
    #: Max deltas folded per ingest batch (one executor round trip).
    ingest_batch_max: int = 256
    #: Deltas per fold shard of the batch fold engine (None = default).
    #: Like ``shard_size`` it never depends on the worker count, so every
    #: (workers, batch) cell folds bit-identical pane products.
    fold_shard_size: int | None = None

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.ingest_queue_depth < 1:
            raise ValueError("ingest_queue_depth must be >= 1")
        if self.ingest_batch_max < 1:
            raise ValueError("ingest_batch_max must be >= 1")


@dataclass(frozen=True)
class ServedResult:
    """One answered query, with everything needed to reproduce it."""

    descriptor: QueryDescriptor
    result: dict[str, float]
    #: Population version the answer reflects.
    version: int
    #: Deterministic seed the execution drew its randomness from.
    seed: int
    cached: bool
    #: Submit-to-answer latency (seconds, wall clock).
    latency_s: float
    #: Present when the service records snapshots (bit-identity checks).
    snapshot: PopulationSnapshot | None = None
    stats: dict = field(default_factory=dict)


@dataclass
class QueryTicket:
    """One admitted query waiting for a worker loop."""

    descriptor: QueryDescriptor
    submitted_at: float
    future: asyncio.Future
    #: Distributed trace context the execution runs under (or None).
    trace: obs_telemetry.TraceContext | None = None


class _IngestQueue:
    """Bounded per-subscription delta queues with round-robin fairness.

    One deque per subscription, drained one delta per subscription per
    rotation — a PDS storm against one subscription cannot starve the
    others, the exact fairness discipline the admission controller applies
    to query classes. The bound is global (total queued deltas): overflow
    raises a typed :class:`Overloaded` so the wire layer sheds with the
    same vocabulary as query admission. Pure data structure — all calls
    happen on the event-loop thread.
    """

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.size = 0
        self._queues: OrderedDict[int, deque] = OrderedDict()

    def push(self, sub_id: int, delta: EncryptedDelta) -> None:
        if self.size >= self.depth:
            raise Overloaded("ingest", queued=self.size, limit=self.depth)
        queue = self._queues.get(sub_id)
        if queue is None:
            queue = self._queues[sub_id] = deque()
        queue.append(delta)
        self.size += 1

    def pop_batch(self, limit: int) -> list[tuple[int, EncryptedDelta]]:
        """Up to ``limit`` deltas, one per subscription per rotation."""
        out: list[tuple[int, EncryptedDelta]] = []
        while self._queues and len(out) < limit:
            sub_id, queue = self._queues.popitem(last=False)
            out.append((sub_id, queue.popleft()))
            self.size -= 1
            if queue:
                self._queues[sub_id] = queue  # back of the rotation
        return out


class SsiQueryService:
    """Persistent SSI serving concurrent [TNP14] queries.

    Pass a :class:`repro.obs.telemetry.Telemetry` bundle to make the
    service a traced system: every arrival gets a deterministic sampled
    trace context (or inherits the querier's from the wire frame), sheds
    and SLO breaches trigger its flight recorder, and ``TELEMETRY`` wire
    frames answer with a live snapshot.
    """

    def __init__(
        self,
        population: ServicePopulation,
        config: ServiceConfig | None = None,
        registry: obs.MetricsRegistry | None = None,
        telemetry: "obs_telemetry.Telemetry | None" = None,
    ) -> None:
        self.population = population
        self.config = config or ServiceConfig()
        self.registry = registry or obs.MetricsRegistry()
        self.telemetry = telemetry
        if telemetry is not None and telemetry.recorder.registry is None:
            # Bundles should freeze *this* service's counters (shed depths,
            # per-class rejects), not the process-global registry.
            telemetry.recorder.registry = self.registry
        self.admission = AdmissionController(self.config.max_queue_depth)
        self.cache = ResultCache(self.config.cache_capacity, population)
        #: Standing subscriptions: encrypted delta-maintenance of live
        #: windowed aggregates, coherent with the cache by construction.
        #: Batch folds shard onto the service's persistent worker pool.
        self.standing = StandingRegistry(
            population,
            cache=self.cache,
            registry=self.registry,
            fold_pool=self.config.pool,
            fold_shard_size=self.config.fold_shard_size,
        )
        self.registry.register_stats("service.admission", self.admission.stats)
        self.registry.register_stats("service.cache", self.cache.stats)
        self._workers: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._running = False
        # Ingest pipeline: deltas queue here off the reader loop and fold
        # in batches on a dedicated executor thread, never on the loop.
        self._ingest_queue = _IngestQueue(self.config.ingest_queue_depth)
        self._ingest_pending = 0
        self._ingest_task: asyncio.Task | None = None
        self._ingest_executor: ThreadPoolExecutor | None = None
        self._ingest_event: asyncio.Event | None = None
        self._ingest_idle: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_in_flight,
            thread_name_prefix="ssi-query",
        )
        self._workers = [
            asyncio.ensure_future(self._worker_loop(i))
            for i in range(self.config.max_in_flight)
        ]
        # One dedicated fold thread: batch folds serialize through the
        # registry lock anyway, and a separate executor keeps a delta storm
        # from stealing query-execution threads (and vice versa).
        self._ingest_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="ssi-ingest"
        )
        self._ingest_event = asyncio.Event()
        self._ingest_idle = asyncio.Event()
        self._ingest_idle.set()
        self._ingest_task = asyncio.ensure_future(self._ingest_loop())

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        for ticket in self.admission.drain():
            if not ticket.future.done():
                ticket.future.set_exception(NetError("service stopped"))
        for task in self._workers:
            task.cancel()
        if self._ingest_task is not None:
            self._ingest_task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        if self._ingest_task is not None:
            try:
                await self._ingest_task
            except asyncio.CancelledError:
                pass
            self._ingest_task = None
        if self._ingest_executor is not None:
            self._ingest_executor.shutdown(wait=True)
            self._ingest_executor = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        descriptor: QueryDescriptor,
        trace: obs_telemetry.TraceContext | None = None,
    ) -> ServedResult:
        """Answer ``descriptor``; raises :class:`Overloaded` when shed.

        ``trace`` carries the querier's distributed trace context (e.g.
        decoded off a wire frame); when absent and the service has a
        telemetry bundle, a deterministic head-sampled context is derived
        from the canonical descriptor and the arrival index.
        """
        if not self._running:
            raise NetError("service is not running")
        started = time.perf_counter()
        arrivals = self.registry.counter("service.arrivals")
        arrivals.inc()
        if trace is None and self.telemetry is not None:
            trace = self.telemetry.sampler.context_for(
                descriptor.canonical(), arrivals.value
            )
        hit = self.cache.get(descriptor)
        if hit is not None:
            with obs_telemetry.activate(trace):
                with obs.span(
                    "service.cache_hit",
                    query_class=descriptor.query_class,
                    version=hit.version,
                ):
                    latency = time.perf_counter() - started
                    served = ServedResult(
                        descriptor=descriptor,
                        result=hit.result,
                        version=hit.version,
                        seed=hit.seed,
                        cached=True,
                        latency_s=latency,
                        snapshot=hit.snapshot,
                        stats=hit.stats,
                    )
                    self._account(served)
            return served
        ticket = QueryTicket(
            descriptor=descriptor,
            submitted_at=started,
            future=asyncio.get_running_loop().create_future(),
            trace=trace,
        )
        try:
            self.admission.submit(descriptor.query_class, ticket)
        except Overloaded as exc:
            self._account_shed(exc, trace)
            raise
        self.registry.gauge("service.queue_depth").max(self.admission.depth)
        return await ticket.future

    def _account_shed(
        self,
        exc: Overloaded,
        trace: obs_telemetry.TraceContext | None,
    ) -> None:
        """Make a shed reconstructable: per-class count, depth, recorder."""
        depth = self.admission.depth
        self.registry.counter("service.shed").inc()
        self.registry.counter(f"service.shed.{exc.query_class}").inc()
        self.registry.gauge("service.shed_queue_depth").set(depth)
        with obs_telemetry.activate(trace):
            obs.event(
                "service.shed",
                query_class=exc.query_class,
                queued=exc.queued,
                limit=exc.limit,
                queue_depth=depth,
            )
        if self.telemetry is not None:
            self.telemetry.recorder.trigger(
                "overloaded",
                query_class=exc.query_class,
                queued=exc.queued,
                limit=exc.limit,
                queue_depth=depth,
            )

    # ------------------------------------------------------------------
    # Worker loops
    # ------------------------------------------------------------------
    async def _worker_loop(self, index: int) -> None:
        tracer = obs.get_tracer()
        if tracer is not None:
            tracer.label_current_track(f"ssi-worker-{index}")
        while True:
            ticket = await self.admission.next_ticket()
            if ticket.future.done():
                continue  # submitter went away (e.g. timed out)
            try:
                served = await self._execute(ticket)
            except asyncio.CancelledError:
                if not ticket.future.done():
                    ticket.future.set_exception(NetError("service stopped"))
                raise
            except Exception as exc:  # surface, never kill the loop
                if not ticket.future.done():
                    ticket.future.set_exception(exc)
                self.registry.counter("service.errors").inc()
            else:
                if not ticket.future.done():
                    ticket.future.set_result(served)

    async def _execute(self, ticket: QueryTicket) -> ServedResult:
        descriptor = ticket.descriptor
        # The population may have changed (and the cache been refilled by a
        # sibling worker) between admission and dequeue — re-check.
        hit = self.cache.get(descriptor)
        if hit is not None:
            served = ServedResult(
                descriptor=descriptor,
                result=hit.result,
                version=hit.version,
                seed=hit.seed,
                cached=True,
                latency_s=time.perf_counter() - ticket.submitted_at,
                snapshot=hit.snapshot,
                stats=hit.stats,
            )
            self._account(served)
            return served
        snapshot = self.population.snapshot()
        seed = derive_seed(descriptor, snapshot.version, self.config.seed)
        loop = asyncio.get_running_loop()
        with obs_telemetry.activate(ticket.trace):
            with obs.span(
                "service.query",
                query_class=descriptor.query_class,
                version=snapshot.version,
                population=len(snapshot.nodes),
            ):
                # Copied *inside* the span so the executor thread inherits
                # both the open span and the trace context — shard spans
                # of the collection then nest under service.query.
                ctx = contextvars.copy_context()
                report = await loop.run_in_executor(
                    self._executor,
                    ctx.run,
                    run_query,
                    descriptor,
                    snapshot.nodes,
                    self.population.fleet,
                    seed,
                    self.config.domain,
                    self.config.workers,
                    self.config.shard_size,
                    self.config.pool,
                    self.config.embedded_batch_size,
                )
        stats = {
            "num_pds": report.num_pds,
            "tuples_sent": report.tuples_sent,
            "token_invocations": report.token_invocations,
            "comm_bytes": report.comm_bytes,
        }
        entry = CacheEntry(
            version=snapshot.version,
            result=report.result,
            seed=seed,
            snapshot=snapshot if self.config.record_snapshots else None,
            stats=stats,
        )
        self.cache.put(descriptor, entry)
        served = ServedResult(
            descriptor=descriptor,
            result=report.result,
            version=snapshot.version,
            seed=seed,
            cached=False,
            latency_s=time.perf_counter() - ticket.submitted_at,
            snapshot=entry.snapshot,
            stats=stats,
        )
        self._account(served)
        return served

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _account(self, served: ServedResult) -> None:
        latency_ms = served.latency_s * 1000.0
        self.registry.counter("service.completed").inc()
        if served.cached:
            self.registry.counter("service.cache_hits_served").inc()
        self.registry.percentiles("service.latency_ms").observe(latency_ms)
        self.registry.percentiles(
            f"service.latency_ms.{served.descriptor.query_class}"
        ).observe(latency_ms)
        if self.telemetry is not None:
            self.telemetry.observe_latency(
                served.descriptor.query_class, latency_ms
            )

    def metrics_snapshot(self) -> dict:
        return self.registry.snapshot()

    def telemetry_snapshot(self) -> dict:
        """The TELEMETRY endpoint's payload: live registry + recorder."""
        snap: dict = {"metrics": self.metrics_snapshot()}
        if self.telemetry is not None:
            snap["telemetry"] = self.telemetry.status()
        return snap

    @property
    def latency(self) -> obs.PercentileHistogram:
        return self.registry.percentiles("service.latency_ms")

    # ------------------------------------------------------------------
    # Wire front-end
    # ------------------------------------------------------------------
    async def serve_endpoint(self, endpoint) -> None:
        """Answer ``QUERY`` frames arriving on a bus endpoint.

        Payloads are canonical JSON: a query is ``{"request_id", the
        descriptor fields}``; the reply is a ``RESULT`` (answer + version +
        provenance) or a ``REJECT`` carrying the typed overload fields.
        Each request is dispatched as its own task — the receive loop never
        blocks on an execution, so wire queriers genuinely contend for the
        scheduler (and overflow genuinely sheds). Runs until cancelled —
        the demo and tests wrap it in a task.
        """
        dispatched: set[asyncio.Task] = set()
        seq = 0
        try:
            while True:
                frame = await endpoint.recv()
                if frame.kind == KIND_TELEMETRY:
                    seq += 1
                    task = asyncio.ensure_future(
                        self._answer_telemetry(endpoint, frame, seq)
                    )
                elif frame.kind == KIND_QUERY:
                    seq += 1
                    task = asyncio.ensure_future(
                        self._answer_frame(endpoint, frame, seq)
                    )
                elif frame.kind == KIND_SUBSCRIBE:
                    seq += 1
                    task = asyncio.ensure_future(
                        self._answer_subscribe(endpoint, frame, seq)
                    )
                elif frame.kind == KIND_DELTA:
                    # Fire-and-forget: decode inline (poison frames count
                    # immediately), fold off-loop via the ingest queue.
                    self._ingest_delta(frame)
                    continue
                elif frame.kind == KIND_DELTA_BATCH:
                    self._ingest_delta_batch(frame)
                    continue
                else:
                    continue
                dispatched.add(task)
                task.add_done_callback(dispatched.discard)
        finally:
            for task in dispatched:
                task.cancel()

    async def _answer_telemetry(self, endpoint, frame: Frame, seq: int) -> None:
        request = decode_json_payload(frame.payload) if frame.payload else {}
        reply = Frame(
            kind=KIND_TELEMETRY,
            sender=endpoint.name,
            seq=seq,
            payload=encode_json_payload(
                {
                    "request_id": request.get("request_id"),
                    **self.telemetry_snapshot(),
                }
            ),
        )
        await endpoint.send(frame.sender, reply)

    async def _answer_frame(self, endpoint, frame: Frame, seq: int) -> None:
        request = decode_json_payload(frame.payload)
        request_id = request.get("request_id")
        # The frame's trace context links this span under the querier's
        # sending span; the child context handed to submit() then links
        # admission/execution under this one.
        with obs_telemetry.activate(frame.trace):
            with obs.span(
                "service.frame",
                kind=frame.kind_name,
                sender=frame.sender,
                request_id=request_id,
            ) as frame_span:
                child = None
                if frame.trace is not None:
                    child = frame.trace.child(frame_span.span_id)
                try:
                    descriptor = QueryDescriptor.from_dict(request)
                    served = await self.submit(descriptor, trace=child)
                except Overloaded as exc:
                    reply = Frame(
                        kind=KIND_REJECT,
                        sender=endpoint.name,
                        seq=seq,
                        payload=encode_json_payload(
                            {
                                "request_id": request_id,
                                "error": "overloaded",
                                "query_class": exc.query_class,
                                "queued": exc.queued,
                                "limit": exc.limit,
                            }
                        ),
                        trace=child,
                    )
                    await endpoint.send(frame.sender, reply)
                    return
                reply = Frame(
                    kind=KIND_RESULT,
                    sender=endpoint.name,
                    seq=seq,
                    payload=encode_json_payload(
                        {
                            "request_id": request_id,
                            "result": served.result,
                            "version": served.version,
                            "seed": served.seed,
                            "cached": served.cached,
                            "latency_ms": served.latency_s * 1000.0,
                        }
                    ),
                    trace=child,
                )
                await endpoint.send(frame.sender, reply)

    # ------------------------------------------------------------------
    # Standing queries over the wire
    # ------------------------------------------------------------------
    async def _answer_subscribe(self, endpoint, frame: Frame, seq: int) -> None:
        """Register a standing query from a ``SUBSCRIBE`` frame.

        The payload is the canonical descriptor dict plus ``window``
        (width/slide), the querier's public modulus ``public_n`` (hex) and
        an optional ``start``. Wire subscriptions are wire-fed: the PDSs
        push their own ``DELTA`` frames, the service only folds. The reply
        echoes the subscription id and the population version, or a
        ``REJECT`` with the validation error.
        """
        request = decode_json_payload(frame.payload)
        request_id = request.get("request_id")
        try:
            descriptor = QueryDescriptor.from_dict(request)
            spec = WindowSpec.from_dict(request.get("window") or {})
            public_n = int(request["public_n"], 16)
            public = PaillierPublicKey(n=public_n, n_squared=public_n * public_n)
            sub = self.standing.subscribe(
                descriptor,
                spec,
                public,
                start=request.get("start"),
                requester=frame.sender,
                local_source=bool(request.get("local_source", False)),
            )
        except (KeyError, ValueError, QueryError, ProtocolError) as exc:
            reply = Frame(
                kind=KIND_REJECT,
                sender=endpoint.name,
                seq=seq,
                payload=encode_json_payload(
                    {"request_id": request_id, "error": str(exc)}
                ),
            )
            await endpoint.send(frame.sender, reply)
            return
        self.registry.counter("service.subscriptions").inc()
        reply = Frame(
            kind=KIND_SUBSCRIBE,
            sender=endpoint.name,
            seq=seq,
            payload=encode_json_payload(
                {
                    "request_id": request_id,
                    "subscription": sub.sub_id,
                    "version": self.population.version,
                    "start": sub.start,
                    "window": sub.spec.to_dict(),
                }
            ),
        )
        await endpoint.send(frame.sender, reply)

    # ------------------------------------------------------------------
    # Delta ingest pipeline
    # ------------------------------------------------------------------
    def _reject_delta_frame(self) -> None:
        """One malformed/poison delta frame: counted, never fatal.

        Any decode failure lands here — not just :class:`ProtocolError`
        but anything a hostile payload can throw — so a poison frame can
        never tear down ``serve_endpoint``'s reader loop. Both names
        count: ``globalq.delta.rejected`` (the delta family's tally) and
        ``service.delta.rejected`` (the service-level guard).
        """
        self.registry.counter("globalq.delta.rejected").inc()
        self.registry.counter("service.delta.rejected").inc()

    def ingest_frame(self, frame: Frame) -> None:
        """Feed one ``DELTA``/``DELTA_BATCH`` frame into the ingest
        pipeline — the reader loop's dispatch, callable directly by
        in-process drivers (the delta storm bench, demos)."""
        if frame.kind == KIND_DELTA_BATCH:
            self._ingest_delta_batch(frame)
        elif frame.kind == KIND_DELTA:
            self._ingest_delta(frame)
        else:
            raise ProtocolError(f"not a delta frame: {frame.kind_name}")

    def _ingest_delta(self, frame: Frame) -> None:
        """Queue one wire ``DELTA`` frame; malformed frames are counted."""
        try:
            entry = decode_delta(frame.payload)
        except Exception:
            self._reject_delta_frame()
            return
        self._enqueue_deltas([entry])

    def _ingest_delta_batch(self, frame: Frame) -> None:
        """Queue one ``DELTA_BATCH`` frame's worth of deltas."""
        try:
            entries = decode_delta_batch(frame.payload)
        except Exception:
            self._reject_delta_frame()
            return
        self.registry.histogram("globalq.ingest.frame_batch").observe(
            len(entries)
        )
        self._enqueue_deltas(entries)

    def _enqueue_deltas(self, entries) -> None:
        """Push decoded deltas onto the bounded ingest queue (or fold
        inline when the service isn't running its ingest worker)."""
        if self._ingest_task is None:
            # No worker (service not started): legacy synchronous fold so
            # direct registry-style use keeps working.
            for sub_id, delta in entries:
                try:
                    self.standing.ingest(sub_id, delta)
                except ProtocolError:
                    self._reject_delta_frame()
            return
        accepted = 0
        for sub_id, delta in entries:
            try:
                self._ingest_queue.push(sub_id, delta)
            except Overloaded as exc:
                self._account_ingest_shed(exc)
            else:
                accepted += 1
        if accepted:
            self._ingest_pending += accepted
            self._ingest_idle.clear()
            self._ingest_event.set()
            self.registry.gauge("globalq.ingest.queue_depth").max(
                self._ingest_queue.size
            )

    def _account_ingest_shed(self, exc: Overloaded) -> None:
        self.registry.counter("globalq.ingest.shed").inc()
        obs.event(
            "globalq.ingest.shed",
            queued=exc.queued,
            limit=exc.limit,
        )
        if self.telemetry is not None:
            self.telemetry.recorder.trigger(
                "ingest_overloaded",
                queued=exc.queued,
                limit=exc.limit,
            )

    async def _ingest_loop(self) -> None:
        """Drain the ingest queue in batches on the ingest executor.

        The fold itself (big-int multiplication, possibly sharded onto the
        worker pool) runs on the dedicated ingest thread — the event loop
        only pops the queue and does the accounting, so a delta storm
        cannot stall frame receive or query scheduling.
        """
        tracer = obs.get_tracer()
        if tracer is not None:
            tracer.label_current_track("ssi-ingest")
        loop = asyncio.get_running_loop()
        while True:
            await self._ingest_event.wait()
            self._ingest_event.clear()
            while self._ingest_queue.size:
                batch = self._ingest_queue.pop_batch(
                    self.config.ingest_batch_max
                )
                started = time.perf_counter()
                try:
                    folded, rejected = await loop.run_in_executor(
                        self._ingest_executor,
                        self.standing.ingest_many,
                        batch,
                    )
                except asyncio.CancelledError:
                    raise
                except Exception:  # surface in metrics, never die
                    folded, rejected = 0, len(batch)
                    self.registry.counter("service.errors").inc()
                elapsed = time.perf_counter() - started
                self._ingest_pending -= len(batch)
                self._account_ingest(len(batch), folded, rejected, elapsed)
            if self._ingest_pending == 0:
                self._ingest_idle.set()

    def _account_ingest(
        self, batch: int, folded: int, rejected: int, elapsed: float
    ) -> None:
        self.registry.counter("globalq.ingest.deltas").inc(batch)
        if folded:
            self.registry.counter("globalq.ingest.folded").inc(folded)
        if rejected:
            self.registry.counter("globalq.ingest.rejected").inc(rejected)
        self.registry.histogram("globalq.ingest.batch_size").observe(batch)
        self.registry.percentiles("globalq.ingest.fold_ms").observe(
            elapsed * 1000.0
        )
        if elapsed > 0:
            self.registry.gauge("globalq.ingest.deltas_per_s").set(
                round(batch / elapsed, 1)
            )

    async def drain_ingest(self) -> None:
        """Wait until every queued delta has folded (publication barrier)."""
        if self._ingest_task is None or self._ingest_idle is None:
            return
        if self._ingest_pending:
            await self._ingest_idle.wait()

    async def publish_windows(self, now: int, endpoint=None) -> int:
        """Advance simulated time; push ``UPDATE`` frames to subscribers.

        Every subscription with a wire ``requester`` gets one ``UPDATE``
        frame per sealed boundary (ciphertexts hex-encoded in the JSON
        control payload — the querier, the only key holder, decrypts).
        Returns the number of updates published. Queued ingest drains
        first: a pane must never seal under a delta that already arrived
        (it would turn into a late-delta protocol error on fold).
        """
        await self.drain_ingest()
        published = self.standing.advance(now)
        sent = 0
        for sub_id, updates in published.items():
            sub = self.standing.subscription(sub_id)
            sent += len(updates)
            if endpoint is None or sub.requester is None:
                continue
            for update in updates:
                frame = Frame(
                    kind=KIND_UPDATE,
                    sender=endpoint.name,
                    seq=update.index,
                    payload=encode_json_payload(
                        {
                            "subscription": sub_id,
                            "index": update.index,
                            "window_start": update.window_start,
                            "window_end": update.window_end,
                            "live_value": f"{update.live_value:x}",
                            "live_count": f"{update.live_count:x}",
                            "window_value": f"{update.window_value:x}",
                            "window_count": f"{update.window_count:x}",
                            "deltas": update.deltas,
                            "version": update.version,
                        }
                    ),
                )
                await endpoint.send(sub.requester, frame)
        return sent
