"""Standing-query registry: the SSI side of encrypted delta-maintenance.

:class:`StandingRegistry` plugs :mod:`repro.globalq.continuous` into the
live service stack. It listens on the same synchronous
:class:`~repro.service.population.ServicePopulation` event chain as the
result cache, so every churn flip, ``forget()`` and record update becomes
an encrypted delta *in the same call that bumped the version* — folded
into every matching subscription's window state before any concurrent
query can observe the new membership. Coherence with the recollection path
is kept by raising the cache's per-descriptor version floor
(:meth:`ResultCache.note_delta`) as each delta folds.

Time is simulated (:class:`SimClock`): the driver — bench E27, the stateful
tests, or a wire server loop — stamps deltas with ``clock.now`` and calls
:meth:`advance` to seal panes, collecting one
:class:`~repro.globalq.continuous.WindowUpdate` per boundary. Each sealed
window runs under a ``globalq.window`` span and the ``globalq.delta.*``
metrics family counts emitted/folded/duplicate deltas, their ciphertext
bytes, and sealed windows.

Subscriptions come in two flavours:

* **local** — the registry owns a :class:`DeltaEmitter` and computes deltas
  from the population's plaintext nodes (the in-process simulation, where
  the registry plays every PDS's token);
* **wire-fed** — deltas arrive as ``DELTA`` frames from real PDS endpoints
  (:meth:`ingest`); the registry only folds ciphertexts and cannot see
  plaintext at all, which is the deployment story.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro import obs
from repro.crypto.paillier import PaillierPublicKey
from repro.errors import ProtocolError, QueryError
from repro.globalq.continuous import (
    DEFAULT_FOLD_SHARD_SIZE,
    DeltaEmitter,
    EncryptedDelta,
    FoldEngine,
    StandingQuery,
    WindowSpec,
    WindowUpdate,
    recollect,
    stamp_version,
)
from repro.service.cache import ResultCache
from repro.service.descriptor import FAMILY_SECURE_AGG, QueryDescriptor
from repro.service.population import ServicePopulation


class SimClock:
    """Monotone simulated time the delta/window machinery runs on."""

    def __init__(self, now: int = 0) -> None:
        self.now = now

    def advance(self, to: int) -> None:
        if to < self.now:
            raise ProtocolError(f"clock moved backwards: {to} < {self.now}")
        self.now = to


@dataclass
class StandingSubscription:
    """One registered standing query and its delta-stream accounting."""

    sub_id: int
    descriptor: QueryDescriptor
    spec: WindowSpec
    standing: StandingQuery
    #: Local subscriptions compute their own deltas; wire-fed ones are None.
    emitter: DeltaEmitter | None
    #: Cache key (canonical descriptor) whose floor delta folds raise.
    key: str = ""
    #: Wire subscriber address UPDATE frames go to (None = in-process).
    requester: str | None = None
    #: Updates published at sealed boundaries, oldest first (the in-process
    #: consumer pops these; the wire path also sends them as frames).
    updates: list[WindowUpdate] = field(default_factory=list)
    deltas_emitted: int = 0
    delta_bytes: int = 0
    start: int = 0
    #: Sharded fold engine for batch ingest (None = plain serial fold).
    engine: FoldEngine | None = None


class StandingRegistry:
    """All standing subscriptions of one service instance."""

    def __init__(
        self,
        population: ServicePopulation,
        cache: ResultCache | None = None,
        registry: obs.MetricsRegistry | None = None,
        clock: SimClock | None = None,
        fold_pool=None,
        fold_shard_size: int | None = None,
    ) -> None:
        self.population = population
        self.cache = cache
        self.registry = registry or obs.MetricsRegistry()
        self.clock = clock or SimClock()
        #: Persistent :class:`~repro.globalq.parallel.WorkerPool` batch
        #: folds shard onto (None = inline). Shard geometry never depends
        #: on the pool, so attaching one cannot change a ciphertext.
        self.fold_pool = fold_pool
        self.fold_shard_size = fold_shard_size
        self._subs: dict[int, StandingSubscription] = {}
        self._next_id = 1
        #: Batch ingest runs on an executor thread while population events
        #: fold synchronously on the caller's thread — one reentrant lock
        #: serializes every fold/advance so pane state never tears.
        self._lock = threading.RLock()
        population.add_listener(self._on_population_event)

    def __len__(self) -> int:
        return len(self._subs)

    def subscription(self, sub_id: int) -> StandingSubscription:
        try:
            return self._subs[sub_id]
        except KeyError:
            raise ProtocolError(f"unknown subscription {sub_id}") from None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @staticmethod
    def _validate(descriptor: QueryDescriptor) -> None:
        if descriptor.family != FAMILY_SECURE_AGG:
            raise QueryError(
                "standing queries run the secure-aggregation family "
                f"(got {descriptor.family!r})"
            )
        if descriptor.query.group_by is not None:
            raise QueryError(
                "delta maintenance serves scalar aggregates (no GROUP BY)"
            )
        if descriptor.noise_mode != "none":
            raise QueryError("standing queries take no noise parameters")

    def subscribe(
        self,
        descriptor: QueryDescriptor,
        spec: WindowSpec,
        public: PaillierPublicKey,
        start: int | None = None,
        requester: str | None = None,
        emitter_seed: int = 0,
        local_source: bool = True,
    ) -> StandingSubscription:
        """Register a standing query; bootstraps from the online population.

        The bootstrap is itself a delta stream: one ``Enc(contribution)``
        per online PDS at ``start`` (their previous contribution was 0), so
        the very first sealed window already equals full recollection.
        Wire-fed subscriptions (``local_source=False``) skip it — their
        PDSs push their own bootstrap deltas as ``DELTA`` frames.
        """
        self._validate(descriptor)
        if start is None:
            start = self.clock.now
        standing = StandingQuery(
            query=descriptor.query,
            spec=spec,
            public_n=public.n,
            start=start,
        )
        emitter = None
        if local_source:
            emitter = DeltaEmitter(
                public, descriptor.query, seed=emitter_seed
            )
        sub = StandingSubscription(
            sub_id=self._next_id,
            descriptor=descriptor,
            spec=spec,
            standing=standing,
            emitter=emitter,
            key=descriptor.canonical(),
            requester=requester,
            start=start,
            engine=FoldEngine(
                public.n * public.n,
                pool=self.fold_pool,
                shard_size=self.fold_shard_size or DEFAULT_FOLD_SHARD_SIZE,
            ),
        )
        self._next_id += 1
        self._subs[sub.sub_id] = sub
        if emitter is not None:
            with obs.span(
                "globalq.subscribe",
                subscription=sub.sub_id,
                population=len(self.population),
                start=start,
            ):
                for node in self.population.online_nodes():
                    delta = emitter.refresh(node, True, start)
                    if delta is not None:
                        self._fold(sub, delta)
        self.registry.gauge("globalq.delta.subscriptions").set(len(self._subs))
        return sub

    def unsubscribe(self, sub_id: int) -> None:
        self._subs.pop(sub_id, None)
        self.registry.gauge("globalq.delta.subscriptions").set(len(self._subs))

    # ------------------------------------------------------------------
    # The delta stream
    # ------------------------------------------------------------------
    def _fold(self, sub: StandingSubscription, delta: EncryptedDelta) -> bool:
        with self._lock:
            folded = sub.standing.fold(delta)
            size = delta.ciphertext_bytes(sub.standing.state.n_squared)
            sub.deltas_emitted += 1
            sub.delta_bytes += size
            self.registry.counter("globalq.delta.emitted").inc()
            self.registry.counter("globalq.delta.bytes").inc(size)
            if folded:
                self.registry.counter("globalq.delta.folded").inc()
            else:
                self.registry.counter("globalq.delta.duplicates").inc()
            return folded

    def _on_population_event(
        self, event: str, pds_id: int, version: int
    ) -> None:
        """Churn/forget/update -> one delta per affected local subscription.

        Runs synchronously inside :meth:`ServicePopulation._notify`, i.e.
        atomically with the version bump and the cache purge — the property
        the coherence regression pins.
        """
        if not self._subs:
            return
        with self._lock:
            node = self.population.node(pds_id)
            online = self.population.is_online(pds_id)
            for sub in self._subs.values():
                if sub.emitter is None:
                    continue
                delta = sub.emitter.refresh(node, online, self.clock.now)
                if delta is None:
                    continue
                self._fold(sub, delta)
                if self.cache is not None:
                    self.cache.note_delta(sub.key, version)

    def ingest(self, sub_id: int, delta: EncryptedDelta) -> bool:
        """Fold a wire-fed delta (a decoded ``DELTA`` frame payload).

        The delta outruns the service's membership mirror — no local
        population event accompanies it — so the cache floor is raised
        *above* the current version: recollection answers for this
        descriptor stop being cacheable until the population itself moves.
        """
        with self._lock:
            sub = self.subscription(sub_id)
            folded = self._fold(sub, delta)
            if folded and self.cache is not None:
                self.cache.note_delta(sub.key, self.population.version + 1)
            return folded

    def ingest_many(self, entries) -> tuple[int, int]:
        """Fold a batch of wire-fed ``(subscription_id, delta)`` pairs.

        The decoded payload of one ``DELTA_BATCH`` frame (or a drained
        ingest-queue batch). Deltas are grouped per subscription and folded
        through the subscription's sharded
        :class:`~repro.globalq.continuous.FoldEngine` — admission (replay
        rejection, pane assignment) stays serial under the lock, only the
        ciphertext products parallelize. Unlike :meth:`ingest`, the batch
        path is tolerant: entries for unknown subscriptions or sealed
        panes are dropped and counted instead of raising, so one poison
        delta cannot sink its batchmates. Returns ``(folded, rejected)``;
        replayed duplicates count in neither (they are tallied under
        ``globalq.delta.duplicates`` as usual).
        """
        with self._lock:
            groups: dict[int, list[EncryptedDelta]] = {}
            rejected = 0
            for sub_id, delta in entries:
                if sub_id not in self._subs:
                    rejected += 1
                    continue
                groups.setdefault(sub_id, []).append(delta)
            folded_total = 0
            for sub_id, deltas in groups.items():
                sub = self._subs[sub_id]
                state = sub.standing.state
                fresh = [
                    delta
                    for delta in deltas
                    if delta.timestamp >= state.advanced_to
                ]
                rejected += len(deltas) - len(fresh)
                if not fresh:
                    continue
                duplicates_before = state.duplicates
                folded = sub.standing.fold_many(fresh, engine=sub.engine)
                size = sum(
                    delta.ciphertext_bytes(state.n_squared)
                    for delta in fresh
                )
                sub.deltas_emitted += len(fresh)
                sub.delta_bytes += size
                self.registry.counter("globalq.delta.emitted").inc(
                    len(fresh)
                )
                self.registry.counter("globalq.delta.bytes").inc(size)
                if folded:
                    self.registry.counter("globalq.delta.folded").inc(folded)
                duplicates = state.duplicates - duplicates_before
                if duplicates:
                    self.registry.counter("globalq.delta.duplicates").inc(
                        duplicates
                    )
                if folded and self.cache is not None:
                    self.cache.note_delta(
                        sub.key, self.population.version + 1
                    )
                folded_total += folded
            return folded_total, rejected

    # ------------------------------------------------------------------
    # Window sealing
    # ------------------------------------------------------------------
    def advance(self, now: int) -> dict[int, list[WindowUpdate]]:
        """Move simulated time; seal every crossed boundary per subscription.

        Returns the newly published updates keyed by subscription id (also
        appended to each subscription's ``updates`` list), each stamped
        with the publication-time population version.
        """
        with self._lock:
            return self._advance_locked(now)

    def _advance_locked(self, now: int) -> dict[int, list[WindowUpdate]]:
        self.clock.advance(now)
        version = self.population.version
        published: dict[int, list[WindowUpdate]] = {}
        for sub in self._subs.values():
            updates = sub.standing.advance(now)
            if not updates:
                continue
            stamped = []
            for update in updates:
                update = stamp_version(update, version)
                with obs.span(
                    "globalq.window",
                    subscription=sub.sub_id,
                    index=update.index,
                    window_start=update.window_start,
                    window_end=update.window_end,
                    deltas=update.deltas,
                ):
                    obs.event(
                        "globalq.window.sealed",
                        subscription=sub.sub_id,
                        index=update.index,
                        version=version,
                    )
                stamped.append(update)
                self.registry.counter("globalq.delta.windows").inc()
            sub.updates.extend(stamped)
            published[sub.sub_id] = stamped
        return published

    # ------------------------------------------------------------------
    # The differential reference
    # ------------------------------------------------------------------
    def reference(self, sub_id: int) -> tuple[int, int]:
        """Plaintext full recollection for one subscription, right now."""
        sub = self.subscription(sub_id)
        return recollect(
            self.population.online_nodes(), sub.descriptor.query
        )


__all__ = [
    "SimClock",
    "StandingRegistry",
    "StandingSubscription",
]
