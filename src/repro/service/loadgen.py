"""Open-loop Poisson traffic against the SSI query service.

Open-loop means arrivals are scheduled by the clock, not by completions: a
saturated service keeps receiving new queries at the offered rate, queues
grow, and admission control sheds — which is precisely the regime where the
p999 latency and the saturation knee live. (A closed-loop generator, which
waits for each answer before sending the next, can never drive a server
past one-in-flight per client and hides the knee entirely.)

The generator draws exponential inter-arrival gaps from a seeded rng, picks
each query class from a :class:`~repro.service.descriptor.WorkloadMix`, and
records every outcome — answered (cached or computed), shed, errored — in a
:class:`LoadReport` whose latency distribution is a streaming
:class:`~repro.obs.metrics.PercentileHistogram`. :func:`find_knee` then
locates the saturation knee across an arrival-rate sweep: the highest
offered rate the service still answers at goodput ≥ ``threshold`` of
offered.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.obs.metrics import PercentileHistogram
from repro.service.admission import Overloaded
from repro.service.descriptor import WorkloadMix
from repro.service.server import ServedResult, SsiQueryService


@dataclass
class LoadReport:
    """Everything one open-loop run observed."""

    rate: float
    duration_s: float
    offered: int = 0
    completed: int = 0
    shed: int = 0
    errors: int = 0
    cache_hits: int = 0
    offered_by_class: dict = field(default_factory=dict)
    completed_by_class: dict = field(default_factory=dict)
    shed_by_class: dict = field(default_factory=dict)
    latency_ms: PercentileHistogram = field(
        default_factory=PercentileHistogram
    )
    #: Completed ServedResults, kept only when the run records them
    #: (bit-identity verification); None otherwise.
    results: list[ServedResult] | None = None

    @property
    def goodput(self) -> float:
        """Completed queries per second of run duration."""
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def offered_rate(self) -> float:
        return self.offered / self.duration_s if self.duration_s else 0.0

    def summary(self) -> dict:
        return {
            "rate": self.rate,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "goodput_qps": self.goodput,
            "offered_qps": self.offered_rate,
            "latency_ms": self.latency_ms.summary(),
            "offered_by_class": dict(self.offered_by_class),
            "completed_by_class": dict(self.completed_by_class),
            "shed_by_class": dict(self.shed_by_class),
        }


class OpenLoopLoadGenerator:
    """Poisson arrivals over a mixed workload, fired at a service."""

    def __init__(
        self,
        service: SsiQueryService,
        mix: WorkloadMix,
        seed: int = 0,
    ) -> None:
        self.service = service
        self.mix = mix
        self.seed = seed

    async def run(
        self,
        rate: float,
        duration_s: float,
        keep_results: bool = False,
        max_queries: int | None = None,
    ) -> LoadReport:
        """Offer ``rate`` queries/s for ``duration_s`` seconds.

        Arrivals are independent of completions: each submission runs as
        its own task while the generator sleeps to the next arrival time.
        The report is complete — the run drains every in-flight query
        before returning (the *latency* of queries past the knee is part
        of the signal, so none are abandoned).
        """
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        rng = random.Random(self.seed)
        report = LoadReport(rate=rate, duration_s=duration_s)
        if keep_results:
            report.results = []
        loop = asyncio.get_running_loop()
        deadline = loop.time() + duration_s
        inflight: set[asyncio.Task] = set()

        async def one(descriptor) -> None:
            try:
                served = await self.service.submit(descriptor)
            except Overloaded:
                report.shed += 1
                by = report.shed_by_class
                by[descriptor.query_class] = (
                    by.get(descriptor.query_class, 0) + 1
                )
            except Exception:
                report.errors += 1
            else:
                report.completed += 1
                by = report.completed_by_class
                by[descriptor.query_class] = (
                    by.get(descriptor.query_class, 0) + 1
                )
                if served.cached:
                    report.cache_hits += 1
                report.latency_ms.observe(served.latency_s * 1000.0)
                if report.results is not None:
                    report.results.append(served)

        # Arrivals are pinned to an absolute schedule: when the event loop
        # is starved by query CPU (the saturated regime!), the generator
        # wakes late and submits the overdue arrivals immediately instead
        # of silently offering less — otherwise saturation would throttle
        # the offered load and hide the knee it causes.
        next_arrival = loop.time()
        while next_arrival < deadline:
            if max_queries is not None and report.offered >= max_queries:
                break
            now = loop.time()
            if next_arrival > now:
                await asyncio.sleep(next_arrival - now)
            descriptor = self.mix.pick(rng)
            report.offered += 1
            by = report.offered_by_class
            by[descriptor.query_class] = by.get(descriptor.query_class, 0) + 1
            task = asyncio.ensure_future(one(descriptor))
            inflight.add(task)
            task.add_done_callback(inflight.discard)
            next_arrival += rng.expovariate(rate)
            await asyncio.sleep(0)  # let submissions start between arrivals
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)
        return report


class OpenLoopDeltaStorm:
    """Open-loop delta traffic: pre-encoded frames fired at the clock.

    The write-side sibling of :class:`OpenLoopLoadGenerator`. Frames
    (``DELTA`` or ``DELTA_BATCH``) are pre-encoded by the caller —
    ciphertexts are computed before the run, so the storm measures the
    service's ingest path (decode, queue, fold), never the generator's
    encryption speed — and fired on an absolute Poisson schedule: when the
    fold saturates the loop the generator wakes late and submits the
    overdue frames immediately instead of silently offering less, exactly
    the discipline that exposes the deltas/sec knee.

    Deltas are fire-and-forget, so "completed" is read off the service's
    ``globalq.ingest.folded`` counter after a final :meth:`drain_ingest`
    barrier; shed and rejected come from their counters the same way. The
    resulting :class:`LoadReport` plugs straight into :func:`find_knee`.
    """

    def __init__(self, service: SsiQueryService, seed: int = 0) -> None:
        self.service = service
        self.seed = seed

    async def run(
        self,
        frames,
        rate: float,
        report_rate: float | None = None,
    ) -> LoadReport:
        """Fire ``frames`` (``(frame, delta_count)`` pairs) at ``rate``
        frames/s; ``report_rate`` labels the report (e.g. deltas/s)."""
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        rng = random.Random(self.seed)
        registry = self.service.registry
        folded_before = registry.counter("globalq.ingest.folded").value
        shed_before = registry.counter("globalq.ingest.shed").value
        rejected_before = registry.counter("globalq.ingest.rejected").value
        report = LoadReport(
            rate=report_rate if report_rate is not None else rate,
            duration_s=0.0,
        )
        loop = asyncio.get_running_loop()
        started = loop.time()
        next_arrival = started
        for frame, delta_count in frames:
            now = loop.time()
            if next_arrival > now:
                await asyncio.sleep(next_arrival - now)
            self.service.ingest_frame(frame)
            report.offered += delta_count
            next_arrival += rng.expovariate(rate)
            await asyncio.sleep(0)  # let the ingest worker interleave
        await self.service.drain_ingest()
        report.duration_s = loop.time() - started
        report.completed = int(
            registry.counter("globalq.ingest.folded").value - folded_before
        )
        report.shed = int(
            registry.counter("globalq.ingest.shed").value - shed_before
        )
        report.errors = int(
            registry.counter("globalq.ingest.rejected").value
            - rejected_before
        )
        return report


def find_knee(reports: list[LoadReport], threshold: float = 0.9) -> dict:
    """The saturation knee of an arrival-rate sweep.

    The knee is the highest offered rate whose goodput still keeps up —
    completed ≥ ``threshold`` × offered. Above it the service is past
    saturation: answers lag arrivals and admission control sheds the rest.
    """
    if not reports:
        raise ValueError("need at least one load report")
    ordered = sorted(reports, key=lambda r: r.rate)
    knee = None
    for report in ordered:
        efficiency = (
            report.completed / report.offered if report.offered else 1.0
        )
        if efficiency >= threshold:
            knee = report
    first = ordered[0]
    chosen = knee if knee is not None else first
    return {
        "threshold": threshold,
        "knee_rate_qps": chosen.rate,
        "knee_goodput_qps": chosen.goodput,
        "knee_efficiency": (
            chosen.completed / chosen.offered if chosen.offered else 1.0
        ),
        "saturated_rates": [
            r.rate
            for r in ordered
            if r.offered and r.completed / r.offered < threshold
        ],
    }


__all__ = [
    "LoadReport",
    "OpenLoopDeltaStorm",
    "OpenLoopLoadGenerator",
    "find_knee",
]
