"""Admission control: bounded queues, typed shedding, per-class fairness.

An always-on SSI cannot let offered load queue without bound — queue depth
is latency, and a mailbox that grows forever is how p999 dies. The
controller enforces two limits the service config names explicitly:

* ``max_in_flight`` — how many admitted queries may execute concurrently
  (the scheduler runs exactly that many worker loops);
* ``max_queue_depth`` — how many admitted-but-waiting queries may sit in
  the per-class queues, *summed*. One more arrival is shed with a typed
  :class:`Overloaded` carrying the observed depth, so clients (and the
  load generator) can distinguish "rejected by policy" from a failure.

Fairness is round-robin over the per-class FIFO queues: a burst of one
query class cannot starve the others — each scheduling decision takes the
next non-empty class after the one served last.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.errors import NetError


class Overloaded(NetError):
    """The service shed this query at admission (queues full)."""

    def __init__(self, query_class: str, queued: int, limit: int) -> None:
        super().__init__(
            f"overloaded: {queued} queued >= limit {limit} "
            f"(rejecting {query_class})"
        )
        self.query_class = query_class
        self.queued = queued
        self.limit = limit


@dataclass
class AdmissionStats:
    admitted: int = 0
    shed: int = 0
    admitted_by_class: dict = field(default_factory=dict)
    shed_by_class: dict = field(default_factory=dict)
    queue_depth_high_water: int = 0


class AdmissionController:
    """Per-class bounded FIFO queues with round-robin dequeue."""

    def __init__(self, max_queue_depth: int) -> None:
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_queue_depth = max_queue_depth
        self.stats = AdmissionStats()
        # Insertion-ordered so round-robin order is deterministic.
        self._queues: OrderedDict[str, deque] = OrderedDict()
        self._last_served: str | None = None
        self._available = asyncio.Event()

    @property
    def depth(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def depth_of(self, query_class: str) -> int:
        queue = self._queues.get(query_class)
        return len(queue) if queue is not None else 0

    # ------------------------------------------------------------------
    def submit(self, query_class: str, ticket) -> None:
        """Admit ``ticket`` or raise :class:`Overloaded` (shed)."""
        depth = self.depth
        if depth >= self.max_queue_depth:
            self.stats.shed += 1
            by = self.stats.shed_by_class
            by[query_class] = by.get(query_class, 0) + 1
            raise Overloaded(query_class, depth, self.max_queue_depth)
        queue = self._queues.get(query_class)
        if queue is None:
            queue = self._queues[query_class] = deque()
        queue.append(ticket)
        self.stats.admitted += 1
        by = self.stats.admitted_by_class
        by[query_class] = by.get(query_class, 0) + 1
        self.stats.queue_depth_high_water = max(
            self.stats.queue_depth_high_water, depth + 1
        )
        self._available.set()

    async def next_ticket(self):
        """The next ticket, fair across classes; waits when all are empty."""
        while True:
            ticket = self._try_next()
            if ticket is not None:
                return ticket
            self._available.clear()
            await self._available.wait()

    def _try_next(self):
        classes = [name for name, q in self._queues.items() if q]
        if not classes:
            return None
        # Round-robin: start just after the class served last.
        if self._last_served in classes:
            start = classes.index(self._last_served) + 1
        elif self._last_served is not None:
            # Served class drained: resume from the next registered class.
            registered = list(self._queues)
            later = [
                name
                for name in registered[
                    registered.index(self._last_served) + 1 :
                ]
                if name in classes
            ]
            classes = later + [c for c in classes if c not in later]
            start = 0
        else:
            start = 0
        chosen = classes[start % len(classes)]
        self._last_served = chosen
        return self._queues[chosen].popleft()

    def drain(self) -> list:
        """Remove and return every queued ticket (service shutdown)."""
        tickets = []
        for queue in self._queues.values():
            tickets.extend(queue)
            queue.clear()
        return tickets
