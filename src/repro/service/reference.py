"""The one-shot batch driver the service's answers are measured against.

:func:`run_query` is *the* execution path: the service calls it from its
worker threads, and the tests/bench call it again — standalone, later, in
another process if they like — with the recorded (descriptor, snapshot
nodes, seed) triple. Both calls build the same protocol object with the
same deterministic rng and the same sharded-collection seed, so the two
aggregates must be bit-identical; any divergence is a concurrency bug in
the service (wrong snapshot, stale cache, shared-rng contamination), which
is exactly what the equality assertions exist to catch.

Worker count is *not* part of the determinism contract on purpose: the E23
sharded executor guarantees ciphertexts do not depend on parallelism, so a
reference re-run with ``workers=1`` validates a service answer computed
over a process pool.
"""

from __future__ import annotations

import random

from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.noise import NoisePlan, NoiseProtocol
from repro.globalq.parallel import DEFAULT_SHARD_SIZE, WorkerPool
from repro.globalq.protocol import ProtocolReport, TokenFleet
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.service.descriptor import (
    FAMILY_HISTOGRAM,
    FAMILY_NOISE,
    FAMILY_SECURE_AGG,
    QueryDescriptor,
)


def build_protocol(
    descriptor: QueryDescriptor,
    fleet: TokenFleet,
    seed: int,
    domain: tuple[str, ...],
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    pool: WorkerPool | None = None,
):
    """The protocol-family driver for one execution of ``descriptor``.

    Every random draw — SSI partitioning, fake planning, cipher nonces —
    descends from ``seed``, and collection always routes through the
    sharded executor so the answer is identical at any worker count.
    """
    rng = random.Random(seed)
    if descriptor.family == FAMILY_SECURE_AGG:
        return SecureAggregationProtocol(
            fleet,
            partition_size=descriptor.partition_size,
            rng=rng,
            workers=workers,
            shard_size=shard_size,
            collection_seed=seed,
            pool=pool,
        )
    if descriptor.family == FAMILY_NOISE:
        return NoiseProtocol(
            fleet,
            NoisePlan(
                mode=descriptor.noise_mode,
                ratio=descriptor.noise_ratio,
                domain=tuple(domain),
            ),
            rng=rng,
            workers=workers,
            shard_size=shard_size,
            collection_seed=seed,
            pool=pool,
        )
    assert descriptor.family == FAMILY_HISTOGRAM
    bucketizer = EquiDepthBucketizer(
        {value: 1.0 for value in domain}, descriptor.num_buckets
    )
    return HistogramProtocol(
        fleet,
        bucketizer,
        rng=rng,
        workers=workers,
        shard_size=shard_size,
        collection_seed=seed,
        pool=pool,
    )


def run_query(
    descriptor: QueryDescriptor,
    nodes,
    fleet: TokenFleet,
    seed: int,
    domain: tuple[str, ...],
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    pool: WorkerPool | None = None,
) -> ProtocolReport:
    """Run ``descriptor`` once over ``nodes`` — service path and reference."""
    protocol = build_protocol(
        descriptor, fleet, seed, domain,
        workers=workers, shard_size=shard_size, pool=pool,
    )
    return protocol.run(list(nodes), descriptor.query)
