"""The one-shot batch driver the service's answers are measured against.

:func:`run_query` is *the* execution path: the service calls it from its
worker threads, and the tests/bench call it again — standalone, later, in
another process if they like — with the recorded (descriptor, snapshot
nodes, seed) triple. Both calls build the same protocol object with the
same deterministic rng and the same sharded-collection seed, so the two
aggregates must be bit-identical; any divergence is a concurrency bug in
the service (wrong snapshot, stale cache, shared-rng contamination), which
is exactly what the equality assertions exist to catch.

Worker count is *not* part of the determinism contract on purpose: the E23
sharded executor guarantees ciphertexts do not depend on parallelism, so a
reference re-run with ``workers=1`` validates a service answer computed
over a process pool.
"""

from __future__ import annotations

import random
import threading

from repro.errors import QueryError
from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.noise import NoisePlan, NoiseProtocol
from repro.globalq.parallel import DEFAULT_SHARD_SIZE, WorkerPool
from repro.globalq.protocol import ProtocolReport, TokenFleet
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.service.descriptor import (
    FAMILY_EMBEDDED,
    FAMILY_HISTOGRAM,
    FAMILY_NOISE,
    FAMILY_SECURE_AGG,
    QueryDescriptor,
)

#: Lineitem count of the hosted embedded database when a descriptor leaves
#: ``embedded_rows`` at 0.
DEFAULT_EMBEDDED_ROWS = 2000

#: Hosted Part II engines, one per lineitem count. An embedded database is
#: a single token's stateful object (page cache, RAM arena, staging
#: buffers), so executions serialize on the lock — the service's worker
#: pool parallelizes *across* protocol families, not inside one token.
_EMBEDDED_DBS: dict[int, object] = {}
_EMBEDDED_LOCK = threading.Lock()


def _embedded_db(rows: int):
    """Get-or-build the hosted TPCD-like database (caller holds the lock)."""
    db = _EMBEDDED_DBS.get(rows)
    if db is None:
        from repro.hardware.flash import FlashGeometry
        from repro.hardware.profiles import HardwareProfile, smart_usb_token
        from repro.hardware.token import SecurePortableToken
        from repro.relational.query import EmbeddedDatabase
        from repro.workloads import tpcd

        base = smart_usb_token()
        profile = HardwareProfile(
            name="service-embedded",
            ram_bytes=64 * 1024,
            cpu_mhz=base.cpu_mhz,
            flash_geometry=FlashGeometry(
                page_size=1024, pages_per_block=32, num_blocks=4096
            ),
            flash_cost=base.flash_cost,
            tamper_resistant=True,
        )
        db = EmbeddedDatabase(
            SecurePortableToken(profile=profile),
            tpcd.tpcd_schema(),
            tpcd.ROOT_TABLE,
        )
        tpcd.load(db, tpcd.generate(rows, seed=31))
        db.create_tselect("CUSTOMER", "Mktsegment")
        db.create_tselect("SUPPLIER", "Name")
        _EMBEDDED_DBS[rows] = db
    return db


def _split_attr(name: str) -> tuple[str, str]:
    """Split an embedded-family ``TABLE.Column`` attribute name."""
    table, dot, column = name.partition(".")
    if not dot or not table or not column:
        raise QueryError(
            f"embedded-spj attributes are 'TABLE.Column' names, got {name!r}"
        )
    return table, column


def run_embedded(
    descriptor: QueryDescriptor, batch_size: int | None = None
) -> ProtocolReport:
    """Execute an embedded-spj descriptor on the hosted Part II engine.

    ``batch_size`` selects the executor: None uses the engine default
    (columnar batches), 0 forces the legacy tuple-at-a-time path, N sets an
    explicit batch row count. The answer is engine-independent (batch
    execution is bit-identical by construction), so the executor choice is
    service configuration, not part of the descriptor.
    """
    query = descriptor.query
    filters = []
    for condition in query.where:
        if len(condition) != 2:
            raise QueryError(
                "embedded-spj WHERE supports equality conditions only, "
                f"got {condition!r}"
            )
        table, column = _split_attr(condition[0])
        filters.append((table, column, condition[1]))
    group_by = _split_attr(query.group_by) if query.group_by else None
    if query.attribute is not None:
        agg_table, agg_column = _split_attr(query.attribute)
    else:
        from repro.workloads import tpcd

        agg_table, agg_column = tpcd.ROOT_TABLE, None
    rows = descriptor.embedded_rows or DEFAULT_EMBEDDED_ROWS
    with _EMBEDDED_LOCK:
        db = _embedded_db(rows)
        previous = db.batch_size
        if batch_size is not None:
            db.batch_size = batch_size or None
        try:
            result, stats = db.aggregate(
                filters, (query.aggregate, agg_table, agg_column), group_by
            )
        finally:
            db.batch_size = previous
    return ProtocolReport(
        result={str(group): value for group, value in result.items()},
        protocol=FAMILY_EMBEDDED,
        num_pds=1,
        tuples_sent=0,
        fake_tuples_sent=0,
        token_decryptions=0,
        token_invocations=1,
        comm_bytes=0,
        comm_messages=0,
        integrity_failures=0,
    )


def build_protocol(
    descriptor: QueryDescriptor,
    fleet: TokenFleet,
    seed: int,
    domain: tuple[str, ...],
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    pool: WorkerPool | None = None,
):
    """The protocol-family driver for one execution of ``descriptor``.

    Every random draw — SSI partitioning, fake planning, cipher nonces —
    descends from ``seed``, and collection always routes through the
    sharded executor so the answer is identical at any worker count.
    """
    rng = random.Random(seed)
    if descriptor.family == FAMILY_SECURE_AGG:
        return SecureAggregationProtocol(
            fleet,
            partition_size=descriptor.partition_size,
            rng=rng,
            workers=workers,
            shard_size=shard_size,
            collection_seed=seed,
            pool=pool,
        )
    if descriptor.family == FAMILY_NOISE:
        return NoiseProtocol(
            fleet,
            NoisePlan(
                mode=descriptor.noise_mode,
                ratio=descriptor.noise_ratio,
                domain=tuple(domain),
            ),
            rng=rng,
            workers=workers,
            shard_size=shard_size,
            collection_seed=seed,
            pool=pool,
        )
    assert descriptor.family == FAMILY_HISTOGRAM
    bucketizer = EquiDepthBucketizer(
        {value: 1.0 for value in domain}, descriptor.num_buckets
    )
    return HistogramProtocol(
        fleet,
        bucketizer,
        rng=rng,
        workers=workers,
        shard_size=shard_size,
        collection_seed=seed,
        pool=pool,
    )


def run_query(
    descriptor: QueryDescriptor,
    nodes,
    fleet: TokenFleet,
    seed: int,
    domain: tuple[str, ...],
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    pool: WorkerPool | None = None,
    embedded_batch_size: int | None = None,
) -> ProtocolReport:
    """Run ``descriptor`` once over ``nodes`` — service path and reference.

    The embedded-spj family never touches the population: it answers from
    the service-hosted Part II engine, deterministically (no seed draw), so
    a reference re-run needs only the descriptor.
    """
    if descriptor.family == FAMILY_EMBEDDED:
        return run_embedded(descriptor, batch_size=embedded_batch_size)
    protocol = build_protocol(
        descriptor, fleet, seed, domain,
        workers=workers, shard_size=shard_size, pool=pool,
    )
    return protocol.run(list(nodes), descriptor.query)
