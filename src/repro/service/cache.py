"""Churn-aware aggregate-result cache: version-exact, never stale.

The cache is keyed by the canonical query descriptor and carries the
population version each entry was computed at. Invalidation is *exact*: the
cache subscribes to :class:`~repro.service.population.ServicePopulation`
events, and every churn flip or ``forget()`` purges all entries of older
versions in the same synchronous call that bumped the version — there is no
TTL, no grace window, no "eventually". A hit is only ever served when the
entry's version equals the population's current version, so a served
aggregate is always the one a fresh batch run over the current membership
would produce (asserted bit-identically by the tests and bench E24).

Standing subscriptions (PR 10) add a second coherence axis. Executions run
on worker threads, so a ``forget()`` can land *between* a worker's
dequeue-time cache re-check and its ``put()`` — the version comparison
alone would let that interleaving insert (or serve) an entry for a state a
subscriber has already seen a delta supersede. Two mechanisms close it:

* every ``get``/``put`` and the event purge hold one lock, so the
  check-then-act pairs are atomic against the listener chain that folds
  deltas and bumps the version;
* :meth:`note_delta` records, per descriptor, the version floor implied by
  the subscription's delta sequence; entries below the floor are refused
  on both paths (counted as ``coherence_refusals``). A floor *above* the
  current version marks a descriptor whose delta stream outruns the local
  membership mirror (wire-fed subscriptions): its results are not cached
  at all until the population catches up.

Capacity is a plain LRU bound; ``capacity=0`` disables caching entirely
(the admission/scheduling layers work unchanged).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.service.descriptor import QueryDescriptor
from repro.service.population import PopulationSnapshot, ServicePopulation


@dataclass
class ResultCacheStats:
    """Counters the service exports through ``repro.obs``."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    #: Entries purged because churn/forget moved the population version.
    invalidations: int = 0
    #: Results not cached because their snapshot was already outdated when
    #: the query finished (they were still correct *for their snapshot*).
    stale_results_dropped: int = 0
    #: Entries refused because a standing subscription's delta floor
    #: superseded them (serve or insert attempts below the floor).
    coherence_refusals: int = 0


@dataclass
class CacheEntry:
    """One cached aggregate plus everything needed to reproduce it."""

    version: int
    result: dict[str, float]
    seed: int
    #: The snapshot the result was computed over (kept only when the
    #: service records snapshots, for bit-identical re-verification).
    snapshot: PopulationSnapshot | None = None
    stats: dict = field(default_factory=dict)


class ResultCache:
    """LRU of aggregate results, invalidated exactly on population events."""

    def __init__(
        self, capacity: int, population: ServicePopulation
    ) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self.population = population
        self.stats = ResultCacheStats()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        #: Per-descriptor minimum version a served entry must reflect
        #: (raised by standing-subscription deltas, never lowered).
        self._floors: dict[str, int] = {}
        self._lock = threading.Lock()
        population.add_listener(self._on_population_event)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    # ------------------------------------------------------------------
    def get(self, descriptor: QueryDescriptor) -> CacheEntry | None:
        """The current-version entry for ``descriptor``, or None (miss)."""
        if not self.enabled:
            return None
        key = descriptor.canonical()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.version != self.population.version:
                # Defensive: the event listener purges synchronously, so
                # this only triggers if someone mutated the population
                # without notifying — still never serve it.
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            if entry.version < self._floors.get(key, 0):
                # A subscriber already folded a delta this entry predates.
                del self._entries[key]
                self.stats.coherence_refusals += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(
        self,
        descriptor: QueryDescriptor,
        entry: CacheEntry,
    ) -> bool:
        """Insert a freshly computed result; refuses outdated snapshots.

        Returns False (and counts it) when the population moved on — or a
        standing subscription's delta floor did — while the query was
        executing: the caller still serves the result, it just must not be
        replayed to later queriers.
        """
        if not self.enabled:
            return False
        key = descriptor.canonical()
        with self._lock:
            if entry.version != self.population.version:
                self.stats.stale_results_dropped += 1
                return False
            if entry.version < self._floors.get(key, 0):
                self.stats.coherence_refusals += 1
                return False
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return True

    # ------------------------------------------------------------------
    def note_delta(self, key: str, version: int) -> None:
        """Raise ``key``'s version floor: a subscriber saw a delta at it.

        Called by the standing registry in the same synchronous listener
        chain that folds the delta. Any cached entry predating ``version``
        is purged immediately; later ``get``/``put`` attempts below the
        floor are refused even if the entry's version matches the
        population (the wire-fed case, where deltas arrive without a local
        membership event).
        """
        with self._lock:
            if version <= self._floors.get(key, 0):
                return
            self._floors[key] = version
            entry = self._entries.get(key)
            if entry is not None and entry.version < version:
                del self._entries[key]
                self.stats.coherence_refusals += 1

    def _on_population_event(
        self, event: str, pds_id: int, version: int
    ) -> None:
        """Exact invalidation: every pre-event entry dies with the event."""
        with self._lock:
            if not self._entries:
                return
            purged = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += purged
