"""Canonical query descriptors: the unit the SSI service admits and caches.

A :class:`QueryDescriptor` names everything that determines a query's
*answer* and *cost*: the protocol family ([TNP14] secure-aggregation,
noise, or histogram), the SQL aggregate itself, and the family's public
parameters. Two submissions describing the same computation must canonical-
ize to the same string — that string is the result-cache key, the wire form
of a ``QUERY`` frame, and (together with the population version) the input
of the deterministic seed every execution draws its randomness from. The
seed derivation is what makes a served answer *reproducible*: re-running
the one-shot batch driver with the recorded (descriptor, snapshot, seed)
triple must produce a bit-identical aggregate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import QueryError
from repro.globalq.queries import AggregateQuery

#: The protocol families a descriptor may route to.
FAMILY_SECURE_AGG = "secure-agg"
FAMILY_NOISE = "noise"
FAMILY_HISTOGRAM = "histogram"
#: Part II family: the aggregate runs on a service-hosted embedded SPJ
#: engine (one token's relational database) instead of a Part III
#: population protocol — attribute/group_by name ``TABLE.Column`` pairs of
#: the TPCD-like schema and WHERE conditions are equality filters.
FAMILY_EMBEDDED = "embedded-spj"
FAMILIES = (FAMILY_SECURE_AGG, FAMILY_NOISE, FAMILY_HISTOGRAM, FAMILY_EMBEDDED)


@dataclass(frozen=True)
class QueryDescriptor:
    """One admissible query: family + aggregate + public parameters."""

    family: str
    query: AggregateQuery
    #: secure-agg only: fixed partition size (None = sqrt default).
    partition_size: int | None = None
    #: noise family only: fake-tuple mode and ratio (domain is service
    #: config — it is population-public, not query-specific).
    noise_mode: str = "none"
    noise_ratio: float = 0.0
    #: histogram family only: equi-depth bucket count.
    num_buckets: int = 8
    #: embedded-spj family only: lineitem count of the service's hosted
    #: TPCD-like database (0 everywhere else). Part of the canonical form
    #: because it determines the answer.
    embedded_rows: int = 0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise QueryError(
                f"unknown protocol family {self.family!r}; "
                f"expected one of {FAMILIES}"
            )

    @property
    def query_class(self) -> str:
        """The admission/fairness class this query belongs to."""
        suffix = f"-by-{self.query.group_by}" if self.query.group_by else ""
        return f"{self.family}:{self.query.aggregate.lower()}{suffix}"

    # ------------------------------------------------------------------
    # Canonical form (cache key == wire form == seed input)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "aggregate": self.query.aggregate,
            "attribute": self.query.attribute,
            "group_by": self.query.group_by,
            "where": [list(condition) for condition in self.query.where],
            "partition_size": self.partition_size,
            "noise_mode": self.noise_mode,
            "noise_ratio": self.noise_ratio,
            "num_buckets": self.num_buckets,
            "embedded_rows": self.embedded_rows,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryDescriptor":
        try:
            query = AggregateQuery(
                aggregate=data["aggregate"],
                attribute=data.get("attribute"),
                group_by=data.get("group_by"),
                where=tuple(
                    tuple(condition) for condition in data.get("where", [])
                ),
            )
            return cls(
                family=data["family"],
                query=query,
                partition_size=data.get("partition_size"),
                noise_mode=data.get("noise_mode", "none"),
                noise_ratio=data.get("noise_ratio", 0.0),
                num_buckets=data.get("num_buckets", 8),
                embedded_rows=data.get("embedded_rows", 0),
            )
        except (KeyError, TypeError) as exc:
            raise QueryError(f"malformed query descriptor: {exc}") from exc

    def canonical(self) -> str:
        """Deterministic string form — equal iff the descriptors are."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_canonical(cls, text: str) -> "QueryDescriptor":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise QueryError("descriptor is not valid JSON") from exc
        if not isinstance(data, dict):
            raise QueryError("descriptor must be a JSON object")
        return cls.from_dict(data)


def derive_seed(
    descriptor: QueryDescriptor, version: int, base_seed: int = 0
) -> int:
    """The 64-bit seed of one execution of ``descriptor`` at ``version``.

    Scheduling-independent by construction: it depends only on what is
    being computed and over which population state, never on arrival order,
    worker interleaving, or cache history — which is why a service answer
    and a batch re-run from the recorded version cannot diverge.
    """
    digest = hashlib.sha256(
        f"service:{base_seed}:{version}:{descriptor.canonical()}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")


# ----------------------------------------------------------------------
# The standard mixed workload (loadgen, bench E24, demo)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadMix:
    """Weighted query classes an open-loop generator draws from."""

    entries: tuple[tuple[QueryDescriptor, float], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise QueryError("a workload mix needs at least one entry")
        if any(weight <= 0 for _, weight in self.entries):
            raise QueryError("mix weights must be positive")

    def pick(self, rng) -> QueryDescriptor:
        total = sum(weight for _, weight in self.entries)
        point = rng.random() * total
        for descriptor, weight in self.entries:
            point -= weight
            if point < 0:
                return descriptor
        return self.entries[-1][0]

    def descriptors(self) -> list[QueryDescriptor]:
        return [descriptor for descriptor, _ in self.entries]


def standard_mix(
    value_attribute: str = "salary", group_attribute: str = "city"
) -> WorkloadMix:
    """The four-class mix the tentpole serves concurrently.

    Secure-agg total sum, secure-agg global count, a noised group-by count
    (white-noise fakes), and a histogram-bucketed group-by sum — one query
    class per [TNP14] cost/leak profile, equally weighted.
    """
    return WorkloadMix(
        entries=(
            (
                QueryDescriptor(
                    FAMILY_SECURE_AGG, AggregateQuery.sum(value_attribute)
                ),
                1.0,
            ),
            (
                QueryDescriptor(FAMILY_SECURE_AGG, AggregateQuery.count()),
                1.0,
            ),
            (
                QueryDescriptor(
                    FAMILY_NOISE,
                    AggregateQuery.count(group_by=group_attribute),
                    noise_mode="white",
                    noise_ratio=0.3,
                ),
                1.0,
            ),
            (
                QueryDescriptor(
                    FAMILY_HISTOGRAM,
                    AggregateQuery.sum(
                        value_attribute, group_by=group_attribute
                    ),
                    num_buckets=4,
                ),
                1.0,
            ),
        )
    )


def embedded_mix(rows: int = 4000) -> WorkloadMix:
    """An all-embedded SPJ mix: the E25 query shapes served concurrently.

    Three aggregate shapes over the service-hosted TPCD-like database of
    ``rows`` lineitems — a grouped AVG behind one Tselect, a grouped SUM
    with a string residual, and a two-filter COUNT — so an embedded-family
    sweep exercises root-dominant, residual-heavy, and narrow-intersection
    plans in one open loop.
    """
    return WorkloadMix(
        entries=(
            (
                QueryDescriptor(
                    FAMILY_EMBEDDED,
                    AggregateQuery.avg(
                        "LINEITEM.Price",
                        group_by="SUPPLIER.Name",
                        where=(("CUSTOMER.Mktsegment", "HOUSEHOLD"),),
                    ),
                    embedded_rows=rows,
                ),
                1.0,
            ),
            (
                QueryDescriptor(
                    FAMILY_EMBEDDED,
                    AggregateQuery.sum(
                        "LINEITEM.Quantity",
                        group_by="CUSTOMER.Mktsegment",
                        where=(("SUPPLIER.Nation", "FRANCE"),),
                    ),
                    embedded_rows=rows,
                ),
                1.0,
            ),
            (
                QueryDescriptor(
                    FAMILY_EMBEDDED,
                    AggregateQuery.count(
                        where=(
                            ("CUSTOMER.Mktsegment", "HOUSEHOLD"),
                            ("SUPPLIER.Name", "SUPPLIER-1"),
                        ),
                    ),
                    embedded_rows=rows,
                ),
                1.0,
            ),
        )
    )


__all__ = [
    "FAMILIES",
    "FAMILY_EMBEDDED",
    "FAMILY_HISTOGRAM",
    "FAMILY_NOISE",
    "FAMILY_SECURE_AGG",
    "QueryDescriptor",
    "WorkloadMix",
    "derive_seed",
    "embedded_mix",
    "standard_mix",
]
