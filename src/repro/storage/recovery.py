"""Crash recovery: mount a database from flash alone, in one sequential scan.

The tutorial's secure portable token can be unplugged at any instant, so
*all* host-side state — write buffers, caches, the allocator's view of
which blocks are used — must be reconstructible from the silicon. The
pieces here do exactly that:

* :class:`MountSession` scans every programmed page once (one metered read
  per page, spare area included), validates each
  :class:`~repro.storage.pager.PageHeader` by CRC, groups valid pages by
  ``(log_id, epoch)`` and orders them by sequence number, truncating each
  log at the first gap — which is how a torn tail page (no valid header)
  or a corrupt page (payload CRC mismatch) silently disappears, restoring
  the log to its last durable prefix.
* Structures then :meth:`~MountSession.claim` their logs by name and
  epoch; :meth:`~MountSession.finish` erases whatever nobody claimed —
  half-built reorganization output, logs that were mid-drop at the crash —
  returning those blocks to the allocator's free pool.
* :class:`Manifest` is the tiny commit log that makes multi-log operations
  crash-atomic: one self-contained JSON record per page, durable the
  moment its program completes. A reorganization writes its commit record
  *between* building the new structure and dropping the old one, so
  recovery finds either "not committed" (keep the old epoch, garbage-
  collect the new) or "committed" (keep the new, garbage-collect the old)
  — never both, never neither.

Erased vs programmed-but-empty pages: both read back as ``b""`` from the
data area, so the scan asks the chip's :meth:`~NandFlash.is_erased`
instead of inspecting content — a controller-level distinction real NAND
makes electrically. A programmed-empty page still consumes its in-block
slot and, with a valid header, is a legitimate log page.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro import obs
from repro.errors import RecoveryError, StorageError
from repro.hardware.flash import BlockAllocator, NandFlash
from repro.hardware.ram import RamArena
from repro.storage import pager
from repro.storage.log import PageLog, RecordLog
from repro.storage.pager import PageHeader


@dataclass(frozen=True)
class RecoveredPage:
    """One CRC-valid page attributed to a log during the mount scan."""

    page_no: int
    header: PageHeader
    payload: bytes


@dataclass
class RecoveredLog:
    """Durable prefix of one log incarnation, as found on flash.

    ``pages`` are ordered by header sequence number and form a gapless
    prefix ``0..len(pages)-1``; position ``i`` of the remounted log is
    ``pages[i]``, identical to the pre-crash position (truncation only
    drops suffixes, so stored :class:`RecordAddress`es and chained-page
    pointers stay valid). ``next_seq`` exceeds every sequence number seen
    for this incarnation, valid or not, so post-recovery appends cannot
    collide with junk pages that survived in claimed blocks.
    """

    log_id: int
    epoch: int
    pages: list[RecoveredPage]
    next_seq: int
    truncated_pages: int

    @property
    def page_count(self) -> int:
        return len(self.pages)


@dataclass
class MountReport:
    """What one mount scan saw and did — the E22 recovery-cost metrics."""

    pages_scanned: int = 0
    flash_reads: int = 0
    torn_pages: int = 0
    corrupt_pages: int = 0
    truncated_pages: int = 0
    logs_found: int = 0
    reclaimed_blocks: int = 0

    def as_dict(self) -> dict:
        """JSON-friendly form for benchmark meta blocks."""
        return {
            "pages_scanned": self.pages_scanned,
            "flash_reads": self.flash_reads,
            "torn_pages": self.torn_pages,
            "corrupt_pages": self.corrupt_pages,
            "truncated_pages": self.truncated_pages,
            "logs_found": self.logs_found,
            "reclaimed_blocks": self.reclaimed_blocks,
        }


class MountSession:
    """One mount: scan flash, hand out recovered logs, reclaim the rest.

    Protocol::

        session = mount(flash)
        manifest = Manifest.remount(session)
        log = session.claim_record_log("documents")
        ...                       # every structure claims its logs
        session.finish()          # unclaimed blocks are erased and freed

    The session owns the rebuilt :class:`BlockAllocator`: it starts with
    every block that holds programmed pages marked allocated, and
    :meth:`finish` frees the ones no claimed log accounted for.
    """

    def __init__(self, flash: NandFlash, ram: RamArena | None = None) -> None:
        self.flash = flash
        self.ram = ram
        self.report = MountReport()
        self._logs: dict[tuple[int, int], RecoveredLog] = {}
        self._programmed_blocks: set[int] = set()
        self._claimed_blocks: set[int] = set()
        self._finished = False
        self._scan()
        self.allocator = BlockAllocator(
            flash, allocated=sorted(self._programmed_blocks)
        )
        # Recovery is an anomaly worth a flight-recorder dump: the spans
        # preceding a remount are the crash's forensic record.
        obs.event(
            "recovery.mount",
            pages_scanned=self.report.pages_scanned,
            logs=len(self._logs),
            torn_pages=self.report.torn_pages,
        )

    # ------------------------------------------------------------------
    def _scan(self) -> None:
        geometry = self.flash.geometry
        groups: dict[tuple[int, int], list[RecoveredPage]] = {}
        max_seq: dict[tuple[int, int], int] = {}
        for block in range(geometry.num_blocks):
            first = geometry.first_page_of(block)
            for index in range(geometry.pages_per_block):
                page_no = first + index
                if self.flash.is_erased(page_no):
                    # Sequential in-block programming: everything after the
                    # first erased page is erased too. (Content alone could
                    # not tell us this — a programmed-empty page also reads
                    # back b"".)
                    break
                self._programmed_blocks.add(block)
                data, spare = self.flash.read_page_with_spare(page_no)
                self.report.pages_scanned += 1
                self.report.flash_reads += 1
                header = PageHeader.unpack(spare)
                if header is None:
                    # Interrupted program: the spare area (written last)
                    # never made it. The page is junk occupying a slot.
                    self.report.torn_pages += 1
                    continue
                key = (header.log_id, header.epoch)
                max_seq[key] = max(max_seq.get(key, -1), header.seq)
                if not header.matches(data):
                    self.report.corrupt_pages += 1
                    continue
                groups.setdefault(key, []).append(
                    RecoveredPage(page_no, header, data)
                )
        for key in set(groups) | set(max_seq):
            pages = groups.get(key, [])
            pages.sort(key=lambda page: page.header.seq)
            prefix: list[RecoveredPage] = []
            for page in pages:
                if page.header.seq != len(prefix):
                    break
                prefix.append(page)
            truncated = len(pages) - len(prefix)
            self.report.truncated_pages += truncated
            self._logs[key] = RecoveredLog(
                log_id=key[0],
                epoch=key[1],
                pages=prefix,
                next_seq=max_seq[key] + 1,
                truncated_pages=truncated,
            )
        self.report.logs_found = sum(
            1 for log in self._logs.values() if log.pages
        )

    # ------------------------------------------------------------------
    def find(self, name: str, epoch: int = 0) -> RecoveredLog | None:
        """Recovered state of ``name``'s ``epoch`` incarnation, if any."""
        return self._logs.get((pager.log_id_of(name), epoch))

    def epochs_of(self, name: str) -> list[int]:
        """Every epoch of ``name`` with at least one durable page."""
        log_id = pager.log_id_of(name)
        return sorted(
            epoch
            for (found_id, epoch), log in self._logs.items()
            if found_id == log_id and log.pages
        )

    def claim(self, name: str, epoch: int = 0) -> RecoveredLog:
        """Take ownership of a log's blocks; they survive :meth:`finish`.

        Claiming a log that left no durable pages returns an empty
        :class:`RecoveredLog` — the structure simply starts fresh.
        """
        self._check_open()
        key = (pager.log_id_of(name), epoch)
        recovered = self._logs.get(key)
        if recovered is None:
            recovered = RecoveredLog(
                log_id=key[0],
                epoch=epoch,
                pages=[],
                next_seq=0,
                truncated_pages=0,
            )
            self._logs[key] = recovered
        for page in recovered.pages:
            self._claimed_blocks.add(
                self.flash.geometry.block_of(page.page_no)
            )
        return recovered

    def claim_page_log(self, name: str, epoch: int = 0) -> PageLog:
        """Claim and remount a :class:`PageLog` in one step."""
        return PageLog.remount(self.allocator, name, self.claim(name, epoch))

    def claim_record_log(
        self,
        name: str,
        epoch: int = 0,
        ram: RamArena | None = None,
    ) -> RecordLog:
        """Claim and remount a :class:`RecordLog` in one step."""
        return RecordLog.remount(
            self.allocator,
            name,
            self.claim(name, epoch),
            ram if ram is not None else self.ram,
        )

    def finish(self) -> MountReport:
        """Erase and free every programmed block no claimed log owns.

        This is where the crash's debris goes: half-built reorganization
        epochs that never committed, logs that were mid-drop, torn pages
        stranded alone in a fresh block. Idempotent state-wise but callable
        once — the session is closed afterwards.
        """
        self._check_open()
        garbage = sorted(self._programmed_blocks - self._claimed_blocks)
        for block in garbage:
            self.allocator.free(block)
        self.report.reclaimed_blocks = len(garbage)
        self._finished = True
        return self.report

    def _check_open(self) -> None:
        if self._finished:
            raise RecoveryError("mount session already finished")


def mount(flash: NandFlash, ram: RamArena | None = None) -> MountSession:
    """Scan ``flash`` and open a :class:`MountSession` over what it holds."""
    return MountSession(flash, ram)


class Manifest:
    """Durable commit log: one self-contained JSON record per flash page.

    Writing a record is a single page program, so a record either exists
    completely (header CRC valid) or not at all (torn, invisible after
    remount) — exactly the atomicity primitive multi-log commit points
    need. Records are never updated; later records supersede earlier ones
    of the same kind, and recovery replays the whole (small) log.

    Record kinds used by the stack:

    * ``reorg-commit`` ``{name, epoch}`` — the reorganization of ``name``
      into incarnation ``epoch`` is complete; recovery must load that
      epoch and garbage-collect every other incarnation.
    * ``search-checkpoint`` ``{docs}`` — the first ``docs`` documents are
      fully indexed by the search engine's flushed buckets.
    * ``search-fence`` ``{positions, max_docid}`` — per-bucket page limits
      paired with the checkpoint: postings in pages below the fence are
      trusted only up to ``max_docid`` (ghost-posting filter).
    """

    NAME = "manifest"

    def __init__(self, pages: PageLog) -> None:
        self.pages = pages

    @classmethod
    def create(cls, allocator: BlockAllocator) -> "Manifest":
        """Open a fresh manifest on a fresh token."""
        return cls(PageLog(allocator, cls.NAME))

    @classmethod
    def remount(cls, session: MountSession) -> "Manifest":
        """Claim and rebuild the manifest from a mount session."""
        return cls(session.claim_page_log(cls.NAME))

    def append(self, kind: str, **fields) -> None:
        """Durably commit one record; returns only after it is on flash."""
        record = dict(fields)
        record["kind"] = kind
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        if len(payload) > self.pages.page_size:
            raise StorageError(
                f"manifest record of {len(payload)} B exceeds the "
                f"{self.pages.page_size} B page"
            )
        self.pages.append_page(payload)

    def records(self) -> list[dict]:
        """Every committed record, oldest first."""
        out = []
        for page in self.pages.iter_pages():
            out.append(json.loads(page.decode("utf-8")))
        return out

    def last(self, kind: str) -> dict | None:
        """Most recent record of ``kind``, or None."""
        found = None
        for record in self.records():
            if record["kind"] == kind:
                found = record
        return found

    def committed_epoch(self, name: str, default: int = 0) -> int:
        """Epoch the latest ``reorg-commit`` for ``name`` selected."""
        epoch = default
        for record in self.records():
            if record["kind"] == "reorg-commit" and record["name"] == name:
                epoch = record["epoch"]
        return epoch
