"""Backward-chained hash buckets in flash: the inverted-index layout.

Part II's embedded search engine stores its inverted index as *chained hash
buckets*: each keyword hashes to a bucket; a bucket is a linked list of flash
pages, each page holding entries appended in docid order and a pointer to the
*previous* page of the same bucket. Because pages chain backward and docids
only grow, walking a chain from its head yields entries in **descending
docid order** — the property the pipelined TF-IDF merge exploits.

Only the tiny bucket directory (head page per bucket) and one staging buffer
per bucket live in RAM.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

from repro.errors import RecoveryError, StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.storage import pager
from repro.storage.log import PageLog


def bucket_of(keyword: str, num_buckets: int) -> int:
    """Deterministic bucket assignment of a keyword."""
    digest = hashlib.sha256(keyword.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % num_buckets


def _decode_chain_page(page: bytes) -> tuple[int, list[bytes]]:
    """``(prev_position, entries)`` of one chain page (cache-memoizable)."""
    return (
        pager.unpack_u32(page, 0),
        pager.unpack_records(page[ChainedBucketLog._HEADER :]),
    )


class ChainedBucketLog:
    """A set of backward-chained bucket page lists sharing one page log.

    Entries are opaque ``bytes`` (the search engine packs ``(term, docid,
    weight)`` triples); callers must append them in non-decreasing docid
    order per bucket for the descending-scan property to hold — the class
    does not inspect entry contents.

    Page layout: ``prev_position:u32 | count:u16 | (len:u16 | entry)*`` where
    ``prev_position`` is the log position of the previous page of the same
    bucket, or :data:`pager.NO_PAGE` at chain end.
    """

    _HEADER = 4  # u32 prev pointer, before the packed records

    def __init__(
        self,
        allocator: BlockAllocator,
        num_buckets: int,
        name: str = "buckets",
        ram: RamArena | None = None,
        epoch: int = 0,
        page_decoder=None,
    ) -> None:
        if num_buckets <= 0:
            raise StorageError("need at least one bucket")
        if num_buckets > 0x10000:
            # The owning bucket is persisted in the page header's u16 meta
            # field, which is what makes the directory remountable.
            raise StorageError("at most 65536 buckets are supported")
        self.log = PageLog(allocator, name, epoch=epoch)
        self.num_buckets = num_buckets
        #: Chain-page decoder used for every read of this instance's pages.
        #: Must return a sequence whose ``[0]`` is the previous position and
        #: ``[1]`` the entry list; owners may return richer decodes (the
        #: inverted index adds columnar posting vectors), as long as every
        #: reader of the same log uses the same decoder — the page cache
        #: memoizes one decoded form per page.
        self.page_decoder = page_decoder or _decode_chain_page
        self._heads: list[int] = [pager.NO_PAGE] * num_buckets
        self._staging: list[list[bytes]] = [[] for _ in range(num_buckets)]
        self._staging_sizes: list[int] = [2] * num_buckets
        self._entry_count = 0
        self._ram = ram
        self._ram_handle = None
        if ram is not None:
            # Directory (4 B/bucket) + one page of staging shared across
            # buckets (entries are flushed bucket-by-bucket as pages fill).
            budget = 4 * num_buckets + self.page_size
            self._ram_handle = ram.allocate(budget, tag=f"buckets:{name}")

    @classmethod
    def remount(
        cls,
        session,
        num_buckets: int,
        name: str = "buckets",
        ram: RamArena | None = None,
        epoch: int = 0,
        page_decoder=None,
    ) -> "ChainedBucketLog":
        """Rebuild the bucket directory from a crash-recovery mount scan.

        Each page's header ``meta`` field names its bucket, so the head of
        every chain is simply the bucket's highest surviving log position.
        Backward ``prev`` pointers inside pages reference strictly earlier
        positions, and recovery truncation only drops suffixes — every
        surviving chain is therefore intact by construction.
        """
        recovered = session.claim(name, epoch)
        chain = cls(
            session.allocator,
            num_buckets,
            name=name,
            ram=ram,
            epoch=epoch,
            page_decoder=page_decoder,
        )
        chain.log = PageLog.remount(session.allocator, name, recovered)
        for position, page in enumerate(recovered.pages):
            bucket = page.header.meta
            if bucket >= num_buckets:
                raise RecoveryError(
                    f"bucket log {name!r}: page {page.page_no} claims bucket "
                    f"{bucket}, but the directory has {num_buckets}"
                )
            chain._heads[bucket] = position
            decoded = chain.page_decoder(page.payload)
            chain._entry_count += len(decoded[1])
        return chain

    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        return self.log.page_size

    @property
    def entry_count(self) -> int:
        return self._entry_count

    @property
    def flushed_pages(self) -> int:
        return len(self.log)

    def _capacity(self) -> int:
        return self.page_size - self._HEADER

    def append(self, keyword_bucket: int, entry: bytes) -> None:
        """Stage one entry for a bucket, flushing its page when full."""
        if not 0 <= keyword_bucket < self.num_buckets:
            raise StorageError(
                f"bucket {keyword_bucket} out of range [0, {self.num_buckets})"
            )
        if pager.records_size([entry]) > self._capacity():
            raise StorageError(
                f"entry of {len(entry)} B cannot fit in a bucket page"
            )
        if not pager.record_fits(
            self._staging_sizes[keyword_bucket], entry, self._capacity()
        ):
            self._flush_bucket(keyword_bucket)
        self._staging[keyword_bucket].append(entry)
        self._staging_sizes[keyword_bucket] += 2 + len(entry)
        self._entry_count += 1

    def flush_all(self) -> None:
        """Flush every non-empty staging buffer to flash."""
        for bucket in range(self.num_buckets):
            if self._staging[bucket]:
                self._flush_bucket(bucket)

    def _flush_bucket(self, bucket: int) -> None:
        entries = self._staging[bucket]
        if not entries:
            return
        page = pager.pack_u32(self._heads[bucket]) + pager.pack_records(entries)
        position = self.log.append_page(page, meta=bucket)
        self._heads[bucket] = position
        self._staging[bucket] = []
        self._staging_sizes[bucket] = 2

    # ------------------------------------------------------------------
    def iter_bucket(self, bucket: int) -> Iterator[bytes]:
        """Yield a bucket's entries newest-first (descending docid order).

        Staged (not yet flushed) entries come first, reversed; then each
        chained page from head to tail, entries reversed within the page.
        """
        for _, entry in self.iter_bucket_with_positions(bucket):
            yield entry

    def iter_bucket_with_positions(
        self, bucket: int
    ) -> Iterator[tuple[int | None, bytes]]:
        """Like :meth:`iter_bucket` but yields ``(page_position, entry)``.

        Staged entries (RAM, no page yet) yield ``None`` as position. The
        position lets readers apply recovery fences — "trust entries in
        pages below P only up to docid D" — without touching page formats.
        """
        if not 0 <= bucket < self.num_buckets:
            raise StorageError(
                f"bucket {bucket} out of range [0, {self.num_buckets})"
            )
        for entry in reversed(self._staging[bucket]):
            yield None, entry
        position = self._heads[bucket]
        while position != pager.NO_PAGE:
            decoded = self._chain_page(position)
            for entry in reversed(decoded[1]):
                yield position, entry
            position = decoded[0]

    def iter_decoded(self, bucket: int):
        """Yield ``(page_position, decoded_page)`` head-first along a chain.

        The batch counterpart of :meth:`iter_bucket_with_positions`: same
        page reads in the same order, but each page surfaces once in its
        decoded form (whatever ``page_decoder`` returned) instead of entry
        by entry. Staged entries come first as ``(None, raw_entry_list)``
        in append order — callers iterate them newest-first themselves.
        """
        if not 0 <= bucket < self.num_buckets:
            raise StorageError(
                f"bucket {bucket} out of range [0, {self.num_buckets})"
            )
        if self._staging[bucket]:
            yield None, self._staging[bucket]
        position = self._heads[bucket]
        while position != pager.NO_PAGE:
            decoded = self._chain_page(position)
            yield position, decoded
            position = decoded[0]

    def chain_length(self, bucket: int) -> int:
        """Number of flash pages in a bucket's chain (IO cost of a probe)."""
        length = 0
        position = self._heads[bucket]
        while position != pager.NO_PAGE:
            position = self._chain_page(position)[0]
            length += 1
        return length

    def _chain_page(self, position: int):
        """Decode one chain page via the instance's ``page_decoder``.

        Goes through the page log's memoized decode so repeated chain
        walks (the search engine's IDF pass then merge pass) unpack each
        hot page once.
        """
        return self.log.read_decoded(position, self.page_decoder)

    def drop(self) -> None:
        """Discard all chains and reclaim flash blocks."""
        self.log.drop()
        self._heads = [pager.NO_PAGE] * self.num_buckets
        self._staging = [[] for _ in range(self.num_buckets)]
        self._staging_sizes = [2] * self.num_buckets
        self._entry_count = 0
        if self._ram is not None and self._ram_handle is not None:
            self._ram.free(self._ram_handle)
            self._ram_handle = None
