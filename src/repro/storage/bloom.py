"""Bloom filters: the ~2-bytes-per-key page summaries of the tutorial.

Part II's key index ("Log2: Bloom Filters") writes, for every page of the
``Keys`` log, a small probabilistic summary that a *summary scan* probes
instead of reading data pages. The properties the index relies on — and that
the property-based tests pin down — are:

* **no false negatives**: a key that was inserted always tests positive;
* a false-positive rate that shrinks with bits-per-key, ≈ 0.6185^(bits/key)
  at the optimal number of hash functions.

Hash positions come from an expanding SHA-256 stream (independent per
probe), deterministic across runs so serialized filters are stable.
"""

from __future__ import annotations

import hashlib
import math

from repro.errors import StorageError
from repro.storage import pager


def _hash_stream(key: bytes, count: int):
    """``count`` independent 64-bit hashes of ``key``.

    Derived from an expanding SHA-256 stream rather than double hashing:
    the Kirsch–Mitzenmacher ``h1 + i*h2`` trick probes an arithmetic
    progression, which measurably inflates false positives on the *small*
    per-page filters this package lives on (tens of keys, ~100 bits).
    """
    for block in range((count + 3) // 4):
        digest = hashlib.sha256(key + bytes([block])).digest()
        for word in range(4):
            if block * 4 + word >= count:
                return
            yield int.from_bytes(digest[word * 8 : word * 8 + 8], "little")


def optimal_hash_count(bits_per_key: float) -> int:
    """Number of hash functions minimizing false positives: k = b·ln2."""
    return max(1, round(bits_per_key * math.log(2)))



class BloomFilter:
    """Fixed-size Bloom filter over ``bytes`` keys."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0:
            raise StorageError("Bloom filter needs at least one bit")
        if num_hashes <= 0:
            raise StorageError("Bloom filter needs at least one hash")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._count = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_capacity(cls, capacity: int, bits_per_key: float = 16.0) -> "BloomFilter":
        """Build an empty filter sized for ``capacity`` keys."""
        capacity = max(1, capacity)
        num_bits = max(8, math.ceil(capacity * bits_per_key))
        return cls(num_bits, optimal_hash_count(bits_per_key))

    @classmethod
    def from_keys(
        cls, keys: list[bytes], bits_per_key: float = 16.0
    ) -> "BloomFilter":
        """Build a filter summarizing ``keys`` (one Keys-log page, typically)."""
        bloom = cls.for_capacity(len(keys), bits_per_key)
        for key in keys:
            bloom.add(key)
        return bloom

    # ------------------------------------------------------------------
    def _positions(self, key: bytes):
        for hashed in _hash_stream(key, self.num_hashes):
            yield hashed % self.num_bits

    def add(self, key: bytes) -> None:
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)
        self._count += 1

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[position >> 3] & (1 << (position & 7))
            for position in self._positions(key)
        )

    def __len__(self) -> int:
        """Number of keys added (not the number of distinct keys)."""
        return self._count

    # ------------------------------------------------------------------
    def expected_fpr(self) -> float:
        """Analytic false-positive rate for the current load."""
        if self._count == 0:
            return 0.0
        exponent = -self.num_hashes * self._count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def size_bytes(self) -> int:
        """Serialized size, the quantity the summary-scan IO model charges."""
        return len(self.serialize())

    # ------------------------------------------------------------------
    def serialize(self) -> bytes:
        """Flash representation: ``num_bits | num_hashes | count | bitmap``."""
        return (
            pager.pack_u32(self.num_bits)
            + pager.pack_u16(self.num_hashes)
            + pager.pack_u32(self._count)
            + bytes(self._bits)
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "BloomFilter":
        if len(data) < 10:
            raise StorageError("truncated Bloom filter")
        num_bits = pager.unpack_u32(data, 0)
        num_hashes = pager.unpack_u16(data, 4)
        count = pager.unpack_u32(data, 6)
        bloom = cls(num_bits, num_hashes)
        bitmap = data[10:]
        if len(bitmap) != len(bloom._bits):
            raise StorageError(
                f"Bloom bitmap length {len(bitmap)} does not match "
                f"{num_bits} bits"
            )
        bloom._bits = bytearray(bitmap)
        bloom._count = count
        return bloom
