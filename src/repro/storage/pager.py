"""Binary page-layout helpers shared by all log-structured storage.

Everything a token writes to flash goes through these fixed little-endian
encodings, so page formats stay consistent across the record logs, bucket
chains, Bloom summaries and tree nodes, and so tests can byte-compare pages.

:class:`PageHeader` is the self-describing per-page header every
:class:`~repro.storage.log.PageLog` writes into the page's spare (OOB)
area. It is what makes a database mountable from flash alone: a single
sequential scan can attribute every programmed page to its log, order the
pages, and detect torn or corrupted tails by CRC — no RAM state needed.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import StorageError

U16 = struct.Struct("<H")
U32 = struct.Struct("<I")

#: Sentinel "no page" pointer stored in chained page headers.
NO_PAGE = 0xFFFFFFFF


def pack_u16(value: int) -> bytes:
    if not 0 <= value <= 0xFFFF:
        raise StorageError(f"value {value} does not fit in u16")
    return U16.pack(value)


def pack_u32(value: int) -> bytes:
    if not 0 <= value <= 0xFFFFFFFF:
        raise StorageError(f"value {value} does not fit in u32")
    return U32.pack(value)


def unpack_u16(buffer: bytes, offset: int) -> int:
    return U16.unpack_from(buffer, offset)[0]


def unpack_u32(buffer: bytes, offset: int) -> int:
    return U32.unpack_from(buffer, offset)[0]


def pack_records(records: list[bytes]) -> bytes:
    """Serialize records as ``count | (len | bytes)*``."""
    parts = [pack_u16(len(records))]
    for record in records:
        parts.append(pack_u16(len(record)))
        parts.append(record)
    return b"".join(parts)


def unpack_records(page: bytes) -> list[bytes]:
    """Inverse of :func:`pack_records`; tolerates trailing padding."""
    if not page:
        return []
    count = unpack_u16(page, 0)
    records: list[bytes] = []
    offset = 2
    for _ in range(count):
        length = unpack_u16(page, offset)
        offset += 2
        records.append(page[offset : offset + length])
        offset += length
    return records


def records_size(records: list[bytes]) -> int:
    """Bytes :func:`pack_records` would produce for ``records``."""
    return 2 + sum(2 + len(record) for record in records)


def record_fits(current_size: int, record: bytes, page_size: int) -> bool:
    """Whether appending ``record`` keeps the packed page within ``page_size``."""
    return current_size + 2 + len(record) <= page_size


# ----------------------------------------------------------------------
# Self-describing page headers (spare-area metadata for crash recovery)
# ----------------------------------------------------------------------

#: magic, log_id, epoch, seq, meta, payload_len, header_crc, payload_crc
_HEADER = struct.Struct("<HIIIHHII")

#: Bytes one packed :class:`PageHeader` occupies in the spare area.
PAGE_HEADER_SIZE = _HEADER.size

_HEADER_MAGIC = 0x5D5B  # "]["  — a page bracketed by its log


def log_id_of(name: str) -> int:
    """Stable 32-bit identity of a log name, as stored in page headers."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class PageHeader:
    """Durable identity of one flash page: who wrote it, where, and intact?

    * ``log_id`` — :func:`log_id_of` the owning log's name;
    * ``epoch`` — the log incarnation (reorganizations build the successor
      structure under a new epoch; recovery picks exactly one);
    * ``seq`` — in-log sequence number, strictly increasing per append;
    * ``meta`` — one u16 the owning log may use (tree level, bucket id);
    * ``payload_len``/``payload_crc`` — length and CRC32 of the data area,
      the torn-write detector: a page whose program was cut short fails
      the CRC and recovery truncates the log to the last durable page.

    The header itself carries a second CRC over its own fields, so a
    corrupted header is never mistaken for a valid page of some log.
    """

    log_id: int
    epoch: int
    seq: int
    meta: int
    payload_len: int
    payload_crc: int

    @classmethod
    def for_payload(
        cls,
        log_id: int,
        epoch: int,
        seq: int,
        payload: bytes,
        meta: int = 0,
    ) -> "PageHeader":
        return cls(
            log_id=log_id,
            epoch=epoch,
            seq=seq,
            meta=meta,
            payload_len=len(payload),
            payload_crc=zlib.crc32(payload) & 0xFFFFFFFF,
        )

    def pack(self) -> bytes:
        """Spare-area encoding, self-checksummed."""
        body = _HEADER.pack(
            _HEADER_MAGIC,
            self.log_id,
            self.epoch,
            self.seq,
            self.meta,
            self.payload_len,
            0,
            self.payload_crc,
        )
        header_crc = zlib.crc32(body) & 0xFFFFFFFF
        return _HEADER.pack(
            _HEADER_MAGIC,
            self.log_id,
            self.epoch,
            self.seq,
            self.meta,
            self.payload_len,
            header_crc,
            self.payload_crc,
        )

    @classmethod
    def unpack(cls, spare: bytes) -> "PageHeader | None":
        """Decode a spare area; None if absent, truncated or corrupt."""
        if len(spare) < PAGE_HEADER_SIZE:
            return None
        (
            magic,
            log_id,
            epoch,
            seq,
            meta,
            payload_len,
            header_crc,
            payload_crc,
        ) = _HEADER.unpack_from(spare, 0)
        if magic != _HEADER_MAGIC:
            return None
        body = _HEADER.pack(
            magic, log_id, epoch, seq, meta, payload_len, 0, payload_crc
        )
        if (zlib.crc32(body) & 0xFFFFFFFF) != header_crc:
            return None
        return cls(
            log_id=log_id,
            epoch=epoch,
            seq=seq,
            meta=meta,
            payload_len=payload_len,
            payload_crc=payload_crc,
        )

    def matches(self, payload: bytes) -> bool:
        """Whether ``payload`` is the exact data this header committed to."""
        return (
            len(payload) == self.payload_len
            and (zlib.crc32(payload) & 0xFFFFFFFF) == self.payload_crc
        )
