"""Binary page-layout helpers shared by all log-structured storage.

Everything a token writes to flash goes through these fixed little-endian
encodings, so page formats stay consistent across the record logs, bucket
chains, Bloom summaries and tree nodes, and so tests can byte-compare pages.
"""

from __future__ import annotations

import struct

from repro.errors import StorageError

U16 = struct.Struct("<H")
U32 = struct.Struct("<I")

#: Sentinel "no page" pointer stored in chained page headers.
NO_PAGE = 0xFFFFFFFF


def pack_u16(value: int) -> bytes:
    if not 0 <= value <= 0xFFFF:
        raise StorageError(f"value {value} does not fit in u16")
    return U16.pack(value)


def pack_u32(value: int) -> bytes:
    if not 0 <= value <= 0xFFFFFFFF:
        raise StorageError(f"value {value} does not fit in u32")
    return U32.pack(value)


def unpack_u16(buffer: bytes, offset: int) -> int:
    return U16.unpack_from(buffer, offset)[0]


def unpack_u32(buffer: bytes, offset: int) -> int:
    return U32.unpack_from(buffer, offset)[0]


def pack_records(records: list[bytes]) -> bytes:
    """Serialize records as ``count | (len | bytes)*``."""
    parts = [pack_u16(len(records))]
    for record in records:
        parts.append(pack_u16(len(record)))
        parts.append(record)
    return b"".join(parts)


def unpack_records(page: bytes) -> list[bytes]:
    """Inverse of :func:`pack_records`; tolerates trailing padding."""
    if not page:
        return []
    count = unpack_u16(page, 0)
    records: list[bytes] = []
    offset = 2
    for _ in range(count):
        length = unpack_u16(page, offset)
        offset += 2
        records.append(page[offset : offset + length])
        offset += length
    return records


def records_size(records: list[bytes]) -> int:
    """Bytes :func:`pack_records` would produce for ``records``."""
    return 2 + sum(2 + len(record) for record in records)


def record_fits(current_size: int, record: bytes, page_size: int) -> bool:
    """Whether appending ``record`` keeps the packed page within ``page_size``."""
    return current_size + 2 + len(record) <= page_size
