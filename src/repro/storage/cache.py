"""RAM-charged LRU page cache between :class:`NandFlash` and every reader.

Part II of the tutorial sells its designs by page-read counts under a
<=128 KB RAM budget; the flash-aware indexing literature it cites (PBFilter
and friends) wins precisely by spending a little RAM to avoid re-reading
flash. This module is that trade made explicit: a :class:`PageCache` holds
recently read flash pages in RAM, and its capacity is **charged against the
MCU's** :class:`~repro.hardware.ram.RamArena`, so the budget the benchmarks
report stays honest — a 16-page cache on 2 KB pages really does cost 32 KB
of the arena.

Correctness rules:

* the cache is keyed by **physical page number** and subscribes to the
  flash chip's program/erase notifications, so any content change — a block
  erased by :meth:`BlockAllocator.free` during a reorganization swap, or a
  recycled block being re-programmed — invalidates the affected entries
  before a stale byte can ever be served;
* invalidating a **pinned** page raises :class:`StorageError` loudly: it
  means some reader is holding a page whose block was just erased under it,
  which is a layering bug, not a condition to paper over;
* a cache of ``capacity_pages == 0`` is a pure pass-through, reproducing
  the uncached :class:`~repro.hardware.flash.FlashStats` counts exactly
  (the escape hatch benchmarks use as their baseline).

Hot pages are also **decoded once**: :meth:`PageCache.read_records`
memoizes :func:`repro.storage.pager.unpack_records` alongside the cached
bytes, so repeated scans of the same page (the double-pass TF-IDF query,
repeated Tselect probes) skip both the flash IO and the unpacking.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.hardware.flash import NandFlash
from repro.hardware.ram import RamArena
from repro.storage import pager

#: RAM charged per cache slot beyond the page itself: the directory entry
#: (physical page number + LRU links), matching what token firmware would
#: keep for a slot descriptor.
SLOT_OVERHEAD_BYTES = 8


@dataclass
class CacheStats:
    """Mutable counters of one page cache (mirrors :class:`FlashStats`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    pinned_high_water: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from RAM (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> "CacheStats":
        """Return an independent copy (for before/after deltas in benches)."""
        return CacheStats(
            self.hits,
            self.misses,
            self.evictions,
            self.invalidations,
            self.pinned_high_water,
        )

    def delta(self, before: "CacheStats") -> "CacheStats":
        """Operations performed since ``before`` was snapshotted.

        ``pinned_high_water`` is a level, not a counter, so the delta keeps
        the current value rather than subtracting.
        """
        return CacheStats(
            self.hits - before.hits,
            self.misses - before.misses,
            self.evictions - before.evictions,
            self.invalidations - before.invalidations,
            self.pinned_high_water,
        )


class _Entry:
    """One cached page: raw bytes plus the lazily memoized decode."""

    __slots__ = ("data", "decoded", "pins")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.decoded = None
        self.pins = 0


class PageCache:
    """LRU cache of flash pages, charged against a :class:`RamArena`.

    Sits between the :class:`NandFlash` chip and every log reader (wired in
    via :attr:`BlockAllocator.page_cache`). Reads of cached pages cost no
    flash IO — :class:`~repro.hardware.flash.FlashStats` only counts real
    chip operations — and the cache's own :class:`CacheStats` reports the
    hit/miss/eviction picture benchmarks plot.
    """

    def __init__(
        self,
        flash: NandFlash,
        capacity_pages: int,
        ram: RamArena | None = None,
        tag: str = "pagecache",
    ) -> None:
        if capacity_pages < 0:
            raise StorageError("cache capacity must be >= 0 pages")
        self.flash = flash
        self.capacity_pages = capacity_pages
        self.stats = CacheStats()
        self._entries: OrderedDict[int, _Entry] = OrderedDict()
        self._pinned_pages = 0
        self._ram = ram
        self._ram_handle: int | None = None
        self._closed = False
        if ram is not None and capacity_pages > 0:
            self._ram_handle = ram.allocate(self.ram_bytes, tag=tag)
        flash.subscribe(
            on_program=self._on_program,
            on_erase=self._on_erase,
            on_power_cycle=self._on_power_cycle,
        )

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.capacity_pages > 0 and not self._closed

    @property
    def ram_bytes(self) -> int:
        """RAM this cache charges: page frames plus slot descriptors."""
        page_size = self.flash.geometry.page_size
        return self.capacity_pages * (page_size + SLOT_OVERHEAD_BYTES)

    @property
    def cached_pages(self) -> int:
        return len(self._entries)

    @property
    def pinned_pages(self) -> int:
        return self._pinned_pages

    def __contains__(self, page_no: int) -> bool:
        return page_no in self._entries

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def read_page(self, page_no: int) -> bytes:
        """Read one physical page, from RAM when cached."""
        entry = self._lookup(page_no)
        if entry is None:
            entry = self._fill(page_no)
        return entry.data

    def read_records(self, page_no: int) -> list[bytes]:
        """Read + unpack one page, decoding at most once per residency.

        Callers must treat the returned list as immutable — it is shared by
        every reader of the page until the entry is evicted or invalidated.
        """
        return self.read_decoded(page_no, pager.unpack_records)

    def read_decoded(self, page_no: int, decode):
        """Read one page through ``decode``, memoizing the result.

        ``decode(data)`` runs at most once per cached residency; each page
        must always be read with the same decoder (every page belongs to
        exactly one log, so this holds by construction). The decoded object
        is shared between readers and must be treated as immutable.
        """
        entry = self._lookup(page_no)
        if entry is None:
            entry = self._fill(page_no)
        if entry.decoded is None:
            entry.decoded = decode(entry.data)
        return entry.decoded

    def _lookup(self, page_no: int) -> _Entry | None:
        entry = self._entries.get(page_no)
        if entry is None:
            return None
        self.stats.hits += 1
        self._entries.move_to_end(page_no)
        return entry

    def _fill(self, page_no: int) -> _Entry:
        self.stats.misses += 1
        entry = _Entry(self.flash.read_page(page_no))
        if self.enabled and self._make_room():
            self._entries[page_no] = entry
        return entry

    def _make_room(self) -> bool:
        """Evict LRU unpinned entries until a slot is free.

        Returns False when every resident page is pinned — the new page is
        then served read-through without being cached, never by evicting a
        pinned frame.
        """
        while len(self._entries) >= self.capacity_pages:
            victim = next(
                (
                    page_no
                    for page_no, entry in self._entries.items()
                    if entry.pins == 0
                ),
                None,
            )
            if victim is None:
                return False
            del self._entries[victim]
            self.stats.evictions += 1
        return True

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self, page_no: int) -> bytes:
        """Read a page and pin its frame against eviction.

        Pins nest; every :meth:`pin` needs a matching :meth:`unpin`. On a
        disabled (capacity-0) cache this degrades to a plain read.
        """
        entry = self._lookup(page_no)
        if entry is None:
            entry = self._fill(page_no)
        if page_no in self._entries:
            if entry.pins == 0:
                self._pinned_pages += 1
                self.stats.pinned_high_water = max(
                    self.stats.pinned_high_water, self._pinned_pages
                )
            entry.pins += 1
        return entry.data

    def unpin(self, page_no: int) -> None:
        entry = self._entries.get(page_no)
        if entry is None or entry.pins == 0:
            raise StorageError(f"page {page_no} is not pinned")
        entry.pins -= 1
        if entry.pins == 0:
            self._pinned_pages -= 1

    # ------------------------------------------------------------------
    # Invalidation (wired to the flash chip's mutation notifications)
    # ------------------------------------------------------------------
    def invalidate_page(self, page_no: int) -> None:
        """Drop one page from the cache; pinned pages refuse loudly."""
        entry = self._entries.get(page_no)
        if entry is None:
            return
        if entry.pins:
            raise StorageError(
                f"page {page_no} changed on flash while pinned "
                f"({entry.pins} pins): reader would observe stale data"
            )
        del self._entries[page_no]
        self.stats.invalidations += 1

    def invalidate_block(self, block_no: int) -> None:
        """Drop every cached page of ``block_no`` (erase granularity)."""
        geometry = self.flash.geometry
        start = geometry.first_page_of(block_no)
        for page_no in range(start, start + geometry.pages_per_block):
            self.invalidate_page(page_no)

    def clear(self) -> None:
        """Drop every unpinned entry (e.g. before a RAM-hungry phase)."""
        for page_no in [
            page_no
            for page_no, entry in self._entries.items()
            if entry.pins == 0
        ]:
            del self._entries[page_no]
            self.stats.invalidations += 1

    def _on_program(self, page_no: int) -> None:
        # A cached read of the page's *erased* state (b"") would now be
        # stale; recycled reorg blocks hit this path constantly.
        self.invalidate_page(page_no)

    def _on_erase(self, block_no: int) -> None:
        self.invalidate_block(block_no)

    def _on_power_cycle(self) -> None:
        """Power loss: the RAM this cache lives in is gone, contents and all.

        Pins evaporate with their readers. The cache also *disables*
        itself: the chip just dropped every subscription, so continuing to
        cache would mean serving pages with no invalidation feed — the one
        way this layer could ever return stale bytes.
        """
        self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self._pinned_pages = 0
        self._closed = True
        if self._ram is not None and self._ram_handle is not None:
            self._ram.free(self._ram_handle)
            self._ram_handle = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the RAM reservation and stop caching (idempotent)."""
        if self._closed:
            return
        if self._pinned_pages:
            raise StorageError(
                f"cannot close cache with {self._pinned_pages} pinned pages"
            )
        self._entries.clear()
        self._closed = True
        self.flash.unsubscribe(
            on_program=self._on_program,
            on_erase=self._on_erase,
            on_power_cycle=self._on_power_cycle,
        )
        if self._ram is not None and self._ram_handle is not None:
            self._ram.free(self._ram_handle)
            self._ram_handle = None
