"""Log-structured storage primitives for NAND flash.

Implements the tutorial's general framework: every structure is a
sequentially-written log (:class:`PageLog`/:class:`RecordLog`), probabilistic
page summaries are Bloom filters (:class:`BloomFilter`), and the inverted
index of the embedded search engine is a backward-chained bucket log
(:class:`ChainedBucketLog`).
"""

from repro.storage.bloom import BloomFilter, optimal_hash_count
from repro.storage.cache import CacheStats, PageCache
from repro.storage.hashbucket import ChainedBucketLog, bucket_of
from repro.storage.log import PageLog, RecordAddress, RecordLog
from repro.storage.recovery import (
    Manifest,
    MountReport,
    MountSession,
    RecoveredLog,
    RecoveredPage,
    mount,
)

__all__ = [
    "BloomFilter",
    "CacheStats",
    "ChainedBucketLog",
    "Manifest",
    "MountReport",
    "MountSession",
    "PageCache",
    "PageLog",
    "RecoveredLog",
    "RecoveredPage",
    "RecordAddress",
    "RecordLog",
    "bucket_of",
    "mount",
    "optimal_hash_count",
]
