"""Log-structured storage primitives for NAND flash.

Implements the tutorial's general framework: every structure is a
sequentially-written log (:class:`PageLog`/:class:`RecordLog`), probabilistic
page summaries are Bloom filters (:class:`BloomFilter`), and the inverted
index of the embedded search engine is a backward-chained bucket log
(:class:`ChainedBucketLog`).
"""

from repro.storage.bloom import BloomFilter, optimal_hash_count
from repro.storage.cache import CacheStats, PageCache
from repro.storage.hashbucket import ChainedBucketLog, bucket_of
from repro.storage.log import PageLog, RecordAddress, RecordLog

__all__ = [
    "BloomFilter",
    "CacheStats",
    "ChainedBucketLog",
    "PageCache",
    "PageLog",
    "RecordAddress",
    "RecordLog",
    "bucket_of",
    "optimal_hash_count",
]
