"""Sequentially Written Logs (SWL): the only write pattern the token uses.

The tutorial's "general (implicit) framework" states the rule every Part II
structure obeys:

    *Organize all index structures into sequential logs. Pages are written
    sequentially (and never updated nor moved); allocation and de-allocation
    are made on a Flash-block basis.*

:class:`PageLog` is that primitive — an append-only sequence of flash pages
spanning dynamically allocated blocks. :class:`RecordLog` layers a
record-per-append interface on top with a single-page RAM write buffer,
which is the entire RAM cost of maintaining a log.

Every page a :class:`PageLog` programs carries a
:class:`~repro.storage.pager.PageHeader` in the flash spare area naming
its log, epoch and in-log sequence number. That makes logs *remountable*:
after power loss, :mod:`repro.storage.recovery` rebuilds them from a
sequential flash scan via :meth:`PageLog.remount` /
:meth:`RecordLog.remount`, with torn or corrupt tail pages truncated away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LogSealedError, StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.storage import pager


@dataclass(frozen=True, order=True)
class RecordAddress:
    """Stable address of a record inside a :class:`RecordLog`.

    ``position`` is the log-order index of the page (not the physical page
    number, which depends on block allocation) and ``slot`` the record's
    index within that page. Addresses order exactly like append order.
    """

    position: int
    slot: int


class PageLog:
    """Append-only sequence of pages over block-granular flash allocation.

    ``epoch`` identifies the log's incarnation: reorganizations build the
    successor structure under a fresh epoch so crash recovery can tell the
    old and new instances of a log name apart and keep exactly one.
    """

    def __init__(
        self,
        allocator: BlockAllocator,
        name: str = "log",
        epoch: int = 0,
    ) -> None:
        self.allocator = allocator
        self.flash = allocator.flash
        self.name = name
        self.epoch = epoch
        self.log_id = pager.log_id_of(name)
        self._blocks: list[int] = []
        self._page_numbers: list[int] = []  # physical page of each log position
        self._page_metas: list[int] = []  # per-page u16 from the page header
        self._next_seq = 0
        self._sealed = False
        self._dropped = False

    @classmethod
    def remount(
        cls,
        allocator: BlockAllocator,
        name: str,
        recovered,
    ) -> "PageLog":
        """Rebuild a log from a :class:`~repro.storage.recovery.RecoveredLog`.

        The recovered pages are already CRC-checked and ordered by sequence
        number, so position ``i`` here is exactly position ``i`` of the
        pre-crash log (truncation only ever drops a suffix). ``next_seq``
        resumes above every sequence number seen on flash — including
        truncated ones — so re-appended pages can never collide with
        leftovers from before the crash.
        """
        log = cls(allocator, name, epoch=recovered.epoch)
        if recovered.log_id != log.log_id:
            raise StorageError(
                f"recovered pages belong to log id {recovered.log_id:#x}, "
                f"not to {name!r} ({log.log_id:#x})"
            )
        for page in recovered.pages:
            block = log.flash.geometry.block_of(page.page_no)
            if not log._blocks or log._blocks[-1] != block:
                log._blocks.append(block)
            log._page_numbers.append(page.page_no)
            log._page_metas.append(page.header.meta)
        log._next_seq = recovered.next_seq
        return log

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of pages appended so far."""
        return len(self._page_numbers)

    @property
    def page_size(self) -> int:
        return self.flash.geometry.page_size

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def sealed(self) -> bool:
        return self._sealed

    def append_page(self, data: bytes, meta: int = 0) -> int:
        """Program ``data`` as the next page; returns its log position.

        ``meta`` is stored in the page's header for the owning structure
        (tree level, bucket id, ...) and recovered verbatim on remount.

        The next free slot is asked of the chip's write cursor rather than
        derived from ``len(log) % pages_per_block``: after a crash the tail
        block may contain a torn page that occupies a slot but belongs to
        no log, and appends must continue *past* it.
        """
        self._check_writable()
        if (
            not self._blocks
            or self.flash.next_free_page(self._blocks[-1]) is None
        ):
            self._blocks.append(self.allocator.allocate())
        block = self._blocks[-1]
        in_block = self.flash.next_free_page(block)
        page_no = self.flash.geometry.first_page_of(block) + in_block
        header = pager.PageHeader.for_payload(
            self.log_id, self.epoch, self._next_seq, data, meta=meta
        )
        self.flash.program_page(page_no, data, spare=header.pack())
        self._next_seq += 1
        self._page_numbers.append(page_no)
        self._page_metas.append(meta)
        return len(self._page_numbers) - 1

    def page_meta(self, position: int) -> int:
        """The header ``meta`` value the page at ``position`` was written with."""
        self._physical_page(position)  # bounds + liveness check
        return self._page_metas[position]

    def read_page(self, position: int) -> bytes:
        """Read the page at log ``position`` (0-based append order).

        Served from the allocator's :class:`~repro.storage.cache.PageCache`
        when one is attached; only cache misses cost flash IO.
        """
        page_no = self._physical_page(position)
        cache = self.allocator.page_cache
        if cache is not None:
            return cache.read_page(page_no)
        return self.flash.read_page(page_no)

    def read_records(self, position: int) -> list[bytes]:
        """Read + unpack the page at ``position`` as a record list.

        With a cache attached the decode is memoized per cached residency,
        so hot pages are unpacked once instead of once per read. Callers
        must not mutate the returned list.
        """
        cache = self.allocator.page_cache
        if cache is not None:
            return cache.read_records(self._physical_page(position))
        return pager.unpack_records(self.read_page(position))

    def read_decoded(self, position: int, decode, memo: dict | None = None):
        """Read the page at ``position`` through ``decode``, memoized.

        Like :meth:`read_records` but for logs with their own page layout
        (e.g. chained bucket pages); ``decode(data)`` runs once per cached
        residency when a cache is attached, every read otherwise.

        With a caller-owned ``memo`` dict (the batch executor's per-query
        decode memo), the page access is **always** paid first — a cache
        lookup or a real flash read, exactly like the record-at-a-time
        path — and only the *decode* is memoized, keyed by log position.
        This keeps simulated IO counts byte-identical while letting one
        query decode each touched page a single time, and it never touches
        the cache's own single decode slot (which may belong to a
        different decoder for the same page).
        """
        if memo is not None:
            data = self.read_page(position)  # IO accounting, cache or flash
            try:
                return memo[position]
            except KeyError:
                decoded = memo[position] = decode(data)
                return decoded
        cache = self.allocator.page_cache
        if cache is not None:
            return cache.read_decoded(self._physical_page(position), decode)
        return decode(self.read_page(position))

    def _physical_page(self, position: int) -> int:
        self._check_alive()
        if not 0 <= position < len(self._page_numbers):
            raise StorageError(
                f"log {self.name!r}: position {position} out of range "
                f"[0, {len(self._page_numbers)})"
            )
        return self._page_numbers[position]

    def iter_pages(self) -> Iterator[bytes]:
        """Yield pages in append order."""
        for position in range(len(self._page_numbers)):
            yield self.read_page(position)

    def seal(self) -> None:
        """Make the log immutable (reorganized structures are sealed)."""
        self._sealed = True

    def drop(self) -> None:
        """Erase and free every block of the log (whole-log reclamation).

        This is the framework's answer to garbage collection: logs are
        reclaimed in bulk after a reorganization swap, never page by page.
        """
        self._check_alive()
        for block in self._blocks:
            self.allocator.free(block)
        self._blocks.clear()
        self._page_numbers.clear()
        self._page_metas.clear()
        self._dropped = True

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._dropped:
            raise StorageError(f"log {self.name!r} has been dropped")

    def _check_writable(self) -> None:
        self._check_alive()
        if self._sealed:
            raise LogSealedError(f"log {self.name!r} is sealed")


class RecordLog:
    """Record-oriented append-only log with a one-page RAM write buffer.

    Records are packed into pages with :mod:`repro.storage.pager`; a record
    must fit in one page. While the log is open for writing it holds exactly
    one page buffer in the (optional) :class:`RamArena` — the "pipeline
    friendly" RAM footprint the tutorial's framework promises.
    """

    def __init__(
        self,
        allocator: BlockAllocator,
        name: str = "records",
        ram: RamArena | None = None,
        epoch: int = 0,
    ) -> None:
        self.pages = PageLog(allocator, name, epoch=epoch)
        self.name = name
        #: Optional hook called as ``on_page_flush(position, records)`` right
        #: after a page hits flash — used by indexes that summarize pages
        #: (e.g. one Bloom filter per Keys page).
        self.on_page_flush = None
        self._ram = ram
        self._buffer: list[bytes] = []
        self._buffer_size = 2  # packed size of an empty page (count field)
        self._record_count = 0
        self._records_per_page: list[int] = []
        self._ram_handle = (
            ram.allocate(self.pages.page_size, tag=f"log:{name}:writebuf")
            if ram is not None
            else None
        )

    @classmethod
    def remount(
        cls,
        allocator: BlockAllocator,
        name: str,
        recovered,
        ram: RamArena | None = None,
    ) -> "RecordLog":
        """Rebuild a record log from a crash-recovery scan.

        Record counts per page come from the recovered payloads already in
        RAM — re-deriving ``_records_per_page`` costs zero flash reads.
        Anything that was only in the write buffer at the crash is gone,
        which is the contract: a record is durable once its page flushed.
        """
        log = cls(allocator, name, ram, epoch=recovered.epoch)
        log.pages = PageLog.remount(allocator, name, recovered)
        log._records_per_page = [
            len(pager.unpack_records(page.payload)) for page in recovered.pages
        ]
        log._record_count = sum(log._records_per_page)
        return log

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total records appended (buffered ones included)."""
        return self._record_count

    @property
    def page_count(self) -> int:
        """Pages already on flash (the write buffer is not counted)."""
        return len(self.pages)

    def append(self, record: bytes) -> RecordAddress:
        """Append one record, flushing the page buffer when it fills up."""
        max_payload = self.pages.page_size
        if pager.records_size([record]) > max_payload:
            raise StorageError(
                f"record of {len(record)} B cannot fit in a "
                f"{self.pages.page_size} B page"
            )
        if not pager.record_fits(self._buffer_size, record, max_payload):
            self.flush()
        slot = len(self._buffer)
        self._buffer.append(record)
        self._buffer_size += 2 + len(record)
        self._record_count += 1
        return RecordAddress(position=len(self.pages), slot=slot)

    def flush(self) -> None:
        """Write the buffered records to flash as one page."""
        if not self._buffer:
            return
        position = self.pages.append_page(pager.pack_records(self._buffer))
        self._records_per_page.append(len(self._buffer))
        flushed, self._buffer = self._buffer, []
        self._buffer_size = 2
        if self.on_page_flush is not None:
            self.on_page_flush(position, flushed)

    def read(self, address: RecordAddress) -> bytes:
        """Fetch one record by address (reads its page, or the RAM buffer)."""
        if address.position < 0 or address.slot < 0:
            # A negative index would silently address from the end of the
            # page — never a valid record address, so reject it outright.
            raise StorageError(
                f"log {self.name!r}: negative record address {address}"
            )
        if address.position == len(self.pages):
            if address.slot >= len(self._buffer):
                raise StorageError(f"no record at {address}")
            return self._buffer[address.slot]
        if address.slot >= self._records_per_page[address.position]:
            # The per-page record tally rejects a dangling slot before any
            # flash read is spent fetching the page it cannot be on.
            raise StorageError(f"no record at {address}")
        records = self.pages.read_records(address.position)
        if address.slot >= len(records):
            raise StorageError(f"no record at {address}")
        return records[address.slot]

    def records_on_page(self, position: int) -> int:
        """Records packed into the flushed page at ``position`` (no IO)."""
        if not 0 <= position < len(self._records_per_page):
            raise StorageError(
                f"log {self.name!r}: no flushed page at position {position}"
            )
        return self._records_per_page[position]

    def scan(self) -> Iterator[tuple[RecordAddress, bytes]]:
        """Yield ``(address, record)`` in append order, buffer included."""
        for position in range(len(self.pages)):
            records = self.pages.read_records(position)
            for slot, record in enumerate(records):
                yield RecordAddress(position, slot), record
        for slot, record in enumerate(self._buffer):
            yield RecordAddress(len(self.pages), slot), record

    def buffered_records(self) -> list[bytes]:
        """Records staged in the RAM write buffer (not yet on flash)."""
        return list(self._buffer)

    def scan_pages(self) -> Iterator[list[bytes]]:
        """Yield flushed pages as record lists (no buffer), in append order."""
        for position in range(len(self.pages)):
            yield self.pages.read_records(position)

    def seal(self) -> None:
        """Flush, release the write buffer's RAM and make the log immutable."""
        self.flush()
        self.pages.seal()
        self._release_ram()

    def drop(self) -> None:
        """Discard the log and reclaim its flash blocks."""
        self._buffer = []
        self._buffer_size = 2
        self._record_count = 0
        # Without this reset a dropped log still reports per-page record
        # tallies for pages whose blocks were just erased, and anything
        # consulting them (the read-path bounds check above) would trust
        # counts for data that no longer exists.
        self._records_per_page.clear()
        self.pages.drop()
        self._release_ram()

    # ------------------------------------------------------------------
    def _release_ram(self) -> None:
        if self._ram is not None and self._ram_handle is not None:
            self._ram.free(self._ram_handle)
            self._ram_handle = None
