"""Sequentially Written Logs (SWL): the only write pattern the token uses.

The tutorial's "general (implicit) framework" states the rule every Part II
structure obeys:

    *Organize all index structures into sequential logs. Pages are written
    sequentially (and never updated nor moved); allocation and de-allocation
    are made on a Flash-block basis.*

:class:`PageLog` is that primitive — an append-only sequence of flash pages
spanning dynamically allocated blocks. :class:`RecordLog` layers a
record-per-append interface on top with a single-page RAM write buffer,
which is the entire RAM cost of maintaining a log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LogSealedError, StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.storage import pager


@dataclass(frozen=True, order=True)
class RecordAddress:
    """Stable address of a record inside a :class:`RecordLog`.

    ``position`` is the log-order index of the page (not the physical page
    number, which depends on block allocation) and ``slot`` the record's
    index within that page. Addresses order exactly like append order.
    """

    position: int
    slot: int


class PageLog:
    """Append-only sequence of pages over block-granular flash allocation."""

    def __init__(self, allocator: BlockAllocator, name: str = "log") -> None:
        self.allocator = allocator
        self.flash = allocator.flash
        self.name = name
        self._blocks: list[int] = []
        self._page_numbers: list[int] = []  # physical page of each log position
        self._sealed = False
        self._dropped = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of pages appended so far."""
        return len(self._page_numbers)

    @property
    def page_size(self) -> int:
        return self.flash.geometry.page_size

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def sealed(self) -> bool:
        return self._sealed

    def append_page(self, data: bytes) -> int:
        """Program ``data`` as the next page; returns its log position."""
        self._check_writable()
        pages_per_block = self.flash.geometry.pages_per_block
        if not self._blocks or len(self._page_numbers) % pages_per_block == 0:
            self._blocks.append(self.allocator.allocate())
        block = self._blocks[-1]
        in_block = len(self._page_numbers) % pages_per_block
        page_no = self.flash.geometry.first_page_of(block) + in_block
        self.flash.program_page(page_no, data)
        self._page_numbers.append(page_no)
        return len(self._page_numbers) - 1

    def read_page(self, position: int) -> bytes:
        """Read the page at log ``position`` (0-based append order).

        Served from the allocator's :class:`~repro.storage.cache.PageCache`
        when one is attached; only cache misses cost flash IO.
        """
        page_no = self._physical_page(position)
        cache = self.allocator.page_cache
        if cache is not None:
            return cache.read_page(page_no)
        return self.flash.read_page(page_no)

    def read_records(self, position: int) -> list[bytes]:
        """Read + unpack the page at ``position`` as a record list.

        With a cache attached the decode is memoized per cached residency,
        so hot pages are unpacked once instead of once per read. Callers
        must not mutate the returned list.
        """
        cache = self.allocator.page_cache
        if cache is not None:
            return cache.read_records(self._physical_page(position))
        return pager.unpack_records(self.read_page(position))

    def read_decoded(self, position: int, decode):
        """Read the page at ``position`` through ``decode``, memoized.

        Like :meth:`read_records` but for logs with their own page layout
        (e.g. chained bucket pages); ``decode(data)`` runs once per cached
        residency when a cache is attached, every read otherwise.
        """
        cache = self.allocator.page_cache
        if cache is not None:
            return cache.read_decoded(self._physical_page(position), decode)
        return decode(self.read_page(position))

    def _physical_page(self, position: int) -> int:
        self._check_alive()
        if not 0 <= position < len(self._page_numbers):
            raise StorageError(
                f"log {self.name!r}: position {position} out of range "
                f"[0, {len(self._page_numbers)})"
            )
        return self._page_numbers[position]

    def iter_pages(self) -> Iterator[bytes]:
        """Yield pages in append order."""
        for position in range(len(self._page_numbers)):
            yield self.read_page(position)

    def seal(self) -> None:
        """Make the log immutable (reorganized structures are sealed)."""
        self._sealed = True

    def drop(self) -> None:
        """Erase and free every block of the log (whole-log reclamation).

        This is the framework's answer to garbage collection: logs are
        reclaimed in bulk after a reorganization swap, never page by page.
        """
        self._check_alive()
        for block in self._blocks:
            self.allocator.free(block)
        self._blocks.clear()
        self._page_numbers.clear()
        self._dropped = True

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._dropped:
            raise StorageError(f"log {self.name!r} has been dropped")

    def _check_writable(self) -> None:
        self._check_alive()
        if self._sealed:
            raise LogSealedError(f"log {self.name!r} is sealed")


class RecordLog:
    """Record-oriented append-only log with a one-page RAM write buffer.

    Records are packed into pages with :mod:`repro.storage.pager`; a record
    must fit in one page. While the log is open for writing it holds exactly
    one page buffer in the (optional) :class:`RamArena` — the "pipeline
    friendly" RAM footprint the tutorial's framework promises.
    """

    def __init__(
        self,
        allocator: BlockAllocator,
        name: str = "records",
        ram: RamArena | None = None,
    ) -> None:
        self.pages = PageLog(allocator, name)
        self.name = name
        #: Optional hook called as ``on_page_flush(position, records)`` right
        #: after a page hits flash — used by indexes that summarize pages
        #: (e.g. one Bloom filter per Keys page).
        self.on_page_flush = None
        self._ram = ram
        self._buffer: list[bytes] = []
        self._buffer_size = 2  # packed size of an empty page (count field)
        self._record_count = 0
        self._records_per_page: list[int] = []
        self._ram_handle = (
            ram.allocate(self.pages.page_size, tag=f"log:{name}:writebuf")
            if ram is not None
            else None
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total records appended (buffered ones included)."""
        return self._record_count

    @property
    def page_count(self) -> int:
        """Pages already on flash (the write buffer is not counted)."""
        return len(self.pages)

    def append(self, record: bytes) -> RecordAddress:
        """Append one record, flushing the page buffer when it fills up."""
        max_payload = self.pages.page_size
        if pager.records_size([record]) > max_payload:
            raise StorageError(
                f"record of {len(record)} B cannot fit in a "
                f"{self.pages.page_size} B page"
            )
        if not pager.record_fits(self._buffer_size, record, max_payload):
            self.flush()
        slot = len(self._buffer)
        self._buffer.append(record)
        self._buffer_size += 2 + len(record)
        self._record_count += 1
        return RecordAddress(position=len(self.pages), slot=slot)

    def flush(self) -> None:
        """Write the buffered records to flash as one page."""
        if not self._buffer:
            return
        position = self.pages.append_page(pager.pack_records(self._buffer))
        self._records_per_page.append(len(self._buffer))
        flushed, self._buffer = self._buffer, []
        self._buffer_size = 2
        if self.on_page_flush is not None:
            self.on_page_flush(position, flushed)

    def read(self, address: RecordAddress) -> bytes:
        """Fetch one record by address (reads its page, or the RAM buffer)."""
        if address.position < 0 or address.slot < 0:
            # A negative index would silently address from the end of the
            # page — never a valid record address, so reject it outright.
            raise StorageError(
                f"log {self.name!r}: negative record address {address}"
            )
        if address.position == len(self.pages):
            if address.slot >= len(self._buffer):
                raise StorageError(f"no record at {address}")
            return self._buffer[address.slot]
        records = self.pages.read_records(address.position)
        if address.slot >= len(records):
            raise StorageError(f"no record at {address}")
        return records[address.slot]

    def scan(self) -> Iterator[tuple[RecordAddress, bytes]]:
        """Yield ``(address, record)`` in append order, buffer included."""
        for position in range(len(self.pages)):
            records = self.pages.read_records(position)
            for slot, record in enumerate(records):
                yield RecordAddress(position, slot), record
        for slot, record in enumerate(self._buffer):
            yield RecordAddress(len(self.pages), slot), record

    def buffered_records(self) -> list[bytes]:
        """Records staged in the RAM write buffer (not yet on flash)."""
        return list(self._buffer)

    def scan_pages(self) -> Iterator[list[bytes]]:
        """Yield flushed pages as record lists (no buffer), in append order."""
        for position in range(len(self.pages)):
            yield self.pages.read_records(position)

    def seal(self) -> None:
        """Flush, release the write buffer's RAM and make the log immutable."""
        self.flush()
        self.pages.seal()
        self._release_ram()

    def drop(self) -> None:
        """Discard the log and reclaim its flash blocks."""
        self._buffer = []
        self._buffer_size = 2
        self._record_count = 0
        self.pages.drop()
        self._release_ram()

    # ------------------------------------------------------------------
    def _release_ram(self) -> None:
        if self._ram is not None and self._ram_handle is not None:
            self._ram.free(self._ram_handle)
            self._ram_handle = None
