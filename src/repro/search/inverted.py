"""Sequential inverted index over chained hash buckets.

This is the flash layout of the tutorial's embedded search engine: triples
``(term, docid, weight)`` are appended, in increasing docid order, to the
hash bucket of their term. Bucket chains therefore replay triples in
*descending* docid order, which is what the pipelined merge consumes.

The only RAM the index itself needs is the bucket directory plus staging
(owned by :class:`~repro.storage.hashbucket.ChainedBucketLog`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.storage import pager
from repro.storage.hashbucket import ChainedBucketLog, bucket_of

_POSTING_TAIL = struct.Struct("<If")  # docid, weight


def _decode_posting_page(page: bytes):
    """Columnar chain-page decode: ``(prev, entries, terms, docids, weights)``.

    Richer than the bucket log's default decoder (same ``[0]``/``[1]``
    layout, so generic chain readers keep working) — each posting is split
    once per page residency into parallel term-bytes/docid/weight vectors,
    which is what lets the scoring loop compare raw UTF-8 term bytes and
    skip per-posting ``unpack_posting`` calls. Installed as the inverted
    bucket log's ``page_decoder``.
    """
    prev = pager.unpack_u32(page, 0)
    entries = pager.unpack_records(page[ChainedBucketLog._HEADER :])
    terms: list[bytes] = []
    docids: list[int] = []
    weights: list[float] = []
    unpack_tail = _POSTING_TAIL.unpack_from
    for entry in entries:
        term_len = entry[0]
        terms.append(entry[1 : 1 + term_len])
        docid, weight = unpack_tail(entry, 1 + term_len)
        docids.append(docid)
        weights.append(weight)
    return prev, entries, terms, docids, weights


@dataclass(frozen=True)
class Posting:
    """One inverted-index triple."""

    term: str
    docid: int
    weight: float


def pack_posting(posting: Posting) -> bytes:
    term_bytes = posting.term.encode("utf-8")
    if len(term_bytes) > 0xFF:
        raise StorageError(f"term too long: {posting.term[:32]!r}...")
    return (
        bytes([len(term_bytes)])
        + term_bytes
        + _POSTING_TAIL.pack(posting.docid, posting.weight)
    )


def unpack_posting(data: bytes) -> Posting:
    term_len = data[0]
    term = data[1 : 1 + term_len].decode("utf-8")
    docid, weight = _POSTING_TAIL.unpack_from(data, 1 + term_len)
    return Posting(term, docid, weight)


class SequentialInvertedIndex:
    """Append-only inverted index; docids must arrive in increasing order."""

    def __init__(
        self,
        allocator: BlockAllocator,
        num_buckets: int = 64,
        ram: RamArena | None = None,
    ) -> None:
        self.buckets = ChainedBucketLog(
            allocator,
            num_buckets,
            name="inverted",
            ram=ram,
            page_decoder=_decode_posting_page,
        )
        self.num_buckets = num_buckets
        self._last_docid = -1
        self._doc_count = 0
        #: Recovery ghost fences: ``(pages, max_docid)`` — postings living
        #: in pages below ``pages`` are trusted only up to ``max_docid``.
        self._fences: list[tuple[int, int]] = []

    @classmethod
    def remount(
        cls,
        session,
        manifest,
        num_buckets: int = 64,
        ram: RamArena | None = None,
    ) -> "SequentialInvertedIndex":
        """Rebuild the inverted index after power loss, fencing out ghosts.

        A crash mid-indexing can leave *partial* documents on flash: some
        of a document's postings flushed, others still staged. Pages are
        immutable, so instead of rewriting anything the index drops a
        durable **fence** into the manifest: postings in the pages that
        existed at recovery time are only trusted up to the last
        checkpointed docid. Documents beyond the checkpoint are re-indexed
        by the owner (their replayed postings land in *new* pages, above
        the fence, hence visible), so every surviving document is searchable
        exactly once and no half-indexed ghost ever surfaces.
        """
        index = cls.__new__(cls)
        index.buckets = ChainedBucketLog.remount(
            session,
            num_buckets,
            name="inverted",
            ram=ram,
            page_decoder=_decode_posting_page,
        )
        index.num_buckets = num_buckets
        checkpoint = manifest.last("search-checkpoint")
        docs = checkpoint["docs"] if checkpoint is not None else 0
        index._doc_count = docs
        index._last_docid = docs - 1
        index._fences = [
            (record["pages"], record["max_docid"])
            for record in manifest.records()
            if record["kind"] == "search-fence"
        ]
        if index.buckets.flushed_pages:
            fence = (index.buckets.flushed_pages, docs - 1)
            manifest.append(
                "search-fence", pages=fence[0], max_docid=fence[1]
            )
            index._fences.append(fence)
        return index

    def _is_ghost(self, position: int | None, docid: int) -> bool:
        """Whether a posting at page ``position`` is pre-crash debris."""
        if position is None:  # staged in RAM: written after any crash
            return False
        for pages, max_docid in self._fences:
            if position < pages and docid > max_docid:
                return True
        return False

    # ------------------------------------------------------------------
    @property
    def doc_count(self) -> int:
        """Number of indexed documents (the N of the IDF formula)."""
        return self._doc_count

    @property
    def posting_count(self) -> int:
        return self.buckets.entry_count

    def add_document(self, docid: int, term_weights: dict[str, float]) -> None:
        """Index one document's ``term -> weight`` map.

        Docids are generated in increasing order in the tutorial's design
        (documents are timestamped on arrival); violating that would break
        the descending-scan merge, so it is rejected here.
        """
        if docid <= self._last_docid:
            raise StorageError(
                f"docid {docid} not increasing (last was {self._last_docid})"
            )
        for term in sorted(term_weights):
            posting = Posting(term, docid, float(term_weights[term]))
            self.buckets.append(
                bucket_of(term, self.num_buckets), pack_posting(posting)
            )
        self._last_docid = docid
        self._doc_count += 1

    def flush(self) -> None:
        """Flush staged postings to flash."""
        self.buckets.flush_all()

    # ------------------------------------------------------------------
    def iter_term(self, term: str) -> Iterator[Posting]:
        """Postings of ``term`` in descending docid order.

        Scans the term's bucket chain and filters out hash-collision
        postings of other terms (they share the chain by construction).
        """
        bucket = bucket_of(term, self.num_buckets)
        for position, entry in self.buckets.iter_bucket_with_positions(bucket):
            posting = unpack_posting(entry)
            if posting.term == term and not self._is_ghost(
                position, posting.docid
            ):
                yield posting

    def iter_term_tuples(self, term: str) -> Iterator[tuple[int, float]]:
        """``(docid, weight)`` pairs of ``term`` in descending docid order.

        The batch counterpart of :meth:`iter_term`: same chain pages in the
        same order, but term matching compares raw UTF-8 bytes against the
        page's decoded term vector (bytes equality ⇔ string equality) and
        never builds a :class:`Posting`. This is the scoring loop's stream.
        """
        term_bytes = term.encode("utf-8")
        bucket = bucket_of(term, self.num_buckets)
        fences = self._fences
        for position, decoded in self.buckets.iter_decoded(bucket):
            if position is None:
                # Staged entries (RAM): newest-first, decoded on the fly.
                for entry in reversed(decoded):
                    term_len = entry[0]
                    if entry[1 : 1 + term_len] == term_bytes:
                        yield _POSTING_TAIL.unpack_from(entry, 1 + term_len)
                continue
            terms, docids, weights = decoded[2], decoded[3], decoded[4]
            for i in range(len(terms) - 1, -1, -1):
                if terms[i] == term_bytes:
                    docid = docids[i]
                    if fences and self._is_ghost(position, docid):
                        continue
                    yield docid, weights[i]

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (one chain scan).

        Counts per decoded page (``terms.count``) instead of iterating
        postings one by one; falls back to the posting stream when recovery
        fences are active, since ghosts must be excluded per entry.
        """
        if self._fences:
            return sum(1 for _ in self.iter_term_tuples(term))
        term_bytes = term.encode("utf-8")
        bucket = bucket_of(term, self.num_buckets)
        count = 0
        for position, decoded in self.buckets.iter_decoded(bucket):
            if position is None:
                count += sum(
                    1
                    for entry in decoded
                    if entry[1 : 1 + entry[0]] == term_bytes
                )
            else:
                count += decoded[2].count(term_bytes)
        return count

    def chain_pages(self, term: str) -> int:
        """Flash pages a probe of ``term`` must read (IO cost)."""
        return self.buckets.chain_length(bucket_of(term, self.num_buckets))
