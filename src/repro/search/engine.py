"""Pipelined embedded search engine (Part II, first illustration).

Answers IR queries — *the N most relevant documents for a set of keywords* —
inside the token's RAM budget. The key trick reproduced from the tutorial:

* docids are generated in increasing order, and bucket chains replay
  postings in **descending docid order**;
* the query scans the chain of each keyword **once**, merging on docids: all
  postings of a given docid surface at the heads of the iterators together,
  so its TF-IDF score is computable *in pipeline*, after which the doc's
  state is discarded;
* RAM = one page buffer per query keyword + the bounded top-N heap, charged
  against the MCU's :class:`~repro.hardware.ram.RamArena` — never a
  "container per retrieved docid" (that is the baseline's failure mode).

IDF needs document frequencies, which the token does not keep in RAM (a
vocabulary-sized table would bust the budget); instead each keyword chain is
scanned twice — a counting pass then the merge pass — trading IO for RAM
exactly as the embedded literature does.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro import obs
from repro.hardware.token import SecurePortableToken
from repro.search.analyzer import query_terms, term_frequencies
from repro.search.inverted import SequentialInvertedIndex
from repro.storage.cache import CacheStats

#: RAM charged per entry of the top-N result heap: docid + score + heap slot.
_HEAP_ENTRY_BYTES = 16


@dataclass(frozen=True)
class SearchHit:
    """One query result."""

    docid: int
    score: float


@dataclass
class SearchStats:
    """Observed IO cost of one search (the search-side ExecutionStats).

    With a page cache attached, the second chain scan of the IDF double
    pass is served from RAM: ``flash_page_reads`` counts only real chip
    IOs, and ``cache`` holds the per-search hit/miss delta (an all-zero
    :class:`CacheStats` when the token runs uncached, so callers never
    guard on None).
    """

    flash_page_reads: int = 0
    cache: CacheStats = field(default_factory=CacheStats)


class EmbeddedSearchEngine:
    """Keyword search over documents stored in one secure token."""

    def __init__(
        self,
        token: SecurePortableToken,
        num_buckets: int = 64,
        manifest=None,
    ) -> None:
        self.token = token
        #: Optional :class:`~repro.storage.recovery.Manifest` the engine
        #: writes its durable checkpoints to (None: no crash guarantees).
        self.manifest = manifest
        self.index = SequentialInvertedIndex(
            token.allocator, num_buckets, ram=token.mcu.ram
        )
        self._next_docid = 0
        #: IO breakdown of the most recent :meth:`search` call.
        self.last_search_stats = SearchStats()

    @classmethod
    def remount(
        cls,
        token: SecurePortableToken,
        session,
        manifest,
        num_buckets: int = 64,
    ) -> "EmbeddedSearchEngine":
        """Recover the engine after power loss (see the index's remount).

        Docid assignment resumes from the last durable checkpoint; the
        owner is expected to re-index every document ingested after it
        (their old postings are fenced out as ghosts), which is what
        :meth:`PersonalDataServer.remount` does from the documents log.
        """
        engine = cls.__new__(cls)
        engine.token = token
        engine.manifest = manifest
        engine.index = SequentialInvertedIndex.remount(
            session, manifest, num_buckets, ram=token.mcu.ram
        )
        engine._next_docid = engine.index._last_docid + 1
        engine.last_search_stats = SearchStats()
        return engine

    def checkpoint(self) -> None:
        """Flush all staged postings and durably mark the fully-indexed point.

        After this returns, every document indexed so far survives a crash
        without replay: the checkpoint record tells recovery that docids up
        to ``docs - 1`` are completely on flash.
        """
        self.index.flush()
        if self.manifest is not None:
            self.manifest.append("search-checkpoint", docs=self._next_docid)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def add_document(self, text: str, docid: int | None = None) -> int:
        """Index a document; returns its docid (auto-increasing by default)."""
        self.token.require_trusted()
        if docid is None:
            docid = self._next_docid
        weights = {term: float(tf) for term, tf in term_frequencies(text).items()}
        self.index.add_document(docid, weights)
        self._next_docid = docid + 1
        return docid

    def flush(self) -> None:
        self.index.flush()

    @property
    def doc_count(self) -> int:
        return self.index.doc_count

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def search(
        self, query: str, n: int = 10, require_all: bool = False
    ) -> list[SearchHit]:
        """Top-``n`` documents for ``query`` by TF-IDF, merge-pipelined.

        With ``require_all`` (conjunctive semantics) only documents
        containing *every* query keyword are ranked — evaluated inside the
        same merge at no extra RAM: a docid qualifies iff all keyword
        iterators surface it simultaneously.
        """
        self.token.require_trusted()
        keywords = query_terms(query)
        if not keywords or self.index.doc_count == 0:
            self.last_search_stats = SearchStats()
            return []

        flash = self.token.flash
        reads_before = flash.stats.page_reads
        cache = self.token.allocator.page_cache
        cache_before = cache.stats.snapshot() if cache is not None else None
        ram = self.token.mcu.ram
        page_size = flash.geometry.page_size
        merge_ram = len(keywords) * page_size + n * _HEAP_ENTRY_BYTES
        try:
            with obs.span(
                "search.query", keywords=len(keywords), n=n
            ), ram.reservation(merge_ram, tag="search:merge"):
                with obs.span("search.idf"):
                    idf = self._idf_pass(keywords)
                live = [term for term in keywords if idf.get(term, 0.0) > 0.0]
                if not live or (require_all and len(live) < len(keywords)):
                    return []
                with obs.span("search.merge", live_terms=len(live)):
                    return self._merge_pass(
                        live, idf, n, require_all=require_all
                    )
        finally:
            self.last_search_stats = SearchStats(
                flash_page_reads=flash.stats.page_reads - reads_before,
                cache=(
                    cache.stats.delta(cache_before)
                    if cache is not None
                    else CacheStats()
                ),
            )

    def _idf_pass(self, keywords: list[str]) -> dict[str, float]:
        """Counting pass: document frequency -> IDF per keyword."""
        total_docs = self.index.doc_count
        idf: dict[str, float] = {}
        for term in keywords:
            df = self.index.document_frequency(term)
            idf[term] = math.log(total_docs / df) if df else 0.0
            # log(N/N) == 0 would erase ubiquitous terms entirely; keep a
            # small floor so a term present in every doc still contributes.
            if df == total_docs:
                idf[term] = 1.0 / total_docs
        return idf

    def _merge_pass(
        self,
        keywords: list[str],
        idf: dict[str, float],
        n: int,
        require_all: bool = False,
    ) -> list[SearchHit]:
        """Single synchronized descent over all keyword chains.

        A max-merge on docid: iterators are kept in a heap keyed by
        ``-docid``; all heads sharing the current docid are popped together,
        their ``tf * idf`` contributions summed, and the doc's score goes to
        the bounded min-heap of the best ``n``.
        """
        # Array-backed (docid, weight) streams: same chain pages in the same
        # order as iter_term, minus per-posting object construction.
        iterators = {
            term: self.index.iter_term_tuples(term) for term in keywords
        }
        heads: list[tuple[int, str]] = []  # (-docid, term)
        current: dict[str, float] = {}
        for term, iterator in iterators.items():
            posting = next(iterator, None)
            if posting is not None:
                heapq.heappush(heads, (-posting[0], term))
                current[term] = posting[1]

        # Min-heap of (score, -docid): the weakest entry is the lowest score,
        # ties resolved against the *largest* docid, so equal-score documents
        # rank by ascending docid exactly like the conventional baseline.
        best: list[tuple[float, int]] = []
        while heads:
            docid = -heads[0][0]
            score = 0.0
            matched_terms = 0
            while heads and -heads[0][0] == docid:
                _, term = heapq.heappop(heads)
                score += current.pop(term) * idf[term]
                matched_terms += 1
                self.token.mcu.charge_compares(1)
                nxt = next(iterators[term], None)
                if nxt is not None:
                    heapq.heappush(heads, (-nxt[0], term))
                    current[term] = nxt[1]
            if require_all and matched_terms < len(keywords):
                continue
            entry = (score, -docid)
            if len(best) < n:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)

        ranked = sorted(best, key=lambda pair: (-pair[0], -pair[1]))
        return [
            SearchHit(docid=-neg_docid, score=score) for score, neg_docid in ranked
        ]
