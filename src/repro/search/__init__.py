"""Embedded search engine (Part II, first illustration).

A TF-IDF keyword search engine that runs inside a secure token: sequential
inverted index in flash (:class:`SequentialInvertedIndex`), pipelined top-N
merge (:class:`EmbeddedSearchEngine`) and the RAM-hungry conventional
baseline it is compared against (:class:`RamHungrySearch`).
"""

from repro.search.analyzer import STOPWORDS, query_terms, term_frequencies, tokenize
from repro.search.baseline import RamHungrySearch
from repro.search.engine import EmbeddedSearchEngine, SearchHit, SearchStats
from repro.search.inverted import Posting, SequentialInvertedIndex

__all__ = [
    "STOPWORDS",
    "EmbeddedSearchEngine",
    "Posting",
    "RamHungrySearch",
    "SearchHit",
    "SearchStats",
    "SequentialInvertedIndex",
    "query_terms",
    "term_frequencies",
    "tokenize",
]
