"""RAM-hungry baseline search: the design the tutorial rules out.

The "Search algorithm" slide describes the conventional evaluation — *one
container allocated per retrieved docid* used to aggregate its triples and
compute its TF-IDF — and stamps it "too much!" for a token. This module
implements exactly that, charging one container per candidate document to a
:class:`~repro.hardware.ram.RamArena`, so tests can show it (a) returns the
same top-N as the pipelined engine, and (b) blows the RAM budget as the
corpus grows while the pipelined engine stays flat (experiment E2).
"""

from __future__ import annotations

import math

from repro.hardware.ram import RamArena
from repro.search.analyzer import query_terms
from repro.search.engine import SearchHit
from repro.search.inverted import SequentialInvertedIndex

#: RAM charged per candidate-document container (docid + accumulator slots).
CONTAINER_BYTES = 32


class RamHungrySearch:
    """Container-per-docid evaluation over the same inverted index."""

    def __init__(self, index: SequentialInvertedIndex, ram: RamArena) -> None:
        self.index = index
        self.ram = ram

    def search(
        self, query: str, n: int = 10, require_all: bool = False
    ) -> list[SearchHit]:
        """Top-``n`` by TF-IDF, aggregating every candidate in RAM."""
        keywords = query_terms(query)
        total_docs = self.index.doc_count
        if not keywords or total_docs == 0:
            return []

        idf: dict[str, float] = {}
        for term in keywords:
            df = self.index.document_frequency(term)
            if df == 0:
                continue
            idf[term] = (
                1.0 / total_docs if df == total_docs else math.log(total_docs / df)
            )

        if require_all and len(idf) < len(keywords):
            return []  # a keyword is absent: no document can hold them all
        scores: dict[int, float] = {}
        term_hits: dict[int, int] = {}
        handle = self.ram.allocate(0, tag="baseline:containers")
        try:
            for term, term_idf in idf.items():
                seen_for_term: set[int] = set()
                for posting in self.index.iter_term(term):
                    if posting.docid not in scores:
                        scores[posting.docid] = 0.0
                        term_hits[posting.docid] = 0
                        self.ram.resize(handle, len(scores) * CONTAINER_BYTES)
                    scores[posting.docid] += posting.weight * term_idf
                    if posting.docid not in seen_for_term:
                        seen_for_term.add(posting.docid)
                        term_hits[posting.docid] += 1
            if require_all:
                scores = {
                    docid: score
                    for docid, score in scores.items()
                    if term_hits[docid] == len(keywords)
                }
            ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
            return [SearchHit(docid=docid, score=score) for docid, score in ranked]
        finally:
            self.ram.free(handle)
