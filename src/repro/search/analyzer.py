"""Text analysis for the embedded search engine.

Keeps to what a token can afford: lowercasing, alphanumeric tokenization, a
small stopword list and raw term frequencies. The *weight* stored in the
inverted index for ``(term, doc)`` is the term frequency; the IDF part of
TF-IDF is applied at query time (see :mod:`repro.search.engine`), matching
the tutorial's formula::

    TF-IDF(doc) = sum over query keywords t of
                  weight_{t,doc} * log(|docs| / |docs containing t|)
"""

from __future__ import annotations

import re
from collections import Counter

_TOKEN = re.compile(r"[a-z0-9]+")

#: Minimal English stopword list — enough to keep index chains honest without
#: pretending to be a linguistics package.
STOPWORDS = frozenset(
    """a an and are as at be by for from has have in is it its of on or that
    the to was were will with this these those not no but they them he she
    his her you your we our i me my""".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric tokens, stopwords removed, order preserved."""
    return [
        token
        for token in _TOKEN.findall(text.lower())
        if token not in STOPWORDS
    ]


def term_frequencies(text: str) -> dict[str, int]:
    """Term -> occurrence count for one document."""
    return dict(Counter(tokenize(text)))


def query_terms(query: str) -> list[str]:
    """Distinct query keywords in first-occurrence order."""
    seen: dict[str, None] = {}
    for token in tokenize(query):
        seen.setdefault(token)
    return list(seen)
