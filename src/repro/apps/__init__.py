"""Perspective applications: the tutorial's three envisioned deployments.

Personal social-medical folders with badge-carried synchronization,
Folk-IS delay-tolerant networks for infrastructure-free regions, and
Trusted Cells home gateways backed by an untrusted encrypted cloud.
"""

from repro.apps.dsn import (
    DecentralizedSocialNetwork,
    DsnUser,
    Post,
    RelayObservation,
)
from repro.apps.folkis import Bundle, FolkNetwork, FolkNode
from repro.apps.medical import MedicalDeployment, Practitioner, VisitStats
from repro.apps.trustedcells import (
    EncryptedCloudStore,
    SensorEvent,
    TrustedCell,
)

__all__ = [
    "Bundle",
    "DecentralizedSocialNetwork",
    "DsnUser",
    "Post",
    "RelayObservation",
    "EncryptedCloudStore",
    "FolkNetwork",
    "FolkNode",
    "MedicalDeployment",
    "Practitioner",
    "SensorEvent",
    "TrustedCell",
    "VisitStats",
]
