"""The personal social-medical folder field experiment (Perspectives).

A deployment of the PDS architecture for home care coordination:

* each **patient** owns her medical-social folder on a secure token at home
  (a :class:`ReplicaState` + a policy-guarded :class:`PersonalDataServer`);
* an encrypted **central server** supports coordination between
  practitioners (web access on their side — modelled as direct authoring
  into the central replica);
* **practitioners' smart badges** synchronize homes and center during
  visits — *no network link required, no data re-entered*.

:class:`MedicalDeployment.simulate_rounds` drives visits and returns
convergence statistics for the E10 bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.globalq.protocol import TokenFleet
from repro.pds.datamodel import PersonalDocument, medical_note
from repro.pds.sync import ReplicaState, badge_sync


@dataclass
class Practitioner:
    """A doctor/nurse/social worker making home visits with a badge."""

    name: str
    role: str


@dataclass
class VisitStats:
    """Outcome of one simulation."""

    visits: int
    documents_authored: int
    badge_documents_moved: int
    converged_patients: int
    total_patients: int

    @property
    def convergence_ratio(self) -> float:
        return (
            self.converged_patients / self.total_patients
            if self.total_patients
            else 1.0
        )


class MedicalDeployment:
    """Patients' home folders + the central coordination replica."""

    def __init__(
        self,
        num_patients: int,
        practitioners: list[Practitioner] | None = None,
        seed: int = 0,
    ) -> None:
        self.fleet = TokenFleet(seed=seed)
        self.rng = random.Random(seed)
        self.central = ReplicaState("central")
        self.homes = [
            ReplicaState(f"patient-{i}") for i in range(num_patients)
        ]
        self.practitioners = practitioners or [
            Practitioner("dr-dupont", "doctor"),
            Practitioner("nurse-claire", "nurse"),
            Practitioner("sw-karim", "social-worker"),
        ]
        self._authored = 0

    # ------------------------------------------------------------------
    def home_visit(self, patient: int, practitioner: Practitioner) -> int:
        """A visit: author a care note at home, then badge-sync with center.

        Returns the number of documents the badge moved (both directions).
        """
        home = self.homes[patient]
        note = medical_note(
            f"visit by {practitioner.name} for patient {patient}",
            diagnosis="checkup",
        )
        home.add_local(practitioner.name, note)
        self._authored += 1
        to_central, to_home = badge_sync(self.fleet, home, self.central)
        return to_central + to_home

    def central_entry(self, patient: int, text: str) -> None:
        """A practitioner records something at the center (web side)."""
        self.central.add_local(
            f"central-for-{patient}",
            PersonalDocument(kind="medical", text=text),
        )
        self._authored += 1

    def patient_converged(self, patient: int) -> bool:
        """Does this home hold everything the center holds, and vice versa?

        (Real deployments filter by patient; for convergence accounting we
        check full replica equality, which badge rounds guarantee.)
        """
        return self.homes[patient].converged_with(self.central)

    # ------------------------------------------------------------------
    def simulate_rounds(self, rounds: int) -> VisitStats:
        """Random visit schedule; after each round some homes badge-sync."""
        moved = 0
        visits = 0
        for _ in range(rounds):
            patient = self.rng.randrange(len(self.homes))
            practitioner = self.practitioners[
                self.rng.randrange(len(self.practitioners))
            ]
            if self.rng.random() < 0.3:
                self.central_entry(patient, "coordination note")
            moved += self.home_visit(patient, practitioner)
            visits += 1
        converged = sum(
            1 for patient in range(len(self.homes))
            if self.patient_converged(patient)
        )
        return VisitStats(
            visits=visits,
            documents_authored=self._authored,
            badge_documents_moved=moved,
            converged_patients=converged,
            total_patients=len(self.homes),
        )

    def final_sync_all(self) -> None:
        """A closing badge tour visiting every home once."""
        for home in self.homes:
            badge_sync(self.fleet, home, self.central)
