"""Folk-IS: folk-enabled information systems (Perspectives).

Personal-data services for regions with **no infrastructure**: no network,
no servers, no trusted authorities. Every participant carries a secure
token; data moves only when people physically meet (a delay-tolerant
network), and the tokens enforce privacy end-to-end — messages travel
encrypted under the fleet key, and couriers learn nothing about what they
carry.

The simulator drives random pairwise encounters and measures delivery
latency, matching the three Folk-IS requirements quoted on the slide:
self-enforced privacy, self-sufficiency, and per-participant cost of a few
dollars (one token, no infrastructure).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.globalq.protocol import TokenFleet


@dataclass
class Bundle:
    """One store-and-forward message (always encrypted in transit)."""

    bundle_id: int
    origin: int
    destination: int
    blob: bytes
    created_step: int
    delivered_step: int | None = None

    @property
    def delivered(self) -> bool:
        return self.delivered_step is not None

    @property
    def latency(self) -> int | None:
        if self.delivered_step is None:
            return None
        return self.delivered_step - self.created_step


class FolkNode:
    """One participant: a token with a bundle buffer."""

    def __init__(self, node_id: int, buffer_limit: int = 256) -> None:
        self.node_id = node_id
        self.buffer_limit = buffer_limit
        self.carrying: dict[int, Bundle] = {}

    def accept(self, bundle: Bundle) -> bool:
        if len(self.carrying) >= self.buffer_limit:
            return False
        self.carrying[bundle.bundle_id] = bundle
        return True


class FolkNetwork:
    """A village-scale delay-tolerant network driven by encounters."""

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        encounters_per_step: int | None = None,
        buffer_limit: int = 256,
    ) -> None:
        if num_nodes < 2:
            raise ProtocolError("a Folk-IS needs at least two participants")
        self.fleet = TokenFleet(seed=seed)
        self._cipher = self.fleet.payload_cipher()
        self.rng = random.Random(seed)
        self.nodes = [FolkNode(i, buffer_limit) for i in range(num_nodes)]
        self.encounters_per_step = encounters_per_step or max(1, num_nodes // 2)
        self.step_count = 0
        self.bundles: list[Bundle] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    def send(self, origin: int, destination: int, payload: bytes) -> Bundle:
        """Queue a message at its origin node (encrypted immediately)."""
        if origin == destination:
            raise ProtocolError("origin and destination must differ")
        bundle = Bundle(
            bundle_id=self._next_id,
            origin=origin,
            destination=destination,
            blob=self._cipher.encrypt(payload),
            created_step=self.step_count,
        )
        self._next_id += 1
        self.bundles.append(bundle)
        self.nodes[origin].accept(bundle)
        return bundle

    def step(self) -> int:
        """One time step of random encounters; returns deliveries made."""
        self.step_count += 1
        delivered = 0
        for _ in range(self.encounters_per_step):
            a, b = self.rng.sample(range(len(self.nodes)), 2)
            delivered += self._meet(self.nodes[a], self.nodes[b])
        return delivered

    def _meet(self, first: FolkNode, second: FolkNode) -> int:
        """Epidemic exchange: both replicate undelivered bundles."""
        delivered = 0
        for left, right in ((first, second), (second, first)):
            for bundle in list(left.carrying.values()):
                if bundle.delivered:
                    del left.carrying[bundle.bundle_id]
                    continue
                if bundle.destination == right.node_id:
                    bundle.delivered_step = self.step_count
                    del left.carrying[bundle.bundle_id]
                    delivered += 1
                elif bundle.bundle_id not in right.carrying:
                    right.accept(bundle)
        return delivered

    def run_until_delivered(self, max_steps: int = 10_000) -> int:
        """Step until every bundle is delivered; returns steps taken."""
        start = self.step_count
        while any(not bundle.delivered for bundle in self.bundles):
            if self.step_count - start >= max_steps:
                raise ProtocolError(
                    f"not all bundles delivered after {max_steps} steps"
                )
            self.step()
        return self.step_count - start

    # ------------------------------------------------------------------
    def delivery_latencies(self) -> list[int]:
        return [
            bundle.latency for bundle in self.bundles if bundle.delivered
        ]

    def read_payload(self, bundle: Bundle) -> bytes:
        """Destination-side decryption (inside the recipient's token)."""
        if not bundle.delivered:
            raise ProtocolError("bundle not delivered yet")
        return self._cipher.decrypt(bundle.blob)
