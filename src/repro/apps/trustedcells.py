"""Trusted Cells: the home gateway vision (Perspectives, [CIDR'13]).

A *trusted cell* regulates the personal data produced around an individual
at home: sensor streams land in the local PDS, the **cloud is used purely as
an encrypted storage service**, and applications only see what the owner's
policy releases. The cell composes pieces built earlier — a
:class:`PersonalDataServer`, the fleet ciphers, and the replica machinery —
into the deployment the slide sketches (ARM TrustZone box + dumb cloud).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.globalq.protocol import TokenFleet
from repro.pds.acl import PrivacyPolicy, Subject
from repro.pds.datamodel import PersonalDocument
from repro.pds.server import (
    PersonalDataServer,
    _deserialize_document,
    _serialize_document,
)
from repro.timeseries.series import TimeSeriesStore


class EncryptedCloudStore:
    """The dumb cloud: stores opaque blobs per cell, serves them back."""

    def __init__(self) -> None:
        self._blobs: dict[str, list[bytes]] = {}

    def put(self, cell_id: str, blob: bytes) -> int:
        self._blobs.setdefault(cell_id, []).append(blob)
        return len(self._blobs[cell_id]) - 1

    def get_all(self, cell_id: str) -> list[bytes]:
        return list(self._blobs.get(cell_id, []))

    def stored_bytes(self, cell_id: str) -> int:
        return sum(len(blob) for blob in self._blobs.get(cell_id, []))

    def snoop(self, cell_id: str) -> list[bytes]:
        """What a curious cloud operator sees: ciphertext only."""
        return self.get_all(cell_id)


@dataclass
class SensorEvent:
    """One reading from a home device."""

    sensor: str
    attributes: dict = field(default_factory=dict)


class TrustedCell:
    """The secure gateway of one home."""

    def __init__(
        self,
        owner: str,
        fleet: TokenFleet,
        cloud: EncryptedCloudStore,
        policy: PrivacyPolicy | None = None,
    ) -> None:
        self.cell_id = f"cell:{owner}"
        self.fleet = fleet
        self.cloud = cloud
        self.pds = PersonalDataServer(owner=owner, policy=policy)
        self._cipher = fleet.payload_cipher()
        self._archived = 0
        #: Per-sensor time series on the cell's own flash: high-frequency
        #: numeric streams go here (summarized pages, window queries),
        #: while the PDS keeps the document-shaped view.
        self.series: dict[str, TimeSeriesStore] = {}
        self._clock = 0

    # ------------------------------------------------------------------
    def ingest_sensor(self, event: SensorEvent) -> int:
        """A sensor reading enters the cell and is archived encrypted.

        Numeric readings are *also* appended to the sensor's time series,
        so window/range analytics run on summarized pages instead of
        scanning documents.
        """
        document = PersonalDocument(
            kind="energy" if "kwh" in event.attributes else "form",
            attributes={**event.attributes, "sensor": event.sensor},
            source=event.sensor,
        )
        doc_id = self.pds.ingest(document)
        self.cloud.put(
            self.cell_id, self._cipher.encrypt(_serialize_document(document))
        )
        self._archived += 1
        numeric = next(
            (
                value
                for value in event.attributes.values()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ),
            None,
        )
        if numeric is not None:
            series = self.series.get(event.sensor)
            if series is None:
                series = TimeSeriesStore(
                    self.pds.token.allocator, name=f"series:{event.sensor}"
                )
                self.series[event.sensor] = series
            self._clock += 1
            series.append(self._clock, float(numeric))
        return doc_id

    def sensor_average(self, sensor: str, t0: int, t1: int) -> float | None:
        """Window AVG over one sensor's series (summary-skipping)."""
        series = self.series.get(sensor)
        if series is None:
            return None
        series.flush()
        return series.range_aggregate(t0, t1, "AVG")

    @property
    def archived_count(self) -> int:
        return self._archived

    # ------------------------------------------------------------------
    def restore_from_cloud(self) -> "TrustedCell":
        """Disaster recovery: rebuild a fresh cell from the encrypted archive.

        Durability without trusting the cloud: only a fleet token can turn
        the blobs back into documents.
        """
        replacement = TrustedCell(
            owner=self.pds.owner.name + "-restored",
            fleet=self.fleet,
            cloud=self.cloud,
            policy=self.pds.policy,
        )
        for blob in self.cloud.get_all(self.cell_id):
            document = _deserialize_document(self._cipher.decrypt(blob))
            replacement.pds.ingest(document)
        return replacement

    def app_query(self, app: Subject, query: str, n: int = 5):
        """An application searches through the policy gate."""
        return self.pds.search(app, query, n=n)

    def app_read(self, app: Subject, doc_id: int) -> PersonalDocument:
        return self.pds.read(app, doc_id)
