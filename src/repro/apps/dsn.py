"""Decentralized social network: Part I's review, made runnable.

The tutorial surveys privacy-preserving DSNs (Safebook, PeerSoN, Diaspora*)
and identifies their two core problems:

* **secure message hosting** — posts are encrypted under a per-user content
  key shared only with friends, and replicated on *mirror* friends
  (Safebook's inner shell) so the profile stays available while the owner
  is offline. Mirrors store ciphertext: a curious host learns nothing.
* **secure and anonymous message transfer** — messages travel hop-by-hop
  along trusted (friendship) edges, onion-wrapped per hop, so each relay
  learns only its predecessor and successor, never source, destination or
  payload.

The simulator measures what the DSN literature measures: availability vs
replication factor and churn, routing path lengths, and what each relay
actually observed (for the anonymity checks in the tests and bench E14).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

import networkx as nx

from repro.crypto.symmetric import NondeterministicCipher
from repro.errors import AccessDenied, ProtocolError


@dataclass
class Post:
    """One published item, as stored on mirrors (ciphertext only)."""

    author: int
    post_id: int
    blob: bytes


@dataclass
class RelayObservation:
    """What one relay learned while forwarding a message."""

    relay: int
    previous_hop: int
    next_hop: int
    payload_visible: bool


class DsnUser:
    """One participant: keys, friends, hosted mirrors, inbox."""

    def __init__(self, user_id: int, rng: random.Random) -> None:
        self.user_id = user_id
        seed = rng.getrandbits(64)
        self._content_key = seed.to_bytes(8, "little") * 4
        self.content_cipher = NondeterministicCipher(
            self._content_key, rng=random.Random(seed)
        )
        hop_seed = rng.getrandbits(64)
        self._hop_key = hop_seed.to_bytes(8, "little") * 4
        self.hop_cipher = NondeterministicCipher(
            self._hop_key, rng=random.Random(hop_seed)
        )
        self.mirrored: dict[tuple[int, int], Post] = {}
        self.own_posts: dict[int, Post] = {}
        self.inbox: list[bytes] = []
        self.online = True

    def share_content_key_with(self, friend: "DsnUser") -> bytes:
        """Friends receive the content key (trusted-contact model)."""
        return self._content_key


class DecentralizedSocialNetwork:
    """A friendship graph of token-carrying users."""

    def __init__(
        self,
        num_users: int,
        avg_friends: int = 6,
        seed: int = 0,
    ) -> None:
        if num_users < 3:
            raise ProtocolError("a DSN needs at least three users")
        self.rng = random.Random(seed)
        self.graph = nx.connected_watts_strogatz_graph(
            num_users, max(2, avg_friends), 0.3, seed=seed
        )
        self.users = [DsnUser(uid, self.rng) for uid in range(num_users)]
        self._next_post_id = 0
        self.relay_log: list[RelayObservation] = []

    # ------------------------------------------------------------------
    def friends_of(self, user_id: int) -> list[int]:
        return sorted(self.graph.neighbors(user_id))

    # ------------------------------------------------------------------
    # Secure message hosting
    # ------------------------------------------------------------------
    def publish(self, author_id: int, text: str, mirrors: int = 3) -> Post:
        """Encrypt a post and replicate it on ``mirrors`` friends."""
        author = self.users[author_id]
        friends = self.friends_of(author_id)
        if not friends:
            raise ProtocolError(f"user {author_id} has no friends to mirror on")
        post = Post(
            author=author_id,
            post_id=self._next_post_id,
            blob=author.content_cipher.encrypt(text.encode("utf-8")),
        )
        self._next_post_id += 1
        author.own_posts[post.post_id] = post
        chosen = self.rng.sample(friends, min(mirrors, len(friends)))
        for friend_id in chosen:
            self.users[friend_id].mirrored[(author_id, post.post_id)] = post
        return post

    def fetch(self, reader_id: int, author_id: int, post_id: int) -> str:
        """A friend fetches a post from the author or any online mirror."""
        if reader_id != author_id and reader_id not in self.friends_of(author_id):
            raise AccessDenied(
                f"user {reader_id} is not a friend of {author_id}"
            )
        author = self.users[author_id]
        blob: bytes | None = None
        if author.online and post_id in author.own_posts:
            blob = author.own_posts[post_id].blob
        else:
            for friend_id in self.friends_of(author_id):
                user = self.users[friend_id]
                if user.online and (author_id, post_id) in user.mirrored:
                    blob = user.mirrored[(author_id, post_id)].blob
                    break
        if blob is None:
            raise ProtocolError("post unavailable: owner and mirrors offline")
        key = author.share_content_key_with(self.users[reader_id])
        reader_cipher = NondeterministicCipher(key)
        return reader_cipher.decrypt(blob).decode("utf-8")

    def availability(
        self, author_id: int, post_id: int, online_probability: float,
        trials: int = 200,
    ) -> float:
        """Fraction of churn trials in which the post stays fetchable."""
        holders = [
            friend_id
            for friend_id in self.friends_of(author_id)
            if (author_id, post_id) in self.users[friend_id].mirrored
        ]
        hits = 0
        for _ in range(trials):
            author_online = self.rng.random() < online_probability
            mirror_online = any(
                self.rng.random() < online_probability for _ in holders
            )
            if author_online or mirror_online:
                hits += 1
        return hits / trials

    # ------------------------------------------------------------------
    # Anonymous hop-by-hop transfer
    # ------------------------------------------------------------------
    def send_message(self, source_id: int, target_id: int, text: str) -> list[int]:
        """Onion-route a message along friendship edges; returns the path.

        Each relay peels one layer with its hop key, learning only the next
        hop; the payload (and the source) sit in the innermost layer, which
        only the target can open. Every relay's observation is logged for
        the anonymity analysis.
        """
        if source_id == target_id:
            raise ProtocolError("source and target must differ")
        try:
            path = nx.shortest_path(self.graph, source_id, target_id)
        except nx.NetworkXNoPath:  # pragma: no cover - graph is connected
            raise ProtocolError("no trusted path between users") from None

        # Innermost layer: payload + source, under the target's hop key.
        inner = json.dumps({"from": source_id, "text": text}).encode()
        onion = self.users[target_id].hop_cipher.encrypt(inner)
        # Wrap outward: each relay's layer names its successor.
        for relay_id in reversed(path[1:-1]):
            wrapped = json.dumps(
                {"next": path[path.index(relay_id) + 1], "body": onion.hex()}
            ).encode()
            onion = self.users[relay_id].hop_cipher.encrypt(wrapped)

        # Transfer: peel hop by hop.
        current = onion
        for position in range(1, len(path) - 1):
            relay = self.users[path[position]]
            peeled = json.loads(relay.hop_cipher.decrypt(current))
            self.relay_log.append(
                RelayObservation(
                    relay=relay.user_id,
                    previous_hop=path[position - 1],
                    next_hop=peeled["next"],
                    payload_visible=False,
                )
            )
            current = bytes.fromhex(peeled["body"])
        final = json.loads(self.users[target_id].hop_cipher.decrypt(current))
        self.users[target_id].inbox.append(
            json.dumps(final).encode("utf-8")
        )
        return path

    def last_message_of(self, user_id: int) -> dict:
        if not self.users[user_id].inbox:
            raise ProtocolError(f"user {user_id} has an empty inbox")
        return json.loads(self.users[user_id].inbox[-1])
