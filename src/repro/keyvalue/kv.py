"""Embedded key-value store: the NoSQL extension of the log framework.

Part II's conclusion calls for extending the principles to *key-value
stores*; the flash-aware KV literature it cites (SkimpyStash, SILT) needs
RAM per key, which a token does not have. This store keeps the framework's
rules instead:

* **puts and deletes are appends** — a record ``(sequence, key, flags,
  value)`` goes to the data log; deletes append a tombstone;
* one **Bloom summary per data page** makes ``get`` a summary scan: probe
  only candidate pages, keep the *latest* version found (sequence order);
* **compaction** is the reorganization analogue: an external, log-only sort
  by ``(key, sequence)`` keeps each key's newest live version, writes a
  fresh store sequentially and lets the caller reclaim the old logs
  block-wise.

No per-key RAM anywhere; RAM is bounded by the compaction sort buffer.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.storage import pager
from repro.storage.bloom import BloomFilter
from repro.storage.log import RecordLog

_HEADER = struct.Struct("<IBH")  # sequence, flags, key length
_POSITION = struct.Struct("<I")

FLAG_TOMBSTONE = 0x01


@dataclass(frozen=True)
class _Entry:
    sequence: int
    key: bytes
    value: bytes
    tombstone: bool


def _pack(entry: _Entry) -> bytes:
    flags = FLAG_TOMBSTONE if entry.tombstone else 0
    return (
        _HEADER.pack(entry.sequence, flags, len(entry.key))
        + entry.key
        + entry.value
    )


def _unpack(record: bytes) -> _Entry:
    sequence, flags, key_len = _HEADER.unpack_from(record, 0)
    key = record[_HEADER.size : _HEADER.size + key_len]
    value = record[_HEADER.size + key_len :]
    return _Entry(sequence, key, value, bool(flags & FLAG_TOMBSTONE))


@dataclass
class GetStats:
    """Page-read breakdown of one get (E13)."""

    summary_pages: int = 0
    data_pages: int = 0

    @property
    def total_pages(self) -> int:
        return self.summary_pages + self.data_pages


class LogKeyValueStore:
    """Append-only KV store with Bloom-summarized pages."""

    def __init__(
        self,
        allocator: BlockAllocator,
        name: str = "kv",
        bits_per_key: float = 12.0,
        ram: RamArena | None = None,
    ) -> None:
        self.allocator = allocator
        self.name = name
        self.bits_per_key = bits_per_key
        self.data = RecordLog(allocator, name=f"{name}:data", ram=ram)
        self.summaries = RecordLog(allocator, name=f"{name}:bloom", ram=ram)
        self.data.on_page_flush = self._summarize_page
        self._sequence = 0
        self._writes = 0
        self.last_get = GetStats()

    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Total records appended (all versions + tombstones)."""
        return self._writes

    @property
    def data_pages(self) -> int:
        return self.data.page_count

    def put(self, key: bytes, value: bytes) -> None:
        """Write (a new version of) ``key``."""
        self._append(key, value, tombstone=False)

    def delete(self, key: bytes) -> None:
        """Delete ``key`` (appends a tombstone)."""
        self._append(key, b"", tombstone=True)

    def _append(self, key: bytes, value: bytes, tombstone: bool) -> None:
        if not key:
            raise StorageError("empty keys are not allowed")
        entry = _Entry(self._sequence, bytes(key), bytes(value), tombstone)
        self.data.append(_pack(entry))
        self._sequence += 1
        self._writes += 1

    def flush(self) -> None:
        self.data.flush()
        self.summaries.flush()

    def _summarize_page(self, position: int, records: list[bytes]) -> None:
        bloom = BloomFilter.from_keys(
            [_unpack(record).key for record in records],
            bits_per_key=self.bits_per_key,
        )
        self.summaries.append(_POSITION.pack(position) + bloom.serialize())

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> bytes | None:
        """Latest value of ``key`` (None if absent or deleted)."""
        stats = GetStats()
        best: _Entry | None = None

        candidates: list[int] = []
        for page_records in self.summaries.scan_pages():
            stats.summary_pages += 1
            for record in page_records:
                (position,) = _POSITION.unpack_from(record, 0)
                bloom = BloomFilter.deserialize(record[_POSITION.size :])
                if key in bloom:
                    candidates.append(position)
        for record in self.summaries.buffered_records():
            (position,) = _POSITION.unpack_from(record, 0)
            bloom = BloomFilter.deserialize(record[_POSITION.size :])
            if key in bloom:
                candidates.append(position)

        for position in candidates:
            stats.data_pages += 1
            for record in pager.unpack_records(
                self.data.pages.read_page(position)
            ):
                entry = _unpack(record)
                if entry.key == key and (
                    best is None or entry.sequence > best.sequence
                ):
                    best = entry
        for record in self.data.buffered_records():
            entry = _unpack(record)
            if entry.key == key and (
                best is None or entry.sequence > best.sequence
            ):
                best = entry

        self.last_get = stats
        if best is None or best.tombstone:
            return None
        return best.value

    def items(self) -> dict[bytes, bytes]:
        """Materialize the live state (test/debug helper; scans everything)."""
        latest: dict[bytes, _Entry] = {}
        for _, record in self.data.scan():
            entry = _unpack(record)
            current = latest.get(entry.key)
            if current is None or entry.sequence > current.sequence:
                latest[entry.key] = entry
        return {
            key: entry.value
            for key, entry in latest.items()
            if not entry.tombstone
        }

    # ------------------------------------------------------------------
    def compact(
        self,
        ram: RamArena,
        sort_buffer_bytes: int = 8 * 1024,
        name: str | None = None,
    ) -> "LogKeyValueStore":
        """External-sort compaction into a fresh store (log-only).

        Sorts all versions by ``(key, sequence)`` through bounded-RAM runs,
        then streams the merge keeping only each key's newest non-tombstone
        version. The caller should :meth:`drop` this store afterwards.
        """
        if sort_buffer_bytes <= 0:
            raise StorageError("sort buffer must be positive")
        self.flush()
        runs: list[RecordLog] = []
        buffer: list[tuple[bytes, int, bytes]] = []
        used = 0
        with ram.reservation(sort_buffer_bytes, tag=f"{self.name}:compact"):
            for _, record in self.data.scan():
                entry = _unpack(record)
                size = len(record) + 16
                if buffer and used + size > sort_buffer_bytes:
                    runs.append(self._write_run(buffer, len(runs)))
                    buffer, used = [], 0
                buffer.append((entry.key, entry.sequence, record))
                used += size
            if buffer:
                runs.append(self._write_run(buffer, len(runs)))

        target = LogKeyValueStore(
            self.allocator,
            name=name or f"{self.name}:compacted",
            bits_per_key=self.bits_per_key,
        )
        with ram.reservation(
            max(1, len(runs)) * self.data.pages.page_size,
            tag=f"{self.name}:compact-merge",
        ):
            pending: _Entry | None = None
            streams = [
                (
                    (key, sequence, record)
                    for _, raw in run.scan()
                    for key, sequence, record in [
                        (
                            _unpack(raw).key,
                            _unpack(raw).sequence,
                            raw,
                        )
                    ]
                )
                for run in runs
            ]
            for key, sequence, record in heapq.merge(*streams):
                entry = _unpack(record)
                if pending is not None and pending.key != key:
                    if not pending.tombstone:
                        target.put(pending.key, pending.value)
                    pending = None
                # Ascending sequence within a key: the last one wins.
                pending = entry
            if pending is not None and not pending.tombstone:
                target.put(pending.key, pending.value)
        for run in runs:
            run.drop()
        target.flush()
        return target

    def _write_run(
        self, buffer: list[tuple[bytes, int, bytes]], index: int
    ) -> RecordLog:
        run = RecordLog(self.allocator, name=f"{self.name}:run{index}")
        for _, _, record in sorted(buffer, key=lambda item: (item[0], item[1])):
            run.append(record)
        run.flush()
        return run

    def drop(self) -> None:
        """Reclaim every block of this store."""
        self.data.drop()
        self.summaries.drop()
