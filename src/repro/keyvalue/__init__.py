"""Embedded key-value store (the tutorial's NoSQL extension).

Put/delete as log appends, Bloom-summarized gets, log-only compaction —
the framework's answer to SkimpyStash/SILT without their per-key RAM.
"""

from repro.keyvalue.kv import GetStats, LogKeyValueStore

__all__ = ["GetStats", "LogKeyValueStore"]
