"""Secure set union, intersection size and scalar product ([CKV+02]).

The toolkit's set primitives run on a *commutative* cipher: Pohlig–Hellman
exponentiation ``E_k(x) = x^k mod p`` over a shared safe prime, for which
``E_a(E_b(x)) = E_b(E_a(x))``. Items are first hashed into the group, so

* encrypting every party's items under **all** keys yields a canonical form
  per item — equal items collide regardless of owner or layering order;
* dedup/count over canonical forms computes union and intersection *sizes*
  and memberships without revealing who contributed what.

Scalar product uses Paillier instead (additive structure).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from math import gcd

from repro.crypto.paillier import PaillierPrivateKey, PaillierPublicKey
from repro.crypto.primes import generate_safe_prime
from repro.smc.parties import Channel, CryptoOps


def _hash_to_group(item: str, prime: int) -> int:
    digest = hashlib.sha256(item.encode("utf-8")).digest()
    return 2 + int.from_bytes(digest, "little") % (prime - 3)


@dataclass(frozen=True)
class CommutativeKey:
    """One party's exponentiation key over the shared group."""

    prime: int
    exponent: int

    def encrypt(self, element: int) -> int:
        return pow(element, self.exponent, self.prime)


def make_commutative_keys(
    num_parties: int, rng: random.Random, prime_bits: int = 64
) -> list[CommutativeKey]:
    """A shared safe prime + one coprime exponent per party."""
    prime = generate_safe_prime(prime_bits, rng)
    order = prime - 1
    keys = []
    for _ in range(num_parties):
        while True:
            exponent = rng.randrange(3, order)
            if gcd(exponent, order) == 1:
                break
        keys.append(CommutativeKey(prime=prime, exponent=exponent))
    return keys


@dataclass
class SetResult:
    """Outcome of a set protocol plus its cost."""

    items: set
    crypto: CryptoOps


def _canonical_forms(
    party_items: list[set[str]],
    keys: list[CommutativeKey],
    channel: Channel,
    crypto: CryptoOps,
) -> list[dict[int, str]]:
    """Encrypt every party's items under every key (all-layers form).

    Returns, per party, ``{canonical_form: original_item}`` — only the
    owning party can invert its own mapping; the wire carries forms only.
    """
    prime = keys[0].prime
    mappings: list[dict[int, str]] = []
    for owner, items in enumerate(party_items):
        forms: dict[int, str] = {}
        for item in items:
            element = _hash_to_group(item, prime)
            # The owner encrypts first, then the form circulates through
            # every other party for its layer.
            form = keys[owner].encrypt(element)
            crypto.modexps += 1
            for layer in range(len(keys)):
                if layer == owner:
                    continue
                form = channel.send(f"party-{owner}", f"party-{layer}", form)
                form = keys[layer].encrypt(form)
                crypto.modexps += 1
            forms[form] = item
        mappings.append(forms)
    return mappings


def secure_set_union(
    party_items: list[set[str]],
    keys: list[CommutativeKey],
    channel: Channel,
) -> SetResult:
    """Union of all parties' sets, without attributing items to parties.

    All canonical forms are pooled (a semi-honest mixer would shuffle them);
    duplicates collapse; each party recognizes — and reveals — exactly the
    union items it owns a preimage for.
    """
    if len(party_items) != len(keys):
        raise ValueError("one key per party required")
    crypto = CryptoOps()
    mappings = _canonical_forms(party_items, keys, channel, crypto)
    pooled: set[int] = set()
    for owner, forms in enumerate(mappings):
        pooled.update(
            channel.send(f"party-{owner}", "mixer", sorted(forms))
        )
    union: set[str] = set()
    for forms in mappings:
        union.update(
            item for form, item in forms.items() if form in pooled
        )
    return SetResult(items=union, crypto=crypto)


def secure_intersection_size(
    party_items: list[set[str]],
    keys: list[CommutativeKey],
    channel: Channel,
) -> tuple[int, CryptoOps]:
    """|∩ sets| — counts canonical forms present in *every* party's list."""
    if len(party_items) != len(keys):
        raise ValueError("one key per party required")
    crypto = CryptoOps()
    mappings = _canonical_forms(party_items, keys, channel, crypto)
    common = set(mappings[0])
    for forms in mappings[1:]:
        common &= set(forms)
    return len(common), crypto


def secure_scalar_product(
    alice_vector: list[int],
    bob_vector: list[int],
    public: PaillierPublicKey,
    private: PaillierPrivateKey,
    channel: Channel,
    rng: random.Random,
) -> tuple[int, CryptoOps]:
    """⟨a, b⟩ revealed to Alice; Bob sees only Paillier ciphertexts.

    Alice sends ``E(a_i)``; Bob homomorphically computes
    ``Π E(a_i)^{b_i} = E(Σ a_i b_i)`` and returns it; Alice decrypts.
    """
    if len(alice_vector) != len(bob_vector):
        raise ValueError("vectors must have equal length")
    if not alice_vector:
        return 0, CryptoOps()
    crypto = CryptoOps()
    encrypted = []
    for value in alice_vector:
        encrypted.append(public.encrypt(value, rng))
        crypto.modexps += 1
    channel.send("alice", "bob", encrypted)
    combined = None
    for ciphertext, weight in zip(encrypted, bob_vector):
        term = public.multiply_plain(ciphertext, weight)
        crypto.modexps += 1
        combined = term if combined is None else public.add(combined, term)
    channel.send("bob", "alice", combined)
    crypto.modexps += 1  # Alice's decryption
    return private.decrypt_signed(combined), crypto
