"""Party and channel abstractions with communication accounting.

Part III compares protocol families by what they *cost*: messages exchanged,
bytes moved, modular exponentiations performed. Every protocol in
:mod:`repro.smc` and :mod:`repro.globalq` routes its traffic through a
:class:`Channel`, so benches read totals off one object instead of
instrumenting each protocol ad hoc.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


def payload_bytes(payload) -> int:
    """Serialized size estimate of a protocol message payload.

    Supports ``None`` (absence of payload: 0 bytes), ``bytes``/``str``,
    ``bool``/``int``/``float``, containers, and dataclass instances (sized
    as the sum of their fields — e.g. an ``EncryptedContribution`` with an
    optional group tag).
    """
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, (payload.bit_length() + 7) // 8)
    if isinstance(payload, float):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_bytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            payload_bytes(key) + payload_bytes(value)
            for key, value in payload.items()
        )
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return sum(
            payload_bytes(getattr(payload, f.name))
            for f in dataclasses.fields(payload)
        )
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


@dataclass
class CommStats:
    """Aggregate traffic counters of one channel."""

    messages: int = 0
    bytes: int = 0
    by_edge: dict = field(default_factory=dict)

    def record(self, sender: str, receiver: str, size: int) -> None:
        self.messages += 1
        self.bytes += size
        edge = (sender, receiver)
        self.by_edge[edge] = self.by_edge.get(edge, 0) + size


class Channel:
    """An instrumented message fabric between named parties."""

    def __init__(self, keep_transcript: bool = False) -> None:
        self.stats = CommStats()
        self.keep_transcript = keep_transcript
        self.transcript: list[tuple[str, str, object]] = []

    def send(self, sender: str, receiver: str, payload):
        """Account one message and hand the payload to the caller.

        Protocols are written in direct style (the 'receiver' code is the
        next statement), so ``send`` returns the payload for convenience.
        """
        self.stats.record(sender, receiver, payload_bytes(payload))
        if self.keep_transcript:
            self.transcript.append((sender, receiver, payload))
        return payload


@dataclass
class CryptoOps:
    """Counts of expensive cryptographic operations in one protocol run."""

    modexps: int = 0
    symmetric_ops: int = 0

    def __add__(self, other: "CryptoOps") -> "CryptoOps":
        return CryptoOps(
            modexps=self.modexps + other.modexps,
            symmetric_ops=self.symmetric_ops + other.symmetric_ops,
        )
