"""Secure multi-party computation toolkit (Part III's 'current solutions').

The [CKV+02] data-mining primitives (secure sum, set union, intersection
size, scalar product), Yao's millionaires' protocol, and the instrumented
party/channel fabric all protocols report costs through.
"""

from repro.smc.association import (
    MiningReport,
    Rule,
    mine_centralized,
    mine_distributed,
)
from repro.smc.garbled import (
    Circuit,
    Gate,
    GarbledComparisonResult,
    TokenAssistedOT,
    comparator_circuit,
    evaluate,
    garble,
    garbled_millionaires,
)
from repro.smc.millionaire import MillionaireResult, millionaires
from repro.smc.parties import Channel, CommStats, CryptoOps, payload_bytes
from repro.smc.secure_sum import (
    SumResult,
    collude_against_site,
    paillier_secure_sum,
    ring_secure_sum,
)
from repro.smc.set_ops import (
    CommutativeKey,
    SetResult,
    make_commutative_keys,
    secure_intersection_size,
    secure_scalar_product,
    secure_set_union,
)

__all__ = [
    "Channel",
    "Circuit",
    "GarbledComparisonResult",
    "Gate",
    "MiningReport",
    "Rule",
    "TokenAssistedOT",
    "comparator_circuit",
    "evaluate",
    "garble",
    "garbled_millionaires",
    "mine_centralized",
    "mine_distributed",
    "CommStats",
    "CommutativeKey",
    "CryptoOps",
    "MillionaireResult",
    "SetResult",
    "SumResult",
    "collude_against_site",
    "make_commutative_keys",
    "millionaires",
    "paillier_secure_sum",
    "payload_bytes",
    "ring_secure_sum",
    "secure_intersection_size",
    "secure_scalar_product",
    "secure_set_union",
]
