"""Privacy-preserving association-rule mining ([CKV+02]'s application).

The toolkit slide says the four primitives *"can compute association
rules"* over horizontally partitioned data. This module does it: a
distributed Apriori where each site holds its own transactions and global
itemset supports are computed with the **masked-ring secure sum** — no site
ever reveals its local counts, yet the mined rules equal the centralized
run on the pooled data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations

from repro.smc.parties import Channel
from repro.smc.secure_sum import ring_secure_sum


@dataclass(frozen=True)
class Rule:
    """``antecedent -> consequent`` with its global quality measures."""

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float

    def key(self) -> tuple:
        return (tuple(sorted(self.antecedent)), tuple(sorted(self.consequent)))


def _local_count(transactions: list[set], itemset: frozenset) -> int:
    return sum(1 for transaction in transactions if itemset <= transaction)


def _apriori_supports(
    count_itemset,
    items: set,
    total_transactions: int,
    min_support: float,
) -> dict[frozenset, float]:
    """Level-wise Apriori driven by an abstract counting oracle."""
    threshold = min_support * total_transactions
    supports: dict[frozenset, float] = {}
    frequent = []
    for item in sorted(items):
        candidate = frozenset([item])
        count = count_itemset(candidate)
        if count >= threshold:
            supports[candidate] = count / total_transactions
            frequent.append(candidate)

    size = 2
    while frequent:
        candidates = set()
        for first, second in combinations(frequent, 2):
            union = first | second
            if len(union) == size and all(
                frozenset(subset) in supports
                for subset in combinations(union, size - 1)
            ):
                candidates.add(union)
        next_frequent = []
        for candidate in sorted(candidates, key=sorted):
            count = count_itemset(candidate)
            if count >= threshold:
                supports[candidate] = count / total_transactions
                next_frequent.append(candidate)
        frequent = next_frequent
        size += 1
    return supports


def _rules_from_supports(
    supports: dict[frozenset, float], min_confidence: float
) -> list[Rule]:
    rules = []
    for itemset, support in supports.items():
        if len(itemset) < 2:
            continue
        for size in range(1, len(itemset)):
            for antecedent_items in combinations(sorted(itemset), size):
                antecedent = frozenset(antecedent_items)
                confidence = support / supports[antecedent]
                if confidence >= min_confidence:
                    rules.append(
                        Rule(
                            antecedent=antecedent,
                            consequent=itemset - antecedent,
                            support=support,
                            confidence=confidence,
                        )
                    )
    return sorted(rules, key=Rule.key)


def mine_centralized(
    transactions: list[set],
    min_support: float,
    min_confidence: float,
) -> list[Rule]:
    """Apriori over pooled cleartext data (the correctness oracle)."""
    items = set().union(*transactions) if transactions else set()
    supports = _apriori_supports(
        lambda itemset: _local_count(transactions, itemset),
        items,
        len(transactions),
        min_support,
    )
    return _rules_from_supports(supports, min_confidence)


@dataclass
class MiningReport:
    """Rules plus protocol cost."""

    rules: list[Rule]
    secure_sums: int
    comm_messages: int
    comm_bytes: int


def mine_distributed(
    site_transactions: list[list[set]],
    min_support: float,
    min_confidence: float,
    channel: Channel,
    rng: random.Random,
) -> MiningReport:
    """Distributed Apriori: one secure sum per candidate itemset.

    Sites learn global supports of candidates (which is the protocol's
    declared output) and nothing about each other's local counts — every
    count crosses the wire inside a masked ring sum.
    """
    if len(site_transactions) < 2:
        raise ValueError("distributed mining needs at least two sites")
    total = sum(len(transactions) for transactions in site_transactions)
    items = set()
    for transactions in site_transactions:
        for transaction in transactions:
            items.update(transaction)

    sums = 0

    def secure_count(itemset: frozenset) -> int:
        nonlocal sums
        sums += 1
        locals_ = [
            _local_count(transactions, itemset)
            for transactions in site_transactions
        ]
        return ring_secure_sum(locals_, channel, rng).total

    supports = _apriori_supports(secure_count, items, total, min_support)
    rules = _rules_from_supports(supports, min_confidence)
    return MiningReport(
        rules=rules,
        secure_sums=sums,
        comm_messages=channel.stats.messages,
        comm_bytes=channel.stats.bytes,
    )
