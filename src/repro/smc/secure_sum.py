"""Secure sum: the first primitive of the Clifton data-mining toolkit.

Two implementations, with very different cost profiles (bench E7):

* :func:`ring_secure_sum` — the [CKV+02] masked ring: the coordinator adds a
  uniform random mask, each site adds its value, the coordinator unmasks.
  One message per site, zero modular exponentiation. Secure against a single
  honest-but-curious site (colluding neighbours can cancel a site out —
  that is the toolkit's stated limitation, tested explicitly).
* :func:`paillier_secure_sum` — each site encrypts under the querier's
  Paillier key, an untrusted aggregator multiplies ciphertexts, the querier
  decrypts once. Collusion-resistant without a ring, but each site pays HE.

``paillier_secure_sum(..., workers=k)`` switches the collection phase to
the sharded batched path of :mod:`repro.globalq.parallel`: shards of sites
encrypt through seeded blinding-factor pools (amortizing the ``r^n mod n²``
cost) and each shard folds its ciphertexts into one partial homomorphic
aggregate that the SSI merges — the E23 scaling configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.paillier import PaillierPrivateKey, PaillierPublicKey
from repro.globalq.parallel import (
    DEFAULT_SHARD_SIZE,
    WorkerPool,
    collect_encrypted_sum,
)
from repro.smc.parties import Channel, CryptoOps

DEFAULT_MODULUS = 1 << 64


@dataclass
class SumResult:
    """Protocol outcome plus its cost profile."""

    total: int
    crypto: CryptoOps


def ring_secure_sum(
    values: list[int],
    channel: Channel,
    rng: random.Random,
    modulus: int = DEFAULT_MODULUS,
) -> SumResult:
    """[CKV+02] masked ring sum of one value per site."""
    if not values:
        raise ValueError("no sites")
    if any(value < 0 or value >= modulus for value in values):
        raise ValueError("site values must lie in [0, modulus)")
    mask = rng.randrange(modulus)
    running = (mask + values[0]) % modulus
    for site in range(1, len(values)):
        running = channel.send(f"site-{site - 1}", f"site-{site}", running)
        running = (running + values[site]) % modulus
    running = channel.send(f"site-{len(values) - 1}", "site-0", running)
    return SumResult(total=(running - mask) % modulus, crypto=CryptoOps())


def collude_against_site(
    values: list[int],
    target: int,
    modulus: int = DEFAULT_MODULUS,
) -> int:
    """What the target's ring neighbours learn by colluding.

    Site ``target-1`` saw the running total before the target; site
    ``target+1`` received it after. Their difference is exactly the
    target's private value — the toolkit's honest-majority caveat.
    """
    if not 0 < target < len(values) - 1:
        raise ValueError("target needs both ring neighbours")
    before = sum(values[: target]) % modulus  # mask cancels in the difference
    after = sum(values[: target + 1]) % modulus
    return (after - before) % modulus


def paillier_secure_sum(
    values: list[int],
    public: PaillierPublicKey,
    private: PaillierPrivateKey,
    channel: Channel,
    rng: random.Random | None = None,
    workers: int | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    base_seed: int = 0,
    pool: WorkerPool | None = None,
) -> SumResult:
    """HE sum through an untrusted aggregator (no ring, no collusion issue).

    ``workers=None`` is the scalar path: one full ``r^n mod n²`` per site.
    An integer routes collection through sharded batched encryption
    (``workers=1`` serial shards, ``>1`` a process pool); each shard ships
    one partial homomorphic aggregate, merged by the untrusted SSI. The
    decrypted total is exact on both paths. ``pool`` reuses a persistent
    :class:`~repro.globalq.parallel.WorkerPool` across calls instead of
    spawning workers per sum.
    """
    if not values:
        raise ValueError("no sites")
    crypto = CryptoOps()
    if workers is None and pool is not None:
        workers = pool.workers
    if workers is None:
        if rng is None:
            raise ValueError("the scalar path needs an rng")
        ciphertexts = []
        for site, value in enumerate(values):
            ciphertext = public.encrypt(value, rng)
            crypto.modexps += 1  # r^n mod n^2 dominates each encryption
            ciphertexts.append(
                channel.send(f"site-{site}", "aggregator", ciphertext)
            )
        combined = ciphertexts[0]
        for ciphertext in ciphertexts[1:]:
            combined = public.add(combined, ciphertext)
    else:
        shards = collect_encrypted_sum(
            values, public, workers=workers, shard_size=shard_size,
            base_seed=base_seed, pool=pool,
        )
        combined = 1
        for shard in shards:
            crypto.modexps += shard.modexps
            # Per-site traffic reached the shard aggregator as ciphertexts;
            # the partial homomorphic aggregates then converge on the SSI.
            first_site = shard.shard_index * shard_size
            for offset, size in enumerate(shard.ciphertext_bytes):
                channel.stats.record(
                    f"site-{first_site + offset}",
                    f"shard-{shard.shard_index}",
                    size,
                )
            channel.send(f"shard-{shard.shard_index}", "ssi", shard.partial)
            combined = public.add(combined, shard.partial)
    channel.send("aggregator" if workers is None else "ssi", "querier", combined)
    crypto.modexps += 1  # the single decryption
    return SumResult(total=private.decrypt(combined), crypto=crypto)
