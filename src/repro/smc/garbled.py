"""Garbled circuits ([Yao86]) with token-assisted oblivious transfer.

Part III's "SMC Using Tokens" slide: *"use cheap secure hardware to obtain
substantial complexity-class gains with SMC algorithms"* ([JKSS10],
[Katz07]). This module makes that gain measurable:

* a generic **garbled circuit** engine — wire labels, point-and-permute
  garbled tables, PRF-based entry encryption — evaluating any boolean
  circuit with *symmetric* crypto only;
* a **token-assisted OT**: instead of public-key oblivious transfer, a
  tamper-proof token (trusted by both parties, as in the PDS fleet) hands
  the evaluator the label of her choice bit without revealing the bit to
  the garbler or the other label to the evaluator;
* a ripple **comparator circuit**, so the millionaires' problem costs
  O(bits) symmetric operations — against the O(2^bits) RSA decryptions of
  the 1982 protocol benchmarked in E7.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.smc.parties import Channel, CryptoOps

_LABEL_BYTES = 16

# Gate truth tables: (a, b) -> output bit.
GATE_TABLES = {
    "AND": {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1},
    "OR": {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1},
    "XOR": {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0},
    "NAND": {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0},
    "XNOR": {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1},
    "ANDNOT": {(0, 0): 0, (0, 1): 0, (1, 0): 1, (1, 1): 0},  # a AND (NOT b)
    "MUX_HELPER": {},  # placeholder to keep table keys explicit
}
del GATE_TABLES["MUX_HELPER"]


@dataclass(frozen=True)
class Gate:
    """One two-input boolean gate: ``out = op(a, b)``."""

    op: str
    input_a: int
    input_b: int
    output: int

    def __post_init__(self) -> None:
        if self.op not in GATE_TABLES:
            raise ProtocolError(f"unknown gate op {self.op!r}")


@dataclass
class Circuit:
    """A boolean circuit over numbered wires.

    ``alice_inputs``/``bob_inputs`` list the wires each party feeds;
    gates must be topologically ordered; ``outputs`` are revealed wires.
    """

    alice_inputs: list[int]
    bob_inputs: list[int]
    gates: list[Gate]
    outputs: list[int]

    @property
    def num_wires(self) -> int:
        wires = set(self.alice_inputs) | set(self.bob_inputs)
        for gate in self.gates:
            wires.update((gate.input_a, gate.input_b, gate.output))
        return max(wires) + 1 if wires else 0

    def evaluate_plain(self, alice_bits: list[int], bob_bits: list[int]) -> list[int]:
        """Cleartext evaluation (the correctness oracle for tests)."""
        values: dict[int, int] = {}
        values.update(zip(self.alice_inputs, alice_bits))
        values.update(zip(self.bob_inputs, bob_bits))
        for gate in self.gates:
            values[gate.output] = GATE_TABLES[gate.op][
                (values[gate.input_a], values[gate.input_b])
            ]
        return [values[wire] for wire in self.outputs]


def _encrypt_entry(
    label_a: bytes, label_b: bytes, gate_id: int, payload: bytes
) -> bytes:
    pad = hashlib.sha256(
        label_a + label_b + gate_id.to_bytes(4, "little")
    ).digest()[: len(payload)]
    return bytes(x ^ y for x, y in zip(payload, pad))


class GarbledCircuit:
    """The garbler's output: tables + input-label maps."""

    def __init__(
        self,
        circuit: Circuit,
        tables: list[list[bytes]],
        wire_labels: dict[int, tuple[bytes, bytes]],
        output_maps: dict[int, dict[bytes, int]],
    ) -> None:
        self.circuit = circuit
        self.tables = tables
        self.wire_labels = wire_labels  # garbler-private!
        self.output_maps = output_maps

    def size_bytes(self) -> int:
        return sum(
            len(entry) for table in self.tables for entry in table
        )


def garble(circuit: Circuit, rng: random.Random, crypto: CryptoOps) -> GarbledCircuit:
    """Garble ``circuit``: labels with select bits + permuted tables."""
    labels: dict[int, tuple[bytes, bytes]] = {}
    select: dict[int, int] = {}

    def fresh_wire(wire: int) -> None:
        zero = rng.getrandbits(8 * _LABEL_BYTES).to_bytes(_LABEL_BYTES, "little")
        one = rng.getrandbits(8 * _LABEL_BYTES).to_bytes(_LABEL_BYTES, "little")
        labels[wire] = (zero, one)
        select[wire] = rng.randrange(2)  # select bit of the 0-label

    for wire in circuit.alice_inputs + circuit.bob_inputs:
        fresh_wire(wire)

    tables: list[list[bytes]] = []
    for gate_id, gate in enumerate(circuit.gates):
        if gate.output not in labels:
            fresh_wire(gate.output)
        table: list[bytes | None] = [None] * 4
        for bit_a in (0, 1):
            for bit_b in (0, 1):
                out_bit = GATE_TABLES[gate.op][(bit_a, bit_b)]
                label_a = labels[gate.input_a][bit_a]
                label_b = labels[gate.input_b][bit_b]
                out_label = labels[gate.output][out_bit]
                out_select = select[gate.output] ^ out_bit
                payload = out_label + bytes([out_select])
                position = (
                    (select[gate.input_a] ^ bit_a) * 2
                    + (select[gate.input_b] ^ bit_b)
                )
                table[position] = _encrypt_entry(
                    label_a, label_b, gate_id, payload
                )
                crypto.symmetric_ops += 1
        tables.append(list(table))  # type: ignore[arg-type]

    output_maps = {
        wire: {labels[wire][0]: 0, labels[wire][1]: 1}
        for wire in circuit.outputs
    }
    garbled = GarbledCircuit(circuit, tables, labels, output_maps)
    # Attach select bits for input-label handout and evaluation.
    garbled._select = select  # type: ignore[attr-defined]
    return garbled


def evaluate(
    garbled: GarbledCircuit,
    input_labels: dict[int, tuple[bytes, int]],
    crypto: CryptoOps,
) -> dict[int, int]:
    """Evaluate with one ``(label, select_bit)`` per input wire."""
    current: dict[int, tuple[bytes, int]] = dict(input_labels)
    for gate_id, gate in enumerate(garbled.circuit.gates):
        label_a, select_a = current[gate.input_a]
        label_b, select_b = current[gate.input_b]
        entry = garbled.tables[gate_id][select_a * 2 + select_b]
        payload = _encrypt_entry(label_a, label_b, gate_id, entry)
        crypto.symmetric_ops += 1
        current[gate.output] = (
            payload[:_LABEL_BYTES],
            payload[_LABEL_BYTES],
        )
    results: dict[int, int] = {}
    for wire in garbled.circuit.outputs:
        label, _ = current[wire]
        mapping = garbled.output_maps[wire]
        if label not in mapping:
            raise ProtocolError(f"unmapped output label on wire {wire}")
        results[wire] = mapping[label]
    return results


class TokenAssistedOT:
    """Oblivious transfer through a tamper-proof token ([Katz07]-style).

    The garbler loads both labels of a wire into the token; the evaluator
    submits her choice bit; the token returns exactly one label. Neither
    party learns the other's secret, and the cost is symmetric-only — the
    tutorial's point about hardware changing the complexity class.
    """

    def __init__(self, channel: Channel, crypto: CryptoOps) -> None:
        self.channel = channel
        self.crypto = crypto
        self.transfers = 0

    def transfer(
        self,
        wire: int,
        label_zero: bytes,
        label_one: bytes,
        choice: int,
        select_zero: int,
    ) -> tuple[bytes, int]:
        if choice not in (0, 1):
            raise ProtocolError("choice bit must be 0 or 1")
        self.channel.send("garbler", "token", label_zero + label_one)
        self.channel.send("evaluator", "token", choice)
        chosen = label_one if choice else label_zero
        self.channel.send("token", "evaluator", chosen)
        self.crypto.symmetric_ops += 1  # token-side authenticated handling
        self.transfers += 1
        return chosen, select_zero ^ choice


# ----------------------------------------------------------------------
# The comparator circuit: a >= b over n-bit integers.
# ----------------------------------------------------------------------
def comparator_circuit(bits: int) -> Circuit:
    """Build the ripple comparator: output 1 iff ``a >= b``.

    Processing from most-significant bit down, two running wires::

        eq_run_i = eq_run_{i-1} AND (a_i XNOR b_i)     # still tied
        gt_acc_i = gt_acc_{i-1} OR (eq_run_{i-1} AND (a_i AND NOT b_i))

    (a strictly-greater bit only counts while the prefix is tied; once a
    strictly-less prefix exists, ``eq_run`` is 0 and nothing can flip the
    outcome). Final output: ``gt_acc OR eq_run``.
    """
    if bits < 1:
        raise ProtocolError("comparator needs at least one bit")
    alice = list(range(bits))  # a, most significant first
    bob = list(range(bits, 2 * bits))
    next_wire = 2 * bits
    gates: list[Gate] = []

    def new_wire() -> int:
        nonlocal next_wire
        next_wire += 1
        return next_wire - 1

    # Top bit seeds the running wires directly.
    gt_acc = new_wire()
    gates.append(Gate("ANDNOT", alice[0], bob[0], gt_acc))
    eq_run = new_wire()
    gates.append(Gate("XNOR", alice[0], bob[0], eq_run))

    for position in range(1, bits):
        gt_here = new_wire()
        gates.append(Gate("ANDNOT", alice[position], bob[position], gt_here))
        eq_here = new_wire()
        gates.append(Gate("XNOR", alice[position], bob[position], eq_here))
        gt_while_tied = new_wire()
        gates.append(Gate("AND", eq_run, gt_here, gt_while_tied))
        new_gt_acc = new_wire()
        gates.append(Gate("OR", gt_acc, gt_while_tied, new_gt_acc))
        gt_acc = new_gt_acc
        new_eq_run = new_wire()
        gates.append(Gate("AND", eq_run, eq_here, new_eq_run))
        eq_run = new_eq_run

    ge = new_wire()
    gates.append(Gate("OR", gt_acc, eq_run, ge))
    return Circuit(alice_inputs=alice, bob_inputs=bob, gates=gates, outputs=[ge])


def _to_bits(value: int, bits: int) -> list[int]:
    return [(value >> (bits - 1 - i)) & 1 for i in range(bits)]


@dataclass
class GarbledComparisonResult:
    """Outcome of one garbled-circuit millionaires run."""

    alice_at_least_bob: bool
    gates: int
    crypto: CryptoOps
    table_bytes: int
    ot_transfers: int


def garbled_millionaires(
    alice_value: int,
    bob_value: int,
    bits: int,
    channel: Channel,
    rng: random.Random,
) -> GarbledComparisonResult:
    """The millionaires' problem in O(bits) symmetric work ([Yao86]).

    Alice garbles the comparator and sends tables + her input labels; Bob
    obtains his labels through the token-assisted OT and evaluates.
    """
    limit = 1 << bits
    if not (0 <= alice_value < limit and 0 <= bob_value < limit):
        raise ProtocolError(f"values must fit in {bits} bits")
    crypto = CryptoOps()
    circuit = comparator_circuit(bits)
    garbled = garble(circuit, rng, crypto)
    select = garbled._select  # type: ignore[attr-defined]

    channel.send(
        "garbler", "evaluator",
        b"".join(entry for table in garbled.tables for entry in table),
    )

    inputs: dict[int, tuple[bytes, int]] = {}
    for wire, bit in zip(circuit.alice_inputs, _to_bits(alice_value, bits)):
        label = garbled.wire_labels[wire][bit]
        channel.send("garbler", "evaluator", label)
        inputs[wire] = (label, select[wire] ^ bit)

    ot = TokenAssistedOT(channel, crypto)
    for wire, bit in zip(circuit.bob_inputs, _to_bits(bob_value, bits)):
        zero, one = garbled.wire_labels[wire]
        inputs[wire] = ot.transfer(wire, zero, one, bit, select[wire])

    outputs = evaluate(garbled, inputs, crypto)
    result = bool(outputs[circuit.outputs[0]])
    channel.send("evaluator", "garbler", result)
    return GarbledComparisonResult(
        alice_at_least_bob=result,
        gates=len(circuit.gates),
        crypto=crypto,
        table_bytes=garbled.size_bytes(),
        ot_transfers=ot.transfers,
    )
