"""Yao's millionaires' protocol (FOCS 1982) — the cost-of-genericity exhibit.

The tutorial's Part III dismisses fully generic SMC because even the
founding example scales with the *size of the values compared*: Alice must
perform one RSA decryption per possible value of the domain. We implement
the original protocol faithfully so the E7 bench can plot exactly that.

Setting: Alice's wealth ``i`` and Bob's wealth ``j`` both lie in
``1..domain``. Outcome: both learn whether ``i >= j`` and nothing else
(under honest-but-curious behaviour and idealized primitives).

Protocol:

1. Alice owns an RSA key pair; Bob knows the public key.
2. Bob picks random ``x``, sends ``m = E(x) - j + 1``.
3. Alice computes ``y_u = D(m + u - 1)`` for every ``u`` in ``1..domain``
   (**domain decryptions** — the exponential bottleneck).
4. Alice picks a random prime ``p`` and reduces ``z_u = y_u mod p``,
   retrying ``p`` until all ``z_u`` are pairwise distant by at least 2.
5. Alice sends ``p`` and the sequence ``z_1..z_i, z_{i+1}+1..z_domain+1``.
6. Bob looks at entry ``j``: it equals ``x mod p`` iff ``j <= i``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.primes import generate_prime
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.smc.parties import Channel, CryptoOps


@dataclass
class MillionaireResult:
    """Outcome and cost of one protocol run."""

    alice_at_least_bob: bool
    decryptions: int
    crypto: CryptoOps
    prime_retries: int


def _distinct_and_separated(values: list[int], p: int) -> bool:
    """All values pairwise different and never adjacent (mod p)."""
    seen = set()
    for value in values:
        if value in seen or (value + 1) % p in seen or (value - 1) % p in seen:
            return False
        seen.add(value)
    return True


def millionaires(
    alice_value: int,
    bob_value: int,
    domain: int,
    channel: Channel,
    rng: random.Random,
    keypair: tuple[RsaPublicKey, RsaPrivateKey] | None = None,
    rsa_bits: int = 256,
) -> MillionaireResult:
    """Run the 1982 protocol; returns whether Alice >= Bob, plus costs."""
    if not (1 <= alice_value <= domain and 1 <= bob_value <= domain):
        raise ValueError(f"values must lie in 1..{domain}")
    public, private = keypair or generate_keypair(rsa_bits, rng)
    crypto = CryptoOps()

    # Bob: random x, send E(x) - j + 1.
    x = rng.randrange(2, public.n // 2)
    c = public.encrypt(x)
    crypto.modexps += 1
    m = channel.send("bob", "alice", c - bob_value + 1)

    # Alice: one decryption per domain value — the exhibit.
    ys = []
    for u in range(1, domain + 1):
        ys.append(private.decrypt((m + u - 1) % public.n))
        crypto.modexps += 1

    # Alice: random prime reduction until the z sequence is unambiguous.
    retries = 0
    while True:
        p = generate_prime(max(16, domain.bit_length() + 10), rng)
        zs = [y % p for y in ys]
        if _distinct_and_separated(zs, p):
            break
        retries += 1
        if retries > 500:
            raise RuntimeError("could not find a separating prime")
    announced = [
        zs[u] if u < alice_value else (zs[u] + 1) % p for u in range(domain)
    ]
    channel.send("alice", "bob", [p] + announced)

    # Bob: compare his entry against x mod p.
    alice_at_least_bob = announced[bob_value - 1] == x % p
    channel.send("bob", "alice", alice_at_least_bob)
    return MillionaireResult(
        alice_at_least_bob=alice_at_least_bob,
        decryptions=domain,
        crypto=crypto,
        prime_retries=retries,
    )
