"""Experiment harness: runs parameter sweeps and prints paper-style tables.

Every bench in ``benchmarks/`` builds an :class:`Experiment` (a named sweep
producing rows of measurements) and prints it through :func:`render_table`,
so EXPERIMENTS.md can quote the output verbatim. Keeping the formatting here
means all eleven experiments report the same way.

Passing ``--json`` on the command line (or setting ``BENCH_JSON=1``) makes
:func:`run_and_print` additionally write each experiment as
``BENCH_<id>.json`` — machine-readable rows for plotting and regression
tracking — into ``BENCH_JSON_DIR`` (default: the current directory).
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable


@dataclass
class Experiment:
    """One experiment: an id, a claim under test, and measured rows.

    ``meta`` carries experiment-level measurements that are not per-row —
    cache statistics, flash-IO deltas, cost-model constants — and is
    emitted verbatim in the ``BENCH_<id>.json`` schema for regression
    tracking.
    """

    experiment_id: str
    title: str
    claim: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(experiment: Experiment) -> str:
    """Monospace table with the experiment header, ready to print."""
    cells = [[_format_cell(value) for value in row] for row in experiment.rows]
    widths = [
        max(len(column), *(len(row[i]) for row in cells)) if cells else len(column)
        for i, column in enumerate(experiment.columns)
    ]
    lines = [
        f"== {experiment.experiment_id}: {experiment.title} ==",
        f"claim: {experiment.claim}",
        "  ".join(
            column.ljust(width)
            for column, width in zip(experiment.columns, widths)
        ),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def experiment_dict(experiment: Experiment) -> dict:
    """JSON-ready representation of one experiment."""
    return {
        "experiment_id": experiment.experiment_id,
        "title": experiment.title,
        "claim": experiment.claim,
        "columns": list(experiment.columns),
        "rows": [list(row) for row in experiment.rows],
        "meta": dict(experiment.meta),
    }


def json_requested() -> bool:
    """``--json`` on the command line, or ``BENCH_JSON`` in the env."""
    return "--json" in sys.argv or bool(os.environ.get("BENCH_JSON"))


def profile_requested() -> bool:
    """``--profile`` on the command line, or ``BENCH_PROFILE`` in the env.

    When set, benches that support profiling run one representative
    workload under :func:`repro.obs.profile` and attach the result via
    :func:`attach_profile` — a metrics snapshot lands in
    ``BENCH_<id>.json`` and the trace files next to it.
    """
    return "--profile" in sys.argv or bool(os.environ.get("BENCH_PROFILE"))


def attach_profile(experiment: Experiment, result, directory=None) -> dict:
    """Embed a :class:`repro.obs.ProfileResult` into ``experiment.meta``
    and write its trace artifacts (Chrome ``TRACE_<id>.json`` + JSONL).

    Returns ``{"chrome": path, "jsonl": path}``.
    """
    experiment.meta["profile"] = result.to_meta()
    target = Path(directory or os.environ.get("BENCH_JSON_DIR") or ".")
    paths = result.write(target, stem=experiment.experiment_id)
    experiment.meta["profile"]["artifacts"] = {
        kind: str(path) for kind, path in paths.items()
    }
    return paths


def record_wall_clock(
    experiment: Experiment, phase: str, seconds: float
) -> None:
    """Record measured wall-clock seconds of one phase in ``meta``.

    Simulated costs stay the headline numbers; real seconds ride along
    under ``meta["wall_clock_s"]`` so crypto-bound phases (where the cost
    *is* CPU time, not flash IO) can be regression-tracked across PRs.
    """
    experiment.meta.setdefault("wall_clock_s", {})[phase] = round(seconds, 6)


def smoke_mode() -> bool:
    """``BENCH_SMOKE`` in the env: run benches at tiny sizes (CI rot check).

    Smoke runs only prove the bench still executes end to end; performance
    assertions that need realistic sizes should be skipped under it.
    """
    return bool(os.environ.get("BENCH_SMOKE"))


def scaled(full: int, smoke: int) -> int:
    """Pick the full-size or smoke-size parameter for the current mode."""
    return smoke if smoke_mode() else full


def write_json(experiment: Experiment, directory: str | None = None) -> Path:
    """Write ``BENCH_<id>.json`` and return its path."""
    target = Path(directory or os.environ.get("BENCH_JSON_DIR") or ".")
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{experiment.experiment_id}.json"
    path.write_text(json.dumps(experiment_dict(experiment), indent=2) + "\n")
    return path


def run_and_print(build: Callable[[], Experiment]) -> Experiment:
    """Build an experiment and print its table (bench entry point)."""
    experiment = build()
    print()
    print(render_table(experiment))
    if json_requested():
        path = write_json(experiment)
        print(f"json: {path}")
    return experiment
