"""Shared benchmark harness (see ``benchmarks/`` for the experiments)."""

from repro.bench.harness import (
    Experiment,
    render_table,
    run_and_print,
    scaled,
    smoke_mode,
)

__all__ = ["Experiment", "render_table", "run_and_print", "scaled", "smoke_mode"]
