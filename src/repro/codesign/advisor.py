"""Hardware advisor: pick (or validate) a token profile for a workload.

The second half of the co-design question — *"how to adapt to dynamic
variations of the HW parameters?"* — is answered operationally: given less
RAM, the advisor re-plans (larger reorganizations switch to multi-pass,
query width gets capped) instead of failing, and reports the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codesign import models
from repro.codesign.models import WorkloadSpec
from repro.hardware.profiles import ALL_PROFILES, HardwareProfile


@dataclass
class Recommendation:
    """Advisor output for one (workload, profile) pairing."""

    profile_name: str
    ram_bytes: int
    required_ram: int
    fits: bool
    reorg_passes: int
    max_keywords_supported: int
    notes: list[str]


def evaluate_profile(spec: WorkloadSpec, profile: HardwareProfile) -> Recommendation:
    """How well ``profile`` serves ``spec`` — with degradations, not failure."""
    notes: list[str] = []
    resident = models.resident_overhead(spec)
    available = profile.ram_bytes - resident

    required = models.required_ram(spec)
    fits = required <= profile.ram_bytes

    # Dynamic adaptation 1: reorganization falls back to multi-pass merges
    # when the single-pass sort buffer does not fit.
    single_pass = models.reorg_min_single_pass_buffer(spec)
    if single_pass <= available:
        passes = 0
    else:
        buffer = max(2 * spec.page_size, available)
        passes = models.reorg_passes(spec, buffer)
        notes.append(
            f"reorg degrades to {passes} extra merge pass(es) "
            f"(single-pass needs {single_pass} B)"
        )

    # Dynamic adaptation 2: cap query width to what the RAM affords.
    searchable = (available - spec.top_n * models.HEAP_ENTRY_BYTES) // max(
        1, spec.page_size
    )
    max_keywords = max(0, min(spec.max_query_keywords, searchable))
    if max_keywords < spec.max_query_keywords:
        notes.append(
            f"query width capped at {max_keywords} keywords "
            f"(wanted {spec.max_query_keywords})"
        )

    return Recommendation(
        profile_name=profile.name,
        ram_bytes=profile.ram_bytes,
        required_ram=required,
        fits=fits,
        reorg_passes=passes,
        max_keywords_supported=max_keywords,
        notes=notes,
    )


def recommend(spec: WorkloadSpec) -> list[Recommendation]:
    """Evaluate every known profile, cheapest-RAM first."""
    profiles = sorted(
        (factory() for factory in ALL_PROFILES.values()),
        key=lambda profile: profile.ram_bytes,
    )
    return [evaluate_profile(spec, profile) for profile in profiles]


def smallest_fitting_profile(spec: WorkloadSpec) -> Recommendation | None:
    """The cheapest profile that runs the workload without degradation."""
    for recommendation in recommend(spec):
        if recommendation.fits and not recommendation.notes:
            return recommendation
    return None
