"""Analytic RAM models for the token's data-oriented treatments.

Part II closes on an open problem: *"a general co-design approach is still
missing — how to calibrate the HW (RAM) to data-oriented treatments?"*.
This package is a concrete take on it: closed-form RAM requirements for
each engine operation, validated against the simulator's measured
high-water marks (the tests fail if the models drift from the code).

All models return **bytes of working RAM** beyond the structures' resident
state (bucket directories, write buffers), which callers account separately
via :func:`resident_overhead`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Bytes charged per entry of the search top-N heap (matches engine.py).
HEAP_ENTRY_BYTES = 16


@dataclass(frozen=True)
class WorkloadSpec:
    """The knobs of a token workload that drive RAM sizing."""

    page_size: int = 2048
    max_query_keywords: int = 4
    top_n: int = 10
    max_tselect_streams: int = 2
    index_entries: int = 50_000
    index_entry_bytes: int = 18
    search_buckets: int = 64
    reorg_single_pass: bool = True


def search_ram(spec: WorkloadSpec) -> int:
    """Pipelined search: one page per keyword + the bounded result heap."""
    return (
        spec.max_query_keywords * spec.page_size
        + spec.top_n * HEAP_ENTRY_BYTES
    )


def spj_ram(spec: WorkloadSpec) -> int:
    """Pipelined SPJ: one page per Tselect stream + one joined-row buffer."""
    return (spec.max_tselect_streams + 1) * spec.page_size


def reorg_runs(spec: WorkloadSpec, sort_buffer: int) -> int:
    """Number of sorted runs a given sort buffer produces."""
    total = spec.index_entries * spec.index_entry_bytes
    return max(1, math.ceil(total / sort_buffer))


def reorg_passes(spec: WorkloadSpec, sort_buffer: int) -> int:
    """Merge passes (beyond the final one) for a given sort buffer.

    Fan-in is one page of RAM per run: ``sort_buffer // page_size``
    (minimum 2, as in :class:`ReorganizationTask`).
    """
    fan_in = max(2, sort_buffer // spec.page_size)
    runs = reorg_runs(spec, sort_buffer)
    passes = 0
    while runs > fan_in:
        runs = math.ceil(runs / fan_in)
        passes += 1
    return passes


def reorg_min_single_pass_buffer(spec: WorkloadSpec) -> int:
    """Smallest sort buffer that merges all runs in the final pass alone.

    Needs ``runs(b) <= fan_in(b)``; with ``b = k * page``, runs ≈ total/b
    and fan_in = k, so ``k >= sqrt(total / page)`` — the classic external-
    sort square-root law, rounded up to whole pages.
    """
    total = spec.index_entries * spec.index_entry_bytes
    pages = math.ceil(math.sqrt(total / spec.page_size))
    while True:
        buffer = pages * spec.page_size
        if reorg_passes(spec, buffer) == 0:
            return buffer
        pages += 1


def reorg_ram(spec: WorkloadSpec, sort_buffer: int | None = None) -> int:
    """Reorganization working RAM: the sort buffer (merge reuses it)."""
    if sort_buffer is not None:
        return sort_buffer
    if spec.reorg_single_pass:
        return reorg_min_single_pass_buffer(spec)
    return 2 * spec.page_size  # minimum viable buffer (multi-pass)


def resident_overhead(spec: WorkloadSpec) -> int:
    """RAM held permanently by engine-resident structures.

    The search engine's bucket directory + staging page (see
    ChainedBucketLog) is the dominant resident cost on a data-heavy token.
    """
    return 4 * spec.search_buckets + spec.page_size


def required_ram(spec: WorkloadSpec) -> int:
    """Peak RAM the workload needs: resident + the largest single operation."""
    return resident_overhead(spec) + max(
        search_ram(spec), spj_ram(spec), reorg_ram(spec)
    )
