"""HW/SW co-design calibration (Part II's stated open problem).

Closed-form RAM models per engine operation, validated against the
simulator, plus an advisor that picks the cheapest viable hardware profile
and degrades gracefully (multi-pass reorg, capped query width) when RAM
shrinks.
"""

from repro.codesign.advisor import (
    Recommendation,
    evaluate_profile,
    recommend,
    smallest_fitting_profile,
)
from repro.codesign.models import (
    WorkloadSpec,
    reorg_min_single_pass_buffer,
    reorg_passes,
    reorg_ram,
    reorg_runs,
    required_ram,
    resident_overhead,
    search_ram,
    spj_ram,
)

__all__ = [
    "Recommendation",
    "WorkloadSpec",
    "evaluate_profile",
    "recommend",
    "reorg_min_single_pass_buffer",
    "reorg_passes",
    "reorg_ram",
    "reorg_runs",
    "required_ram",
    "resident_overhead",
    "search_ram",
    "smallest_fitting_profile",
    "spj_ram",
]
