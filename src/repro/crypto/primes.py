"""Prime generation and primality testing for the homomorphic schemes.

Pure-Python Miller–Rabin: deterministic witness sets for 64-bit inputs,
randomized rounds above. Key sizes in this repository are simulation-scale
(256–1024 bit), chosen so protocol benchmarks run in seconds; the asymptotic
cost *shape* (modexp ∝ bit-length³) is what Part III's comparisons need, and
it is preserved at any size.
"""

from __future__ import annotations

import math
import random

#: Deterministic Miller–Rabin witnesses valid for all n < 3.3e24.
_SMALL_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = [
    p
    for p in range(2, 1000)
    if all(p % q for q in range(2, int(math.isqrt(p)) + 1))
]


def is_prime(n: int, rng: random.Random | None = None, rounds: int = 40) -> bool:
    """Miller–Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness_passes(a: int) -> bool:
        x = pow(a, d, n)
        if x in (1, n - 1):
            return True
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                return True
        return False

    if n < 3_317_044_064_679_887_385_961_981:
        return all(witness_passes(a % n or 2) for a in _SMALL_WITNESSES)
    rng = rng or random.Random(n)  # deterministic fallback keyed on n
    return all(
        witness_passes(rng.randrange(2, n - 1)) for _ in range(rounds)
    )


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random prime of exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("need at least 2 bits for a prime")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate, rng):
            return candidate


def generate_safe_prime(bits: int, rng: random.Random) -> int:
    """A safe prime p = 2q + 1 (both prime), for commutative ciphers."""
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if is_prime(p, rng):
            return p


def lcm(a: int, b: int) -> int:
    return a // math.gcd(a, b) * b


def modinv(a: int, modulus: int) -> int:
    """Modular inverse via Python's native pow (exists iff gcd == 1)."""
    return pow(a, -1, modulus)
