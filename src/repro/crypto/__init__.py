"""Cryptographic substrate for Part III's protocols.

Everything here is **simulation-grade**, pure-Python crypto whose *semantic
properties* (additive/multiplicative homomorphism, deterministic vs
non-deterministic symmetric encryption, information-theoretic sharing) match
what the tutorial's protocols require. Key sizes are scaled for laptop-speed
experiments; none of this is audited for production use.
"""

from repro.crypto.elgamal import ElGamalPrivateKey, ElGamalPublicKey
from repro.crypto.elgamal import generate_keypair as generate_elgamal_keypair
from repro.crypto.fastexp import BlindingPool, FixedBaseExp, count_modexp
from repro.crypto.paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
)
from repro.crypto.paillier import generate_keypair as generate_paillier_keypair
from repro.crypto.primes import (
    generate_prime,
    generate_safe_prime,
    is_prime,
    lcm,
    modinv,
)
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.rsa import generate_keypair as generate_rsa_keypair
from repro.crypto.sharing import (
    DEFAULT_MODULUS,
    reconstruct,
    reconstruct_signed,
    split,
)
from repro.crypto.symmetric import DeterministicCipher, NondeterministicCipher

__all__ = [
    "BlindingPool",
    "DEFAULT_MODULUS",
    "DeterministicCipher",
    "FixedBaseExp",
    "count_modexp",
    "ElGamalPrivateKey",
    "ElGamalPublicKey",
    "generate_elgamal_keypair",
    "NondeterministicCipher",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_paillier_keypair",
    "generate_prime",
    "generate_rsa_keypair",
    "generate_safe_prime",
    "is_prime",
    "lcm",
    "modinv",
    "reconstruct",
    "reconstruct_signed",
    "split",
]
