"""Additive secret sharing over Z_m: the cheap alternative to HE.

Splitting a value into ``n`` uniformly random shares that sum to it (mod m)
is the workhorse of the Clifton toolkit's secure sum and of masking inside
the token protocols: shares are information-theoretically hiding and cost no
modular exponentiation — the E7 bench contrasts this with Paillier.
"""

from __future__ import annotations

import random

DEFAULT_MODULUS = 1 << 64


def split(
    value: int,
    num_shares: int,
    rng: random.Random,
    modulus: int = DEFAULT_MODULUS,
) -> list[int]:
    """Split ``value`` into ``num_shares`` additive shares mod ``modulus``."""
    if num_shares < 1:
        raise ValueError("need at least one share")
    if modulus < 2:
        raise ValueError("modulus must be >= 2")
    shares = [rng.randrange(modulus) for _ in range(num_shares - 1)]
    last = (value - sum(shares)) % modulus
    shares.append(last)
    return shares


def reconstruct(shares: list[int], modulus: int = DEFAULT_MODULUS) -> int:
    """Sum the shares back into the secret (mod ``modulus``)."""
    if not shares:
        raise ValueError("no shares to reconstruct from")
    return sum(shares) % modulus


def reconstruct_signed(shares: list[int], modulus: int = DEFAULT_MODULUS) -> int:
    """Reconstruct, mapping the upper half of Z_m to negative values."""
    value = reconstruct(shares, modulus)
    return value - modulus if value > modulus // 2 else value
