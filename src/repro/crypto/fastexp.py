"""Fast modular exponentiation for the Paillier hot path.

The collection phase of every Paillier-backed protocol pays one
``r^n mod n²`` per contribution — a full-width modular exponentiation that
dominates the wall-clock at population scale (bench E23). Two classic
tricks make it cheap without changing ciphertext semantics:

* :class:`FixedBaseExp` — fixed-base **windowed precomputation** (the
  BGMW/Brickell et al. table method): precompute ``g^(2^(w·i)) mod m`` once,
  then any ``g^e`` needs only ~``e.bit_length()/w + 2^w`` modular
  multiplications instead of a full square-and-multiply ladder. Results are
  bit-identical to ``pow(g, e, m)`` (asserted by the test suite).
* :class:`BlindingPool` — a **seeded, pre-generated blinding-factor pool**
  in the style of Boyko–Peinado–Venkatesan: a small stock of independent
  ``r_j^n mod n²`` values is precomputed (through a fixed-base table), and
  each fresh blinding factor is the product of a random stock subset —
  a handful of modular multiplications per ciphertext. Tokens are
  "low-powered but often idle": the stock is exactly the kind of work they
  precompute while charging.

Every full-width exponentiation performed through this module (and through
:mod:`repro.crypto.paillier`) increments the ``crypto.modexp_count``
counter of the global :class:`~repro.obs.metrics.MetricsRegistry`, so
profiles and benches can attribute crypto cost without ad-hoc bookkeeping.
"""

from __future__ import annotations

import random
from collections import deque
from math import gcd

from repro.obs.metrics import global_registry

#: Window width (bits per digit) of the fixed-base tables. Five is the
#: pure-Python sweet spot measured in bench E23: fewer digits means fewer
#: Python-level multiplications, but the bucket pass costs 2^w extra.
DEFAULT_WINDOW = 5

#: Default BPV stock geometry: ``stock_size`` precomputed factors combined
#: ``subset_size`` at a time gives C(32, 8) ≈ 10.5M distinct blindings.
DEFAULT_STOCK_SIZE = 32
DEFAULT_SUBSET_SIZE = 8

#: Factors pregenerated when ``next()`` drains the ready queue. Refreshing
#: in batches amortizes the bookkeeping without changing the factor
#: stream: each refresh draws the same combines, in the same rng order, a
#: serial caller would have drawn one at a time.
DEFAULT_REFRESH_BATCH = 16


def count_modexp(amount: int = 1) -> None:
    """Account ``amount`` full modular exponentiations in the registry."""
    global_registry().counter("crypto.modexp_count").inc(amount)


class FixedBaseExp:
    """Windowed fixed-base exponentiation: many exponents, one base.

    Precomputes ``G[i] = base^(2^(window·i)) mod modulus`` for every digit
    position of an ``exp_bits``-bit exponent (one squaring chain), then
    evaluates ``base^e`` with the bucket method: digits of equal value are
    multiplied together first, so the whole exponentiation costs one
    modular multiplication per non-zero digit plus ``2^window`` for the
    bucket sweep — no squarings at all at evaluation time.
    """

    __slots__ = ("base", "modulus", "window", "table")

    def __init__(
        self,
        base: int,
        modulus: int,
        exp_bits: int,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if modulus <= 1:
            raise ValueError("modulus must be > 1")
        if not 1 <= window <= 16:
            raise ValueError("window must be in [1, 16]")
        if exp_bits < 1:
            raise ValueError("exp_bits must be >= 1")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        positions = (exp_bits + window - 1) // window
        table = [self.base]
        value = self.base
        for _ in range(positions - 1):
            for _ in range(window):
                value = value * value % modulus
            table.append(value)
        self.table = table

    @property
    def capacity_bits(self) -> int:
        """Largest exponent bit-length this table can evaluate."""
        return len(self.table) * self.window

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus``, bit-identical to built-in pow."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        if exponent.bit_length() > self.capacity_bits:
            raise ValueError(
                f"exponent has {exponent.bit_length()} bits; table covers "
                f"{self.capacity_bits}"
            )
        modulus = self.modulus
        mask = (1 << self.window) - 1
        # Bucket pass: buckets[d] = product of G[i] over positions with
        # digit d; then prod(buckets[d]^d) via the descending running
        # product (Brickell et al. 1992).
        buckets: dict[int, int] = {}
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                held = buckets.get(digit)
                entry = self.table[index]
                buckets[digit] = entry if held is None else held * entry % modulus
            exponent >>= self.window
            index += 1
        accumulator = 1
        running = 1
        for digit in range(mask, 0, -1):
            held = buckets.get(digit)
            if held is not None:
                running = running * held % modulus
            accumulator = accumulator * running % modulus
        count_modexp()
        return accumulator % modulus


class BlindingPool:
    """Seeded pool of Paillier blinding factors ``r^n mod n²``.

    The pool derives everything from ``seed``: the same ``(n, seed)`` pair
    always yields the same factor stream, which is what makes sharded
    parallel collection reproducible (each shard owns one pool seeded from
    the shard seed).

    Construction cost: one full ``pow`` for the generator plus
    ``stock_size`` fixed-base evaluations (≈4× cheaper than ``pow`` each).
    Each :meth:`next` afterwards costs ``subset_size - 1`` modular
    multiplications — two orders of magnitude below a scalar encryption.
    """

    def __init__(
        self,
        n: int,
        seed: int,
        stock_size: int = DEFAULT_STOCK_SIZE,
        subset_size: int = DEFAULT_SUBSET_SIZE,
        window: int = DEFAULT_WINDOW,
        refresh_batch: int = DEFAULT_REFRESH_BATCH,
    ) -> None:
        if stock_size < 2:
            raise ValueError("stock_size must be >= 2")
        if not 1 <= subset_size <= stock_size:
            raise ValueError("subset_size must be in [1, stock_size]")
        if refresh_batch < 1:
            raise ValueError("refresh_batch must be >= 1")
        self.n = n
        self.n_squared = n * n
        self.seed = seed
        self.subset_size = subset_size
        self.refresh_batch = refresh_batch
        self._rng = random.Random(seed)
        # r_j = h^(e_j) for a seeded generator h, so every stock entry
        # r_j^n = (h^n)^(e_j) goes through one fixed-base table.
        while True:
            h = self._rng.randrange(2, n)
            if gcd(h, n) == 1:
                break
        h_n = pow(h, n, self.n_squared)
        count_modexp()
        fixed = FixedBaseExp(h_n, self.n_squared, n.bit_length(), window)
        self.stock = [
            fixed.pow(self._rng.randrange(1, n)) for _ in range(stock_size)
        ]
        self._ready: deque[int] = deque()

    def next(self) -> int:
        """One fresh blinding factor (a random stock-subset product).

        A drained ready queue **refreshes** (another ``refresh_batch``
        subset products — stock-combine work, no new exponentiation)
        rather than falling back to slow-path encryption; the
        ``pool.exhausted`` / ``pool.refreshed`` counter pair makes the
        refresh pressure of a sustained delta storm visible in the
        registry. The returned factor stream is identical either way:
        refreshing draws the same combines in the same rng order a serial
        caller would.
        """
        if not self._ready:
            registry = global_registry()
            registry.counter("pool.exhausted").inc()
            self.pregenerate(self.refresh_batch)
            registry.counter("pool.refreshed").inc(self.refresh_batch)
        return self._ready.popleft()

    def _combine(self) -> int:
        indices = self._rng.sample(range(len(self.stock)), self.subset_size)
        factor = self.stock[indices[0]]
        n_squared = self.n_squared
        for index in indices[1:]:
            factor = factor * self.stock[index] % n_squared
        return factor

    def pregenerate(self, count: int) -> None:
        """Fill the ready queue (the token's idle-time precompute phase)."""
        self._ready.extend(self._combine() for _ in range(count))
