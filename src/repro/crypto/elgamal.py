"""ElGamal: the third homomorphic cryptosystem the tutorial names.

The "Homomorphic Encryption Example" slide lists *"RSA, Paillier, ElGamal"*.
ElGamal over a prime-order subgroup is multiplicatively homomorphic —
``E(a) ⊗ E(b) = E(a·b)`` by componentwise multiplication — and unlike raw
RSA it is *probabilistic*: two encryptions of the same plaintext are
unlinkable, which matters whenever ciphertexts transit an honest-but-
curious party. Textbook/simulation grade, like the rest of
:mod:`repro.crypto`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.primes import generate_safe_prime


@dataclass(frozen=True)
class ElGamalPublicKey:
    """Group parameters + the public point ``h = g^x``."""

    p: int  # safe prime: p = 2q + 1
    g: int  # generator of the order-q subgroup
    h: int

    @property
    def q(self) -> int:
        return (self.p - 1) // 2

    def encrypt(self, message: int, rng: random.Random) -> tuple[int, int]:
        """Encrypt a subgroup element (use :meth:`encode` for small ints)."""
        r = rng.randrange(1, self.q)
        return (pow(self.g, r, self.p), (message * pow(self.h, r, self.p)) % self.p)

    def multiply(
        self, a: tuple[int, int], b: tuple[int, int]
    ) -> tuple[int, int]:
        """Homomorphic multiplication: ``E(m1) ⊗ E(m2) = E(m1·m2)``."""
        return ((a[0] * b[0]) % self.p, (a[1] * b[1]) % self.p)

    def encode(self, value: int) -> int:
        """Map a small positive integer into the order-q subgroup.

        Squaring maps any unit into the quadratic-residue subgroup, and is
        injective on ``1..q`` — decode with a (small-domain) inverse table.
        """
        if not 1 <= value <= self.q:
            raise ValueError(f"value must lie in 1..{self.q}")
        return pow(value, 2, self.p)


@dataclass(frozen=True)
class ElGamalPrivateKey:
    public: ElGamalPublicKey
    x: int

    def decrypt(self, ciphertext: tuple[int, int]) -> int:
        c1, c2 = ciphertext
        shared = pow(c1, self.x, self.public.p)
        return (c2 * pow(shared, -1, self.public.p)) % self.public.p


def generate_keypair(
    bits: int = 128, rng: random.Random | None = None
) -> tuple[ElGamalPublicKey, ElGamalPrivateKey]:
    """Key pair over the quadratic-residue subgroup of a safe prime."""
    rng = rng or random.Random()
    p = generate_safe_prime(bits, rng)
    q = (p - 1) // 2
    # Any square generates the order-q subgroup (q prime).
    while True:
        candidate = rng.randrange(2, p - 1)
        g = pow(candidate, 2, p)
        if g != 1:
            break
    x = rng.randrange(1, q)
    public = ElGamalPublicKey(p=p, g=g, h=pow(g, x, p))
    return public, ElGamalPrivateKey(public=public, x=x)
