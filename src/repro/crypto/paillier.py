"""Paillier cryptosystem: the additive homomorphism of Part III.

The tutorial's secure-aggregation discussion leans on additively homomorphic
encryption: ``E(a) * E(b) = E(a + b)`` lets an *untrusted* SSI combine
encrypted partial aggregates without learning anything. This is the textbook
scheme (Paillier 1999) with ``g = n + 1``:

* ``Enc(m, r) = (1 + n)^m * r^n  mod n²`` — non-deterministic by the random
  ``r``, which is exactly the property the secure-aggregation protocol
  family requires of its ciphertexts;
* ``Dec(c) = L(c^λ mod n²) * μ mod n`` with ``L(x) = (x - 1) / n``.

Two performance paths exist on top of the textbook semantics (bench E23):

* :meth:`PaillierPublicKey.encrypt_batch` amortizes the ``r^n mod n²``
  cost across many messages, optionally through a
  :class:`~repro.crypto.fastexp.BlindingPool` of precomputed factors;
* :meth:`PaillierPrivateKey.decrypt` uses CRT (the ``p²``/``q²`` halves)
  whenever the key carries its factors — ~4× cheaper than the plain
  ``λ``-exponentiation, with bit-identical plaintexts
  (:meth:`~PaillierPrivateKey.decrypt_plain` keeps the reference path).

Simulation-grade: keys default to 512 bits and randomness may be seeded for
reproducible experiments. Do not use for real data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property

from repro.crypto.fastexp import BlindingPool, count_modexp
from repro.crypto.primes import generate_prime, lcm, modinv


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public parameters ``(n, n²)``; ``g`` is fixed to ``n + 1``."""

    n: int
    n_squared: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def blinding_pool(
        self, seed: int, **kwargs
    ) -> BlindingPool:
        """A seeded :class:`~repro.crypto.fastexp.BlindingPool` for this key."""
        return BlindingPool(self.n, seed, **kwargs)

    def encrypt(
        self,
        message: int,
        rng: random.Random | None = None,
        pool: BlindingPool | None = None,
    ) -> int:
        """Encrypt ``message`` (mod n) with a fresh random blinding.

        Without a ``pool``, one draw from ``rng`` picks ``r`` uniformly in
        ``[1, n)`` — ``randrange(1, n)`` can never return ``0 mod n``, so a
        single draw suffices — and ``r^n mod n²`` costs one full
        exponentiation. With a ``pool``, the blinding factor comes
        precomputed and the ciphertext costs one modular multiplication.
        """
        m = message % self.n
        if pool is not None:
            r_n = pool.next()
        else:
            if rng is None:
                raise ValueError("encrypt needs an rng when no pool is given")
            r = rng.randrange(1, self.n)
            r_n = pow(r, self.n, self.n_squared)
            count_modexp()
        # (1 + n)^m = 1 + m*n (mod n^2): the standard shortcut.
        g_m = (1 + m * self.n) % self.n_squared
        return (g_m * r_n) % self.n_squared

    def encrypt_batch(
        self,
        messages,
        rng: random.Random | None = None,
        pool: BlindingPool | None = None,
    ) -> list[int]:
        """Encrypt a sequence of messages.

        Without a ``pool`` this is bit-identical to calling :meth:`encrypt`
        in a loop with the same ``rng`` (the regression tests pin this).
        With a ``pool`` each ciphertext consumes one precomputed blinding
        factor, which is what makes collection-phase batching pay.
        """
        n, n_squared = self.n, self.n_squared
        if pool is None:
            if rng is None:
                raise ValueError(
                    "encrypt_batch needs an rng when no pool is given"
                )
            out = []
            for message in messages:
                r = rng.randrange(1, n)
                r_n = pow(r, n, n_squared)
                out.append(((1 + (message % n) * n) * r_n) % n_squared)
            count_modexp(len(out))
            return out
        return [
            ((1 + (message % n) * n) * pool.next()) % n_squared
            for message in messages
        ]

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphic addition: ``E(a) ⊕ E(b) = E(a + b)``."""
        return (ciphertext_a * ciphertext_b) % self.n_squared

    def add_plain(
        self,
        ciphertext: int,
        plaintext: int,
        rng: random.Random | None = None,
    ) -> int:
        """``E(a) ⊕ b = E(a + b)`` without knowing ``a``.

        Multiplying by ``(1 + b·n) mod n²`` — a deterministic encryption of
        ``b`` with blinding ``r = 1`` — is enough: the result inherits the
        original ciphertext's blinding, so no fresh encryption (and no
        ``rng``) is needed. ``rng`` is accepted for call-site compatibility
        with the old full-encryption implementation.
        """
        del rng  # the shortcut needs no randomness
        g_b = (1 + (plaintext % self.n) * self.n) % self.n_squared
        return (ciphertext * g_b) % self.n_squared

    def multiply_plain(self, ciphertext: int, scalar: int) -> int:
        """``E(a)^k = E(k * a)`` — scaling by a public constant."""
        count_modexp()
        return pow(ciphertext, scalar % self.n, self.n_squared)

    def negate(self, ciphertext: int) -> int:
        """``E(a)^-1 = E(-a)`` — the homomorphic retraction.

        The multiplicative inverse mod ``n²`` encrypts ``n - a``, which
        :meth:`PaillierPrivateKey.decrypt_signed` reads back as ``-a`` for
        any ``|a| <= n // 2`` — the identity the delta-maintenance path
        (``Enc(new) · Enc(old)^-1``) rests on. Cheaper than
        :meth:`multiply_plain` by ``n - 1``: one extended-Euclid inverse
        instead of a full-width exponentiation.
        """
        return modinv(ciphertext, self.n_squared)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Decryption key ``(λ, μ)`` bound to its public key.

    When the factors ``p``/``q`` are present (the default for keys made by
    :func:`generate_keypair`), :meth:`decrypt` runs the standard CRT
    optimization: one half-width exponentiation mod ``p²`` and one mod
    ``q²`` instead of a full-width one mod ``n²``. Keys built without
    factors (``p = q = 0``) fall back to the plain path transparently.
    """

    public: PaillierPublicKey
    lam: int
    mu: int
    p: int = 0
    q: int = 0

    @cached_property
    def _crt(self) -> tuple:
        """``(p², q², hp, hq, q_inv)`` for CRT decryption (factors known)."""
        p, q, n = self.p, self.q, self.public.n
        p_squared = p * p
        q_squared = q * q
        # h_p = L_p((1+n)^(p-1) mod p²)^-1 mod p, and symmetrically for q.
        hp = modinv((pow(1 + n, p - 1, p_squared) - 1) // p % p, p)
        hq = modinv((pow(1 + n, q - 1, q_squared) - 1) // q % q, q)
        q_inv = modinv(q % p, p)
        return p_squared, q_squared, hp, hq, q_inv

    def decrypt(self, ciphertext: int) -> int:
        if not self.p or not self.q:
            return self.decrypt_plain(ciphertext)
        p, q = self.p, self.q
        p_squared, q_squared, hp, hq, q_inv = self._crt
        m_p = (pow(ciphertext, p - 1, p_squared) - 1) // p * hp % p
        m_q = (pow(ciphertext, q - 1, q_squared) - 1) // q * hq % q
        count_modexp(2)
        # Garner recombination: the unique m mod n with the two residues.
        return m_q + q * ((m_p - m_q) * q_inv % p)

    def decrypt_plain(self, ciphertext: int) -> int:
        """Reference (non-CRT) decryption: ``L(c^λ mod n²)·μ mod n``."""
        n, n_squared = self.public.n, self.public.n_squared
        x = pow(ciphertext, self.lam, n_squared)
        count_modexp()
        l_of_x = (x - 1) // n
        return (l_of_x * self.mu) % n

    def decrypt_signed(self, ciphertext: int) -> int:
        """Decrypt, mapping the upper half of Z_n to negative values."""
        value = self.decrypt(ciphertext)
        return value - self.public.n if value > self.public.n // 2 else value


def generate_keypair(
    bits: int = 512, rng: random.Random | None = None
) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a key pair with an ``n`` of roughly ``bits`` bits."""
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p != q:
            break
    n = p * q
    public = PaillierPublicKey(n=n, n_squared=n * n)
    lam = lcm(p - 1, q - 1)
    # mu = (L(g^lambda mod n^2))^-1 mod n; with g = n+1, L(...) = lambda mod n.
    mu = modinv(lam % n, n)
    return public, PaillierPrivateKey(public=public, lam=lam, mu=mu, p=p, q=q)
