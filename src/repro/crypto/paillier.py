"""Paillier cryptosystem: the additive homomorphism of Part III.

The tutorial's secure-aggregation discussion leans on additively homomorphic
encryption: ``E(a) * E(b) = E(a + b)`` lets an *untrusted* SSI combine
encrypted partial aggregates without learning anything. This is the textbook
scheme (Paillier 1999) with ``g = n + 1``:

* ``Enc(m, r) = (1 + n)^m * r^n  mod n²`` — non-deterministic by the random
  ``r``, which is exactly the property the secure-aggregation protocol
  family requires of its ciphertexts;
* ``Dec(c) = L(c^λ mod n²) * μ mod n`` with ``L(x) = (x - 1) / n``.

Simulation-grade: keys default to 512 bits and randomness may be seeded for
reproducible experiments. Do not use for real data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.primes import generate_prime, lcm, modinv


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public parameters ``(n, n²)``; ``g`` is fixed to ``n + 1``."""

    n: int
    n_squared: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def encrypt(self, message: int, rng: random.Random) -> int:
        """Encrypt ``message`` (mod n) with a fresh random blinding."""
        m = message % self.n
        while True:
            r = rng.randrange(1, self.n)
            if r % self.n != 0:
                break
        # (1 + n)^m = 1 + m*n (mod n^2): the standard shortcut.
        g_m = (1 + m * self.n) % self.n_squared
        return (g_m * pow(r, self.n, self.n_squared)) % self.n_squared

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphic addition: ``E(a) ⊕ E(b) = E(a + b)``."""
        return (ciphertext_a * ciphertext_b) % self.n_squared

    def add_plain(self, ciphertext: int, plaintext: int, rng: random.Random) -> int:
        """``E(a) ⊕ b = E(a + b)`` without knowing ``a``."""
        return self.add(ciphertext, self.encrypt(plaintext, rng))

    def multiply_plain(self, ciphertext: int, scalar: int) -> int:
        """``E(a)^k = E(k * a)`` — scaling by a public constant."""
        return pow(ciphertext, scalar % self.n, self.n_squared)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Decryption key ``(λ, μ)`` bound to its public key."""

    public: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, ciphertext: int) -> int:
        n, n_squared = self.public.n, self.public.n_squared
        x = pow(ciphertext, self.lam, n_squared)
        l_of_x = (x - 1) // n
        return (l_of_x * self.mu) % n

    def decrypt_signed(self, ciphertext: int) -> int:
        """Decrypt, mapping the upper half of Z_n to negative values."""
        value = self.decrypt(ciphertext)
        return value - self.public.n if value > self.public.n // 2 else value


def generate_keypair(
    bits: int = 512, rng: random.Random | None = None
) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a key pair with an ``n`` of roughly ``bits`` bits."""
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p != q:
            break
    n = p * q
    public = PaillierPublicKey(n=n, n_squared=n * n)
    lam = lcm(p - 1, q - 1)
    # mu = (L(g^lambda mod n^2))^-1 mod n; with g = n+1, L(...) = lambda mod n.
    mu = modinv(lam % n, n)
    return public, PaillierPrivateKey(public=public, lam=lam, mu=mu)
