"""Textbook RSA: the tutorial's *multiplicative* homomorphism example.

The "Homomorphic Encryption Example" slide uses raw RSA to show
``E(p₁) × E(p₂) = E(p₁ × p₂)``. We implement exactly that (no padding —
which is what makes the homomorphism hold, and what makes this strictly a
teaching/simulation artefact). Also used by the Yao'82 millionaire protocol,
which predates padded RSA anyway.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.primes import generate_prime, modinv


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int

    def encrypt(self, message: int) -> int:
        """``m^e mod n`` — deterministic, multiplicatively homomorphic."""
        if not 0 <= message < self.n:
            raise ValueError("message out of range [0, n)")
        return pow(message, self.e, self.n)

    def multiply(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """``E(a) × E(b) = E(a × b)``."""
        return (ciphertext_a * ciphertext_b) % self.n


@dataclass(frozen=True)
class RsaPrivateKey:
    public: RsaPublicKey
    d: int

    def decrypt(self, ciphertext: int) -> int:
        return pow(ciphertext, self.d, self.public.n)


def generate_keypair(
    bits: int = 512, rng: random.Random | None = None, e: int = 65537
) -> tuple[RsaPublicKey, RsaPrivateKey]:
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e:  # gcd(e, phi) == 1 for prime e iff e does not divide phi
            try:
                d = modinv(e, phi)
            except ValueError:
                continue
            public = RsaPublicKey(n=p * q, e=e)
            return public, RsaPrivateKey(public=public, d=d)
