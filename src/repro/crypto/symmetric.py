"""Symmetric encryption: deterministic vs non-deterministic, as in [TNP14].

Part III's protocol families are distinguished by which symmetric scheme the
tokens use to push tuples to the SSI:

* **Non-deterministic** (:class:`NondeterministicCipher`): fresh nonce per
  encryption, so equal plaintexts yield unlinkable ciphertexts. Used by the
  secure-aggregation family — the SSI learns nothing, not even equality.
* **Deterministic** (:class:`DeterministicCipher`): SIV-style, equal
  plaintexts yield equal ciphertexts. Enables the SSI to group/partition by
  ciphertext (noise- and histogram-based families) at the price of leaking
  frequencies — the leak experiment E8 quantifies.

Both are HMAC-SHA256-CTR constructions: a keystream PRF every secure MCU's
hardware crypto block can supply. Simulation substrate, not audited crypto.
"""

from __future__ import annotations

import hashlib
import hmac
import random

from repro.errors import IntegrityError

_NONCE_BYTES = 16
_TAG_BYTES = 16


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """HMAC-SHA256 in counter mode."""
    blocks = []
    for counter in range((length + 31) // 32):
        blocks.append(
            hmac.new(
                key, nonce + counter.to_bytes(4, "little"), hashlib.sha256
            ).digest()
        )
    return b"".join(blocks)[:length]


def _xor(data: bytes, pad: bytes) -> bytes:
    # One big-int XOR instead of a per-byte Python loop: ~10x less time on
    # the million-contribution collection phases of bench E23.
    length = len(data)
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(pad[:length], "little")
    ).to_bytes(length, "little")


class DeterministicCipher:
    """SIV-style deterministic authenticated encryption.

    ``E(m) = siv || (m XOR PRF(k_enc, siv))`` with
    ``siv = HMAC(k_mac, m)[:16]`` — deterministic, self-authenticating.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._mac_key = hmac.new(key, b"det-mac", hashlib.sha256).digest()
        self._enc_key = hmac.new(key, b"det-enc", hashlib.sha256).digest()

    def encrypt(self, plaintext: bytes) -> bytes:
        siv = hmac.new(self._mac_key, plaintext, hashlib.sha256).digest()[
            :_NONCE_BYTES
        ]
        body = _xor(plaintext, _keystream(self._enc_key, siv, len(plaintext)))
        return siv + body

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < _NONCE_BYTES:
            raise IntegrityError("ciphertext too short")
        siv, body = ciphertext[:_NONCE_BYTES], ciphertext[_NONCE_BYTES:]
        plaintext = _xor(body, _keystream(self._enc_key, siv, len(body)))
        expected = hmac.new(self._mac_key, plaintext, hashlib.sha256).digest()[
            :_NONCE_BYTES
        ]
        if not hmac.compare_digest(siv, expected):
            raise IntegrityError("deterministic ciphertext failed authentication")
        return plaintext


class NondeterministicCipher:
    """Nonce-based authenticated encryption (encrypt-then-MAC).

    ``E(m) = nonce || c || HMAC(k_mac, nonce || c)`` with a fresh random
    nonce, so two encryptions of the same plaintext are unlinkable.
    """

    def __init__(self, key: bytes, rng: random.Random | None = None) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._mac_key = hmac.new(key, b"nd-mac", hashlib.sha256).digest()
        self._enc_key = hmac.new(key, b"nd-enc", hashlib.sha256).digest()
        self._rng = rng or random.Random()

    def encrypt(self, plaintext: bytes) -> bytes:
        nonce = self._rng.getrandbits(8 * _NONCE_BYTES).to_bytes(
            _NONCE_BYTES, "little"
        )
        body = _xor(plaintext, _keystream(self._enc_key, nonce, len(plaintext)))
        tag = hmac.new(self._mac_key, nonce + body, hashlib.sha256).digest()[
            :_TAG_BYTES
        ]
        return nonce + body + tag

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < _NONCE_BYTES + _TAG_BYTES:
            raise IntegrityError("ciphertext too short")
        nonce = ciphertext[:_NONCE_BYTES]
        body = ciphertext[_NONCE_BYTES:-_TAG_BYTES]
        tag = ciphertext[-_TAG_BYTES:]
        expected = hmac.new(
            self._mac_key, nonce + body, hashlib.sha256
        ).digest()[:_TAG_BYTES]
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("ciphertext failed authentication")
        return _xor(body, _keystream(self._enc_key, nonce, len(body)))
