"""repro: a Personal Data Server ecosystem with strong privacy guarantees.

Reproduction of the EDBT 2014 tutorial *Managing Personal Data with Strong
Privacy Guarantees* (Anciaux, Nguyen, Sandu Popa): secure-token hardware
simulation, resource-constrained embedded data management (search + SQL),
secure global computation over an untrusted infrastructure, and the
perspective applications (medical folders, Folk-IS, Trusted Cells).

Quick tour::

    from repro.pds import PersonalDataServer          # Part I
    from repro.relational import EmbeddedDatabase     # Part II (SQL)
    from repro.search import EmbeddedSearchEngine     # Part II (IR)
    from repro.globalq import SecureAggregationProtocol  # Part III
    from repro.apps import MedicalDeployment          # Perspectives
"""

__version__ = "1.0.0"

__all__ = [
    "apps",
    "bench",
    "codesign",
    "crypto",
    "errors",
    "globalq",
    "hardware",
    "hierarchical",
    "keyvalue",
    "outsourced",
    "pds",
    "ppdp",
    "relational",
    "search",
    "smc",
    "storage",
    "timeseries",
    "workloads",
]
