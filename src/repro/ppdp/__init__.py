"""Privacy-preserving data publishing through the PDS architecture.

k-anonymity/l-diversity with generalization hierarchies, computed both by a
trusted curator (baseline) and by the Part III token protocols without any
curator seeing microdata (MetaP-flavoured) — plus the standard information-
loss metrics.
"""

from repro.ppdp.generalize import (
    Hierarchy,
    QuasiIdentifier,
    RangeHierarchy,
    TreeHierarchy,
    age_hierarchy,
    city_hierarchy,
    generalize_record,
    lattice_levels,
)
from repro.ppdp.kanon import (
    AnonymizationResult,
    anonymize_centralized,
    anonymize_with_tokens,
    equivalence_classes,
    is_k_anonymous,
    l_diversity,
)
from repro.ppdp.metrics import (
    average_class_ratio,
    discernibility,
    generalization_height,
)

__all__ = [
    "AnonymizationResult",
    "Hierarchy",
    "QuasiIdentifier",
    "RangeHierarchy",
    "TreeHierarchy",
    "age_hierarchy",
    "anonymize_centralized",
    "anonymize_with_tokens",
    "average_class_ratio",
    "city_hierarchy",
    "discernibility",
    "equivalence_classes",
    "generalization_height",
    "generalize_record",
    "is_k_anonymous",
    "l_diversity",
    "lattice_levels",
]
