"""Utility metrics for anonymized tables: what did privacy cost?

Standard PPDP quality measures, used by the E11 bench to plot information
loss against k:

* **generalization height** — normalized mean of the chosen levels (0 =
  exact data published, 1 = everything suppressed to '*');
* **discernibility** — sum over records of their equivalence-class size
  (records in big blurry classes are hard to tell apart: lower is better);
* **average class size ratio** — C_avg = (N / #classes) / k, the classic
  normalized average equivalence class size.
"""

from __future__ import annotations

from repro.ppdp.generalize import QuasiIdentifier
from repro.ppdp.kanon import AnonymizationResult


def generalization_height(
    result: AnonymizationResult, quasi_identifiers: list[QuasiIdentifier]
) -> float:
    """Normalized lattice height of the published recoding, in [0, 1]."""
    if not quasi_identifiers:
        return 0.0
    total = 0.0
    for level, qi in zip(result.levels, quasi_identifiers):
        top = qi.hierarchy.num_levels - 1
        total += (level / top) if top else 0.0
    return total / len(quasi_identifiers)


def discernibility(result: AnonymizationResult) -> int:
    """Σ |class|² over equivalence classes (suppression would add N·|table|)."""
    return sum(size * size for size in result.equivalence_classes.values())


def average_class_ratio(result: AnonymizationResult, k: int) -> float:
    """C_avg: average class size normalized by k (1.0 is optimal)."""
    classes = result.equivalence_classes
    if not classes or k <= 0:
        return 0.0
    total = sum(classes.values())
    return (total / len(classes)) / k
