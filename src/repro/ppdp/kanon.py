"""k-anonymity and l-diversity, centrally and through the token protocols.

Anonymous data publishing is one of the global functionalities the PDS
architecture must provide ([ANP13]'s MetaP, summarized in Part III's
conclusion). Two implementations whose *equality* is the key test:

* :func:`anonymize_centralized` — the classical trusted-curator algorithm:
  walk the generalization lattice from precise to general, pick the least
  general level vector making every equivalence class of size >= k
  (suppressing nothing), then publish generalized records.
* :func:`anonymize_with_tokens` — no curator ever sees microdata: the QI
  histogram needed by the lattice search is computed by the Part III
  secure-aggregation protocol (COUNT GROUP BY over encrypted
  contributions); only the chosen generalization levels are broadcast back,
  and each PDS publishes its own generalized records through the
  anonymizing collection channel.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.ppdp.generalize import (
    QuasiIdentifier,
    generalize_record,
    lattice_levels,
)
from repro.workloads.people import PersonRecord

#: Attribute injected into protocol records to carry the QI signature.
_QI_ATTR = "__qi__"


@dataclass
class AnonymizationResult:
    """A published anonymous table plus how it was obtained."""

    levels: tuple[int, ...]
    records: list[tuple]  # (qi_signature..., sensitive_value)
    equivalence_classes: dict[tuple, int]
    suppressed: int

    def k_of(self) -> int:
        """The k actually achieved (min class size; inf if empty)."""
        if not self.equivalence_classes:
            return 0
        return min(self.equivalence_classes.values())


def equivalence_classes(
    records: list[PersonRecord],
    quasi_identifiers: list[QuasiIdentifier],
    levels: tuple[int, ...],
) -> Counter:
    """Class sizes of the generalized table."""
    classes: Counter = Counter()
    for record in records:
        classes[generalize_record(record, quasi_identifiers, levels)] += 1
    return classes


def is_k_anonymous(classes: Counter, k: int) -> bool:
    return bool(classes) and min(classes.values()) >= k


def l_diversity(
    records: list[PersonRecord],
    quasi_identifiers: list[QuasiIdentifier],
    levels: tuple[int, ...],
    sensitive: str,
) -> int:
    """Min number of distinct sensitive values over all classes."""
    per_class: dict[tuple, set] = {}
    for record in records:
        signature = generalize_record(record, quasi_identifiers, levels)
        per_class.setdefault(signature, set()).add(record[sensitive])
    if not per_class:
        return 0
    return min(len(values) for values in per_class.values())


def _search_lattice(classes_at, quasi_identifiers, k, extra_check=None):
    """First (least general) level vector achieving k-anonymity.

    ``extra_check(levels)`` may impose additional predicates (l-diversity);
    a vector must satisfy both to be selected.
    """
    for levels in lattice_levels(quasi_identifiers):
        classes = classes_at(levels)
        if is_k_anonymous(classes, k) and (
            extra_check is None or extra_check(levels)
        ):
            return levels, classes
    raise ProtocolError(
        f"no generalization achieves {k}-anonymity (population too small?)"
    )


def anonymize_centralized(
    records: list[PersonRecord],
    quasi_identifiers: list[QuasiIdentifier],
    sensitive: str,
    k: int,
    l: int | None = None,
) -> AnonymizationResult:
    """Trusted-curator baseline (ground truth for the distributed version).

    With ``l`` set, the recoding must additionally be l-diverse: every
    equivalence class carries at least ``l`` distinct sensitive values
    (the homogeneity-attack countermeasure on top of k-anonymity).
    """
    if k < 1:
        raise ProtocolError("k must be >= 1")
    if l is not None and l < 1:
        raise ProtocolError("l must be >= 1")
    extra_check = None
    if l is not None:
        extra_check = (
            lambda levels: l_diversity(
                records, quasi_identifiers, levels, sensitive
            )
            >= l
        )
    levels, classes = _search_lattice(
        lambda lv: equivalence_classes(records, quasi_identifiers, lv),
        quasi_identifiers,
        k,
        extra_check=extra_check,
    )
    published = [
        generalize_record(record, quasi_identifiers, levels)
        + (record[sensitive],)
        for record in records
    ]
    return AnonymizationResult(
        levels=levels,
        records=sorted(published),
        equivalence_classes=dict(classes),
        suppressed=0,
    )


def anonymize_with_tokens(
    nodes: list[PdsNode],
    fleet: TokenFleet,
    quasi_identifiers: list[QuasiIdentifier],
    sensitive: str,
    k: int,
    rng: random.Random | None = None,
) -> AnonymizationResult:
    """MetaP-flavoured distributed anonymization over the PDS population.

    Phase 1 computes, per candidate level vector, the encrypted QI histogram
    with the secure-aggregation protocol (so the publisher sees only class
    *counts*, never raw QIs per person). Phase 2 broadcasts the chosen
    levels; each PDS generalizes locally and the anonymizing channel
    collects the generalized rows (here: pooled and shuffled, as the
    protocol's random partitioning would).
    """
    if k < 1:
        raise ProtocolError("k must be >= 1")
    rng = rng or random.Random(0)

    def classes_at(levels: tuple[int, ...]) -> Counter:
        histogram_nodes = []
        for node in nodes:
            projected = [
                PersonRecord(
                    {
                        _QI_ATTR: "|".join(
                            map(
                                str,
                                generalize_record(
                                    record, quasi_identifiers, levels
                                ),
                            )
                        )
                    }
                )
                for record in node.records
            ]
            histogram_nodes.append(PdsNode(node.pds_id, projected))
        report = SecureAggregationProtocol(fleet, rng=rng).run(
            histogram_nodes, AggregateQuery.count(group_by=_QI_ATTR)
        )
        return Counter(
            {
                tuple(group.split("|")): int(count)
                for group, count in report.result.items()
            }
        )

    levels, classes = _search_lattice(classes_at, quasi_identifiers, k)

    published: list[tuple] = []
    for node in nodes:
        for record in node.records:
            published.append(
                generalize_record(record, quasi_identifiers, levels)
                + (record[sensitive],)
            )
    rng.shuffle(published)  # the anonymizing channel's mixing
    return AnonymizationResult(
        levels=levels,
        records=sorted(published),
        equivalence_classes=dict(classes),
        suppressed=0,
    )
