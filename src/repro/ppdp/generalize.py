"""Generalization hierarchies for anonymous data publishing.

PPDP's basic move: replace quasi-identifier values with coarser ones along a
per-attribute hierarchy (age 37 → 35-39 → 30-49 → '*'). A *global recoding*
picks one level per attribute; the anonymization search walks the lattice of
level vectors from most precise to most general.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError


class Hierarchy:
    """One attribute's generalization ladder. Level 0 = exact value."""

    def __init__(self, name: str, num_levels: int) -> None:
        self.name = name
        self.num_levels = num_levels

    def generalize(self, value, level: int):
        raise NotImplementedError

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise QueryError(
                f"hierarchy {self.name!r}: level {level} out of range "
                f"[0, {self.num_levels})"
            )


class RangeHierarchy(Hierarchy):
    """Numeric banding: widths[level] gives the band at each level.

    ``widths[0]`` must be 1 (exact); the final level is always '*'.
    """

    def __init__(self, name: str, widths: list[int]) -> None:
        if not widths or widths[0] != 1:
            raise QueryError("widths must start with 1 (exact level)")
        if any(b <= a for a, b in zip(widths, widths[1:])):
            raise QueryError("widths must strictly increase")
        super().__init__(name, num_levels=len(widths) + 1)
        self.widths = widths

    def generalize(self, value, level: int):
        self._check_level(level)
        if level == self.num_levels - 1:
            return "*"
        width = self.widths[level]
        if width == 1:
            return str(value)
        low = (int(value) // width) * width
        return f"{low}-{low + width - 1}"


class TreeHierarchy(Hierarchy):
    """Categorical roll-up via explicit parent maps.

    ``levels[i]`` maps a level-``i`` value to its level-``i+1`` ancestor;
    the final level is always '*'.
    """

    def __init__(self, name: str, levels: list[dict[str, str]]) -> None:
        super().__init__(name, num_levels=len(levels) + 2)
        self.levels = levels

    def generalize(self, value, level: int):
        self._check_level(level)
        if level == self.num_levels - 1:
            return "*"
        current = str(value)
        for step in range(level):
            mapping = self.levels[step]
            if current not in mapping:
                raise QueryError(
                    f"hierarchy {self.name!r}: no level-{step + 1} ancestor "
                    f"for {current!r}"
                )
            current = mapping[current]
        return current


def age_hierarchy() -> RangeHierarchy:
    """Exact → 5-year → 10-year → 25-year → '*'."""
    return RangeHierarchy("age", widths=[1, 5, 10, 25])


def city_hierarchy() -> TreeHierarchy:
    """City → region → '*' for the synthetic people workload."""
    region_of = {
        "paris": "north", "lille": "north", "rennes": "north",
        "nantes": "north",
        "lyon": "south", "marseille": "south", "toulouse": "south",
        "nice": "south", "bordeaux": "south", "grenoble": "south",
    }
    return TreeHierarchy("city", levels=[region_of])


@dataclass(frozen=True)
class QuasiIdentifier:
    """One QI attribute with its hierarchy."""

    attribute: str
    hierarchy: Hierarchy


def generalize_record(
    record, quasi_identifiers: list[QuasiIdentifier], levels: tuple[int, ...]
) -> tuple:
    """The record's QI signature at the given generalization levels."""
    return tuple(
        qi.hierarchy.generalize(record[qi.attribute], level)
        for qi, level in zip(quasi_identifiers, levels)
    )


def lattice_levels(quasi_identifiers: list[QuasiIdentifier]):
    """All level vectors ordered by total generalization (precise first)."""
    import itertools

    axes = [range(qi.hierarchy.num_levels) for qi in quasi_identifiers]
    vectors = list(itertools.product(*axes))
    return sorted(vectors, key=lambda vector: (sum(vector), vector))
