"""Populations of full Personal Data Servers, bridged to Part III.

The global protocols of :mod:`repro.globalq` operate on light
:class:`~repro.globalq.protocol.PdsNode` views. This module builds a
population of *complete* :class:`PersonalDataServer` instances from the
synthetic people workload and derives the protocol nodes from them through
the access-control layer — so a global query really does traverse each
citizen's policy before anything leaves a token.
"""

from __future__ import annotations

from repro.globalq.protocol import PdsNode, TokenFleet
from repro.pds.acl import Subject, default_policy
from repro.pds.datamodel import PersonalDocument
from repro.pds.server import PersonalDataServer
from repro.workloads.people import generate_population


def documents_from_records(records) -> list[PersonalDocument]:
    """Re-materialize workload records as PDS documents."""
    documents = []
    for record in records:
        attributes = dict(record.attributes)
        kind = attributes.pop("kind", "form")
        documents.append(PersonalDocument(kind=kind, attributes=attributes))
    return documents


class PdsPopulation:
    """A fleet of citizens' servers plus the shared token key material."""

    def __init__(
        self,
        num_people: int,
        seed: int = 17,
        skew: float = 1.0,
        policy_factory=default_policy,
    ) -> None:
        self.fleet = TokenFleet(seed=seed)
        self.servers: list[PersonalDataServer] = []
        for person, records in enumerate(
            generate_population(num_people, seed=seed, skew=skew)
        ):
            server = PersonalDataServer(
                owner=f"citizen-{person}", policy=policy_factory()
            )
            server.ingest_all(documents_from_records(records))
            self.servers.append(server)

    def __len__(self) -> int:
        return len(self.servers)

    def nodes_for(self, querier: Subject) -> list[PdsNode]:
        """Protocol nodes holding only what each policy releases to querier."""
        return [
            PdsNode(
                pds_id=index,
                records=server.records_for_aggregation(querier),
            )
            for index, server in enumerate(self.servers)
        ]
