"""The Personal Data Server: everything of Part I on one secure token.

A :class:`PersonalDataServer` aggregates its owner's heterogeneous documents
(data integration), stores them in sequential flash logs, indexes them with
the Part II embedded search engine, guards every access with the owner's
:class:`~repro.pds.acl.PrivacyPolicy`, and journals every decision in the
hash-chained :class:`~repro.pds.audit.AuditLog`. For Part III it exposes its
(policy-filtered) records to global aggregate queries.
"""

from __future__ import annotations

import json
from collections import OrderedDict

from repro.errors import AccessDenied
from repro.hardware.flash import NandFlash
from repro.hardware.profiles import HardwareProfile
from repro.hardware.token import SecurePortableToken
from repro.pds.acl import PrivacyPolicy, Subject, default_policy
from repro.pds.audit import AuditLog
from repro.pds.datamodel import PersonalDocument
from repro.search.engine import EmbeddedSearchEngine, SearchHit
from repro.storage.log import RecordAddress, RecordLog
from repro.storage.recovery import Manifest, MountSession, mount
from repro.workloads.people import PersonRecord

#: Deserialized documents kept hot; everything else is re-read from the log.
DOC_CACHE_CAPACITY = 256


def _serialize_document(document: PersonalDocument) -> bytes:
    return json.dumps(
        [
            document.doc_id,
            document.kind,
            document.text,
            document.attributes,
            document.source,
            document.timestamp,
        ]
    ).encode()


def _deserialize_document(data: bytes) -> PersonalDocument:
    doc_id, kind, text, attributes, source, timestamp = json.loads(data)
    return PersonalDocument(
        kind=kind,
        text=text,
        attributes=attributes,
        source=source,
        timestamp=timestamp,
        doc_id=doc_id,
    )


class PersonalDataServer:
    """One citizen's trusted data home."""

    def __init__(
        self,
        owner: str,
        profile: HardwareProfile | None = None,
        policy: PrivacyPolicy | None = None,
        search_buckets: int = 32,
        token: SecurePortableToken | None = None,
        session: MountSession | None = None,
    ) -> None:
        """Fresh PDS by default; pass ``token`` + ``session`` to recover one.

        The recovery path (see :meth:`remount`) supplies a token rebuilt
        around the surviving flash and the mount session that scanned it;
        every log is then claimed from the session instead of created, and
        the RAM-only document maps are rebuilt from the documents log.
        """
        self.token = token or SecurePortableToken(profile=profile, owner=owner)
        self.owner = Subject(name=owner, role="owner")
        self.policy = policy or default_policy()
        if session is None:
            self.manifest = Manifest.create(self.token.allocator)
            self.audit = AuditLog(self.token.allocator)
            self._documents = RecordLog(self.token.allocator, name="documents")
        else:
            self.manifest = Manifest.remount(session)
            self.audit = AuditLog.remount(session)
            self._documents = session.claim_record_log("documents")
        self._by_id: dict[int, int] = {}  # doc_id -> search docid
        self._search_to_doc: dict[int, int] = {}  # search docid -> doc_id
        # The document log is the store of record; only addresses stay in
        # RAM, plus a bounded LRU of deserialized documents so a hot `get`
        # does not pay a json round-trip (invalidated on forget/drop).
        self._doc_addresses: dict[int, RecordAddress] = {}
        self._doc_cache: OrderedDict[RecordAddress, PersonalDocument] = (
            OrderedDict()
        )
        if session is None:
            self.search_engine = EmbeddedSearchEngine(
                self.token, num_buckets=search_buckets, manifest=self.manifest
            )
        else:
            self.search_engine = EmbeddedSearchEngine.remount(
                self.token, session, self.manifest, num_buckets=search_buckets
            )
            self._recover_documents()

    @classmethod
    def remount(
        cls,
        flash: NandFlash,
        owner: str,
        profile: HardwareProfile | None = None,
        policy: PrivacyPolicy | None = None,
        search_buckets: int = 32,
    ) -> "PersonalDataServer":
        """Recover a PDS from its token's flash after a power loss.

        One sequential scan rebuilds everything: the block allocator, the
        manifest, the documents/audit logs, and the search index (with
        ghost postings fenced out and uncheckpointed documents re-indexed
        from the documents log). Unclaimed blocks — debris of whatever the
        crash interrupted — are erased and returned to the free pool.
        """
        session = mount(flash)
        token = SecurePortableToken(
            profile=profile,
            owner=owner,
            flash=flash,
            allocator=session.allocator,
        )
        pds = cls(
            owner,
            policy=policy,
            search_buckets=search_buckets,
            token=token,
            session=session,
        )
        session.finish()
        return pds

    def _recover_documents(self) -> None:
        """Rebuild RAM maps from the documents log and replay indexing.

        Search docids equal ingestion order (both are append-ordered), so
        the mapping is positional. Documents past the last search
        checkpoint are re-indexed with their *original* docids — their
        replayed postings land above the recovery fence and become the
        single visible copy. Durable ``forget`` records are re-applied
        last, so forgotten documents stay forgotten across crashes.
        """
        documents: list[PersonalDocument] = []
        for search_docid, (address, record) in enumerate(
            self._documents.scan()
        ):
            document = _deserialize_document(record)
            self._by_id[document.doc_id] = search_docid
            self._search_to_doc[search_docid] = document.doc_id
            self._doc_addresses[document.doc_id] = address
            documents.append(document)
        for docid in range(self.search_engine._next_docid, len(documents)):
            self.search_engine.add_document(
                documents[docid].searchable_text(), docid=docid
            )
        for record in self.manifest.records():
            if record["kind"] == "forget":
                self._forget_from_maps(record["doc"])

    def checkpoint(self) -> None:
        """Make everything ingested so far durable in one flush.

        Documents and audit entries become durable by flushing their write
        buffers; the search engine additionally writes its checkpoint
        record so recovery knows no replay is needed up to here.
        """
        self.token.require_trusted()
        self._documents.flush()
        self.audit.flush()
        self.search_engine.checkpoint()

    # ------------------------------------------------------------------
    # Ingestion (data integration / aggregation)
    # ------------------------------------------------------------------
    def ingest(self, document: PersonalDocument) -> int:
        """Store + index one document; returns its doc_id."""
        self.token.require_trusted()
        address = self._documents.append(_serialize_document(document))
        search_docid = self.search_engine.add_document(
            document.searchable_text()
        )
        self._by_id[document.doc_id] = search_docid
        self._search_to_doc[search_docid] = document.doc_id
        self._doc_addresses[document.doc_id] = address
        self._cache_document(address, document)
        return document.doc_id

    def ingest_all(self, documents: list[PersonalDocument]) -> list[int]:
        return [self.ingest(document) for document in documents]

    @property
    def document_count(self) -> int:
        return len(self._doc_addresses)

    def forget(self, doc_id: int) -> None:
        """Drop one document from the server (owner-side right-to-forget).

        The append-only log keeps its (now unreachable) bytes until the log
        is reorganized, but the document disappears from every map and the
        deserialization cache immediately, so no later read can serve it.
        The forget itself is committed to the manifest so it survives a
        power loss — a right-to-forget that un-forgets on reboot is none.
        """
        if doc_id not in self._doc_addresses:
            raise KeyError(f"no document {doc_id} in this PDS")
        self.manifest.append("forget", doc=doc_id)
        self._forget_from_maps(doc_id)
        self.audit.record(
            self.owner.name, self.owner.role, "forget", f"doc:{doc_id}", True
        )

    def _forget_from_maps(self, doc_id: int) -> None:
        address = self._doc_addresses.pop(doc_id, None)
        if address is None:
            return  # replaying a forget for a never-recovered document
        self._doc_cache.pop(address, None)
        search_docid = self._by_id.pop(doc_id, None)
        if search_docid is not None:
            self._search_to_doc.pop(search_docid, None)

    # ------------------------------------------------------------------
    # Guarded access
    # ------------------------------------------------------------------
    def read(self, subject: Subject, doc_id: int) -> PersonalDocument:
        """Fetch one document, policy-checked and audited."""
        document = self._require_document(doc_id)
        allowed = self.policy.allows(subject, "read", document)
        self.audit.record(
            subject.name, subject.role, "read", f"doc:{doc_id}", allowed
        )
        if not allowed:
            raise AccessDenied(
                f"{subject.role} {subject.name!r} may not read document {doc_id}"
            )
        return document

    def search(
        self, subject: Subject, query: str, n: int = 10
    ) -> list[tuple[SearchHit, PersonalDocument]]:
        """Keyword search over the documents the subject may search."""
        hits = self.search_engine.search(query, n=n * 3)
        visible = []
        for hit in hits:
            document = self._document_for_search_docid(hit.docid)
            if document is None:
                continue
            if self.policy.allows(subject, "search", document):
                visible.append((hit, document))
            if len(visible) == n:
                break
        self.audit.record(
            subject.name, subject.role, "search", f"query:{query}", True
        )
        return visible

    def records_for_aggregation(self, subject: Subject) -> list[PersonRecord]:
        """Policy-filtered flat records contributed to a global query."""
        records = []
        for document in self._iter_documents():
            if self.policy.allows(subject, "aggregate", document):
                records.append(document.to_record())
        self.audit.record(
            subject.name,
            subject.role,
            "aggregate",
            f"records:{len(records)}",
            True,
        )
        return records

    def documents_of_kind(self, kind: str) -> list[PersonalDocument]:
        """Owner-side enumeration (no policy check: owner context)."""
        return [doc for doc in self._iter_documents() if doc.kind == kind]

    # ------------------------------------------------------------------
    def _require_document(self, doc_id: int) -> PersonalDocument:
        address = self._doc_addresses.get(doc_id)
        if address is None:
            raise KeyError(f"no document {doc_id} in this PDS")
        return self._load_document(address)

    def _load_document(self, address: RecordAddress) -> PersonalDocument:
        """Fetch one document, deserializing only on cache miss."""
        document = self._doc_cache.get(address)
        if document is not None:
            self._doc_cache.move_to_end(address)
            return document
        document = _deserialize_document(self._documents.read(address))
        self._cache_document(address, document)
        return document

    def _cache_document(
        self, address: RecordAddress, document: PersonalDocument
    ) -> None:
        self._doc_cache[address] = document
        self._doc_cache.move_to_end(address)
        while len(self._doc_cache) > DOC_CACHE_CAPACITY:
            self._doc_cache.popitem(last=False)

    def _iter_documents(self):
        """Every live document in ingestion order (cache-aware reads)."""
        for address in self._doc_addresses.values():
            yield self._load_document(address)

    def _document_for_search_docid(self, search_docid: int):
        doc_id = self._search_to_doc.get(search_docid)
        return None if doc_id is None else self._require_document(doc_id)
