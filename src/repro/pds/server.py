"""The Personal Data Server: everything of Part I on one secure token.

A :class:`PersonalDataServer` aggregates its owner's heterogeneous documents
(data integration), stores them in sequential flash logs, indexes them with
the Part II embedded search engine, guards every access with the owner's
:class:`~repro.pds.acl.PrivacyPolicy`, and journals every decision in the
hash-chained :class:`~repro.pds.audit.AuditLog`. For Part III it exposes its
(policy-filtered) records to global aggregate queries.
"""

from __future__ import annotations

import json
from collections import OrderedDict

from repro.errors import AccessDenied
from repro.hardware.profiles import HardwareProfile
from repro.hardware.token import SecurePortableToken
from repro.pds.acl import PrivacyPolicy, Subject, default_policy
from repro.pds.audit import AuditLog
from repro.pds.datamodel import PersonalDocument
from repro.search.engine import EmbeddedSearchEngine, SearchHit
from repro.storage.log import RecordAddress, RecordLog
from repro.workloads.people import PersonRecord

#: Deserialized documents kept hot; everything else is re-read from the log.
DOC_CACHE_CAPACITY = 256


def _serialize_document(document: PersonalDocument) -> bytes:
    return json.dumps(
        [
            document.doc_id,
            document.kind,
            document.text,
            document.attributes,
            document.source,
            document.timestamp,
        ]
    ).encode()


def _deserialize_document(data: bytes) -> PersonalDocument:
    doc_id, kind, text, attributes, source, timestamp = json.loads(data)
    return PersonalDocument(
        kind=kind,
        text=text,
        attributes=attributes,
        source=source,
        timestamp=timestamp,
        doc_id=doc_id,
    )


class PersonalDataServer:
    """One citizen's trusted data home."""

    def __init__(
        self,
        owner: str,
        profile: HardwareProfile | None = None,
        policy: PrivacyPolicy | None = None,
        search_buckets: int = 32,
    ) -> None:
        self.token = SecurePortableToken(profile=profile, owner=owner)
        self.owner = Subject(name=owner, role="owner")
        self.policy = policy or default_policy()
        self.audit = AuditLog(self.token.allocator)
        self._documents = RecordLog(self.token.allocator, name="documents")
        self._by_id: dict[int, int] = {}  # doc_id -> search docid
        self._search_to_doc: dict[int, int] = {}  # search docid -> doc_id
        # The document log is the store of record; only addresses stay in
        # RAM, plus a bounded LRU of deserialized documents so a hot `get`
        # does not pay a json round-trip (invalidated on forget/drop).
        self._doc_addresses: dict[int, RecordAddress] = {}
        self._doc_cache: OrderedDict[RecordAddress, PersonalDocument] = (
            OrderedDict()
        )
        self.search_engine = EmbeddedSearchEngine(
            self.token, num_buckets=search_buckets
        )

    # ------------------------------------------------------------------
    # Ingestion (data integration / aggregation)
    # ------------------------------------------------------------------
    def ingest(self, document: PersonalDocument) -> int:
        """Store + index one document; returns its doc_id."""
        self.token.require_trusted()
        address = self._documents.append(_serialize_document(document))
        search_docid = self.search_engine.add_document(
            document.searchable_text()
        )
        self._by_id[document.doc_id] = search_docid
        self._search_to_doc[search_docid] = document.doc_id
        self._doc_addresses[document.doc_id] = address
        self._cache_document(address, document)
        return document.doc_id

    def ingest_all(self, documents: list[PersonalDocument]) -> list[int]:
        return [self.ingest(document) for document in documents]

    @property
    def document_count(self) -> int:
        return len(self._doc_addresses)

    def forget(self, doc_id: int) -> None:
        """Drop one document from the server (owner-side right-to-forget).

        The append-only log keeps its (now unreachable) bytes until the log
        is reorganized, but the document disappears from every map and the
        deserialization cache immediately, so no later read can serve it.
        """
        address = self._doc_addresses.pop(doc_id, None)
        if address is None:
            raise KeyError(f"no document {doc_id} in this PDS")
        self._doc_cache.pop(address, None)
        search_docid = self._by_id.pop(doc_id, None)
        if search_docid is not None:
            self._search_to_doc.pop(search_docid, None)
        self.audit.record(
            self.owner.name, self.owner.role, "forget", f"doc:{doc_id}", True
        )

    # ------------------------------------------------------------------
    # Guarded access
    # ------------------------------------------------------------------
    def read(self, subject: Subject, doc_id: int) -> PersonalDocument:
        """Fetch one document, policy-checked and audited."""
        document = self._require_document(doc_id)
        allowed = self.policy.allows(subject, "read", document)
        self.audit.record(
            subject.name, subject.role, "read", f"doc:{doc_id}", allowed
        )
        if not allowed:
            raise AccessDenied(
                f"{subject.role} {subject.name!r} may not read document {doc_id}"
            )
        return document

    def search(
        self, subject: Subject, query: str, n: int = 10
    ) -> list[tuple[SearchHit, PersonalDocument]]:
        """Keyword search over the documents the subject may search."""
        hits = self.search_engine.search(query, n=n * 3)
        visible = []
        for hit in hits:
            document = self._document_for_search_docid(hit.docid)
            if document is None:
                continue
            if self.policy.allows(subject, "search", document):
                visible.append((hit, document))
            if len(visible) == n:
                break
        self.audit.record(
            subject.name, subject.role, "search", f"query:{query}", True
        )
        return visible

    def records_for_aggregation(self, subject: Subject) -> list[PersonRecord]:
        """Policy-filtered flat records contributed to a global query."""
        records = []
        for document in self._iter_documents():
            if self.policy.allows(subject, "aggregate", document):
                records.append(document.to_record())
        self.audit.record(
            subject.name,
            subject.role,
            "aggregate",
            f"records:{len(records)}",
            True,
        )
        return records

    def documents_of_kind(self, kind: str) -> list[PersonalDocument]:
        """Owner-side enumeration (no policy check: owner context)."""
        return [doc for doc in self._iter_documents() if doc.kind == kind]

    # ------------------------------------------------------------------
    def _require_document(self, doc_id: int) -> PersonalDocument:
        address = self._doc_addresses.get(doc_id)
        if address is None:
            raise KeyError(f"no document {doc_id} in this PDS")
        return self._load_document(address)

    def _load_document(self, address: RecordAddress) -> PersonalDocument:
        """Fetch one document, deserializing only on cache miss."""
        document = self._doc_cache.get(address)
        if document is not None:
            self._doc_cache.move_to_end(address)
            return document
        document = _deserialize_document(self._documents.read(address))
        self._cache_document(address, document)
        return document

    def _cache_document(
        self, address: RecordAddress, document: PersonalDocument
    ) -> None:
        self._doc_cache[address] = document
        self._doc_cache.move_to_end(address)
        while len(self._doc_cache) > DOC_CACHE_CAPACITY:
            self._doc_cache.popitem(last=False)

    def _iter_documents(self):
        """Every live document in ingestion order (cache-aware reads)."""
        for address in self._doc_addresses.values():
            yield self._load_document(address)

    def _document_for_search_docid(self, search_docid: int):
        doc_id = self._search_to_doc.get(search_docid)
        return None if doc_id is None else self._require_document(doc_id)
