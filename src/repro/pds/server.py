"""The Personal Data Server: everything of Part I on one secure token.

A :class:`PersonalDataServer` aggregates its owner's heterogeneous documents
(data integration), stores them in sequential flash logs, indexes them with
the Part II embedded search engine, guards every access with the owner's
:class:`~repro.pds.acl.PrivacyPolicy`, and journals every decision in the
hash-chained :class:`~repro.pds.audit.AuditLog`. For Part III it exposes its
(policy-filtered) records to global aggregate queries.
"""

from __future__ import annotations

import json

from repro.errors import AccessDenied
from repro.hardware.profiles import HardwareProfile
from repro.hardware.token import SecurePortableToken
from repro.pds.acl import PrivacyPolicy, Subject, default_policy
from repro.pds.audit import AuditLog
from repro.pds.datamodel import PersonalDocument
from repro.search.engine import EmbeddedSearchEngine, SearchHit
from repro.storage.log import RecordLog
from repro.workloads.people import PersonRecord


def _serialize_document(document: PersonalDocument) -> bytes:
    return json.dumps(
        [
            document.doc_id,
            document.kind,
            document.text,
            document.attributes,
            document.source,
            document.timestamp,
        ]
    ).encode()


def _deserialize_document(data: bytes) -> PersonalDocument:
    doc_id, kind, text, attributes, source, timestamp = json.loads(data)
    return PersonalDocument(
        kind=kind,
        text=text,
        attributes=attributes,
        source=source,
        timestamp=timestamp,
        doc_id=doc_id,
    )


class PersonalDataServer:
    """One citizen's trusted data home."""

    def __init__(
        self,
        owner: str,
        profile: HardwareProfile | None = None,
        policy: PrivacyPolicy | None = None,
        search_buckets: int = 32,
    ) -> None:
        self.token = SecurePortableToken(profile=profile, owner=owner)
        self.owner = Subject(name=owner, role="owner")
        self.policy = policy or default_policy()
        self.audit = AuditLog(self.token.allocator)
        self._documents = RecordLog(self.token.allocator, name="documents")
        self._by_id: dict[int, int] = {}  # doc_id -> search docid
        self._search_to_doc: dict[int, int] = {}  # search docid -> doc_id
        self._store: dict[int, PersonalDocument] = {}  # RAM cache of the log
        self.search_engine = EmbeddedSearchEngine(
            self.token, num_buckets=search_buckets
        )

    # ------------------------------------------------------------------
    # Ingestion (data integration / aggregation)
    # ------------------------------------------------------------------
    def ingest(self, document: PersonalDocument) -> int:
        """Store + index one document; returns its doc_id."""
        self.token.require_trusted()
        self._documents.append(_serialize_document(document))
        search_docid = self.search_engine.add_document(
            document.searchable_text()
        )
        self._by_id[document.doc_id] = search_docid
        self._search_to_doc[search_docid] = document.doc_id
        self._store[document.doc_id] = document
        return document.doc_id

    def ingest_all(self, documents: list[PersonalDocument]) -> list[int]:
        return [self.ingest(document) for document in documents]

    @property
    def document_count(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------
    # Guarded access
    # ------------------------------------------------------------------
    def read(self, subject: Subject, doc_id: int) -> PersonalDocument:
        """Fetch one document, policy-checked and audited."""
        document = self._require_document(doc_id)
        allowed = self.policy.allows(subject, "read", document)
        self.audit.record(
            subject.name, subject.role, "read", f"doc:{doc_id}", allowed
        )
        if not allowed:
            raise AccessDenied(
                f"{subject.role} {subject.name!r} may not read document {doc_id}"
            )
        return document

    def search(
        self, subject: Subject, query: str, n: int = 10
    ) -> list[tuple[SearchHit, PersonalDocument]]:
        """Keyword search over the documents the subject may search."""
        hits = self.search_engine.search(query, n=n * 3)
        visible = []
        for hit in hits:
            document = self._document_for_search_docid(hit.docid)
            if document is None:
                continue
            if self.policy.allows(subject, "search", document):
                visible.append((hit, document))
            if len(visible) == n:
                break
        self.audit.record(
            subject.name, subject.role, "search", f"query:{query}", True
        )
        return visible

    def records_for_aggregation(self, subject: Subject) -> list[PersonRecord]:
        """Policy-filtered flat records contributed to a global query."""
        records = []
        for document in self._store.values():
            if self.policy.allows(subject, "aggregate", document):
                records.append(document.to_record())
        self.audit.record(
            subject.name,
            subject.role,
            "aggregate",
            f"records:{len(records)}",
            True,
        )
        return records

    def documents_of_kind(self, kind: str) -> list[PersonalDocument]:
        """Owner-side enumeration (no policy check: owner context)."""
        return [doc for doc in self._store.values() if doc.kind == kind]

    # ------------------------------------------------------------------
    def _require_document(self, doc_id: int) -> PersonalDocument:
        document = self._store.get(doc_id)
        if document is None:
            raise KeyError(f"no document {doc_id} in this PDS")
        return document

    def _document_for_search_docid(self, search_docid: int):
        doc_id = self._search_to_doc.get(search_docid)
        return None if doc_id is None else self._store[doc_id]
