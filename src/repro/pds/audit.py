"""Tamper-evident audit log: the accountability half of "secure usage".

Part I requires *"secure usage and accountability"*: the owner must be able
to prove, after the fact, who accessed what. Entries are hash-chained
(each entry commits to its predecessor's digest) and stored in a sequential
flash log, so truncation is the only undetectable modification — and the
entry counter in token NVRAM closes that hole in the real design; here the
verifier takes the expected length explicitly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.hardware.flash import BlockAllocator
from repro.storage.log import RecordLog

_GENESIS = b"\x00" * 32


@dataclass(frozen=True)
class AuditEntry:
    """One recorded access decision."""

    sequence: int
    subject: str
    role: str
    action: str
    target: str
    allowed: bool
    prev_digest: bytes

    def digest(self) -> bytes:
        body = json.dumps(
            [
                self.sequence,
                self.subject,
                self.role,
                self.action,
                self.target,
                self.allowed,
                self.prev_digest.hex(),
            ]
        ).encode()
        return hashlib.sha256(body).digest()

    def serialize(self) -> bytes:
        return json.dumps(
            [
                self.sequence,
                self.subject,
                self.role,
                self.action,
                self.target,
                self.allowed,
                self.prev_digest.hex(),
            ]
        ).encode()

    @classmethod
    def deserialize(cls, data: bytes) -> "AuditEntry":
        sequence, subject, role, action, target, allowed, prev_hex = json.loads(
            data
        )
        return cls(
            sequence=sequence,
            subject=subject,
            role=role,
            action=action,
            target=target,
            allowed=allowed,
            prev_digest=bytes.fromhex(prev_hex),
        )


class AuditLog:
    """Hash-chained access journal on the token's flash."""

    def __init__(self, allocator: BlockAllocator) -> None:
        self._log = RecordLog(allocator, name="audit")
        self._last_digest = _GENESIS
        self._count = 0

    @classmethod
    def remount(cls, session) -> "AuditLog":
        """Rebuild the journal from its durable prefix after power loss.

        Entries still in the RAM write buffer at the crash are gone — the
        chain simply resumes from the last flushed entry, whose digest is
        recomputed from the recovered payloads (no extra flash reads).
        Accountability over durable history is intact: `verify_chain`
        still walks genesis to head.
        """
        from repro.storage import pager  # local: avoid widening module deps

        recovered = session.claim("audit")
        log = cls.__new__(cls)
        log._log = RecordLog.remount(session.allocator, "audit", recovered)
        digest = _GENESIS
        count = 0
        for page in recovered.pages:
            for record in pager.unpack_records(page.payload):
                digest = AuditEntry.deserialize(record).digest()
                count += 1
        log._last_digest = digest
        log._count = count
        return log

    def flush(self) -> None:
        """Push buffered entries to flash (part of a durable checkpoint)."""
        self._log.flush()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def head_digest(self) -> bytes:
        """Digest of the latest entry (what the owner would pin externally)."""
        return self._last_digest

    def record(
        self, subject: str, role: str, action: str, target: str, allowed: bool
    ) -> AuditEntry:
        entry = AuditEntry(
            sequence=self._count,
            subject=subject,
            role=role,
            action=action,
            target=target,
            allowed=allowed,
            prev_digest=self._last_digest,
        )
        self._log.append(entry.serialize())
        self._last_digest = entry.digest()
        self._count += 1
        return entry

    def entries(self) -> list[AuditEntry]:
        return [
            AuditEntry.deserialize(record) for _, record in self._log.scan()
        ]

    def verify_chain(self, expected_count: int | None = None) -> bool:
        """Re-walk the chain; False on any break or length mismatch."""
        digest = _GENESIS
        entries = self.entries()
        for index, entry in enumerate(entries):
            if entry.sequence != index or entry.prev_digest != digest:
                return False
            digest = entry.digest()
        if digest != self._last_digest:
            return False
        if expected_count is not None and len(entries) != expected_count:
            return False
        return True
