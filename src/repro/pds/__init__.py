"""The Personal Data Server core (Part I).

One citizen's trusted data home: heterogeneous document aggregation, simple
user-defined access rules, a hash-chained audit trail, secure sharing with
credential proofs and travelling usage policies, and disconnected
(smart-badge) synchronization with an encrypted central archive.
"""

from repro.pds.acl import (
    ACTIONS,
    ANY,
    AccessRule,
    PrivacyPolicy,
    Subject,
    default_policy,
)
from repro.pds.audit import AuditEntry, AuditLog
from repro.pds.importers import (
    ImportReport,
    federate,
    import_bank_csv,
    import_mbox,
    import_meter_csv,
)
from repro.pds.datamodel import (
    KINDS,
    PersonalDocument,
    bill,
    energy_reading,
    medical_note,
)
from repro.pds.population import PdsPopulation, documents_from_records
from repro.pds.server import PersonalDataServer
from repro.pds.sharing import (
    CertificationAuthority,
    Credential,
    ShareReader,
    SharingEnvelope,
    UsagePolicy,
    create_share,
)
from repro.pds.sync import ReplicaState, SmartBadge, StampedDocument, badge_sync

__all__ = [
    "ACTIONS",
    "ANY",
    "AccessRule",
    "AuditEntry",
    "AuditLog",
    "CertificationAuthority",
    "Credential",
    "KINDS",
    "PdsPopulation",
    "PersonalDataServer",
    "PersonalDocument",
    "PrivacyPolicy",
    "ReplicaState",
    "ShareReader",
    "SharingEnvelope",
    "SmartBadge",
    "StampedDocument",
    "Subject",
    "UsagePolicy",
    "ImportReport",
    "badge_sync",
    "bill",
    "federate",
    "import_bank_csv",
    "import_mbox",
    "import_meter_csv",
    "create_share",
    "default_policy",
    "documents_from_records",
    "energy_reading",
    "medical_note",
]
