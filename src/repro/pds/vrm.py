"""Vendor Relationship Management: the customer sets the terms.

Part I reviews VRM (projectvrm.org) and the infomediary movement: tools
that give the customer *"independence from vendors and a way to engage"*,
letting her *"specify her own terms of service"* and *"gather, examine and
control the use of her own data"* — and, per the infomediary pitch, monetize
it. This module is that engagement loop on top of the PDS:

* the owner writes :class:`Terms` per document kind — allowed purposes,
  maximum retention, a price, and whether only anonymized/aggregated forms
  may leave;
* a vendor submits a :class:`DataRequest`;
* the :class:`VrmAgent` evaluates the request against the terms (the
  *user's* terms, not the vendor's click-wrap), audits the decision on the
  PDS, releases only what was granted, and accounts the owner's revenue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AccessDenied
from repro.pds.datamodel import PersonalDocument
from repro.pds.server import PersonalDataServer


@dataclass(frozen=True)
class KindTerms:
    """The owner's conditions for releasing one kind of data."""

    purposes: frozenset[str]
    max_retention_days: int
    price_per_document: float
    anonymized_only: bool = False


class Terms:
    """The owner's complete terms of service (deny by default)."""

    def __init__(self) -> None:
        self._by_kind: dict[str, KindTerms] = {}

    def allow(
        self,
        kind: str,
        purposes: list[str],
        max_retention_days: int,
        price_per_document: float,
        anonymized_only: bool = False,
    ) -> None:
        if max_retention_days < 0 or price_per_document < 0:
            raise ValueError("retention and price must be non-negative")
        self._by_kind[kind] = KindTerms(
            purposes=frozenset(purposes),
            max_retention_days=max_retention_days,
            price_per_document=price_per_document,
            anonymized_only=anonymized_only,
        )

    def for_kind(self, kind: str) -> KindTerms | None:
        return self._by_kind.get(kind)

    def kinds(self) -> list[str]:
        return sorted(self._by_kind)


@dataclass(frozen=True)
class DataRequest:
    """What a vendor asks for."""

    vendor: str
    kinds: tuple[str, ...]
    purpose: str
    retention_days: int
    offered_price_per_document: float
    accepts_anonymized: bool = False


@dataclass
class Decision:
    """The agent's verdict on one request."""

    vendor: str
    granted_kinds: list[str] = field(default_factory=list)
    refused: dict[str, str] = field(default_factory=dict)  # kind -> reason
    anonymize_kinds: list[str] = field(default_factory=list)
    price_per_document: dict[str, float] = field(default_factory=dict)

    @property
    def any_granted(self) -> bool:
        return bool(self.granted_kinds)


def evaluate(terms: Terms, request: DataRequest) -> Decision:
    """Match a vendor request against the owner's terms, kind by kind."""
    decision = Decision(vendor=request.vendor)
    for kind in request.kinds:
        kind_terms = terms.for_kind(kind)
        if kind_terms is None:
            decision.refused[kind] = "kind not offered under any terms"
            continue
        if request.purpose not in kind_terms.purposes:
            decision.refused[kind] = (
                f"purpose {request.purpose!r} not in allowed "
                f"{sorted(kind_terms.purposes)}"
            )
            continue
        if request.retention_days > kind_terms.max_retention_days:
            decision.refused[kind] = (
                f"retention {request.retention_days}d exceeds "
                f"{kind_terms.max_retention_days}d"
            )
            continue
        if request.offered_price_per_document < kind_terms.price_per_document:
            decision.refused[kind] = (
                f"offer {request.offered_price_per_document} below asking "
                f"price {kind_terms.price_per_document}"
            )
            continue
        if kind_terms.anonymized_only and not request.accepts_anonymized:
            decision.refused[kind] = "only anonymized release is offered"
            continue
        decision.granted_kinds.append(kind)
        decision.price_per_document[kind] = kind_terms.price_per_document
        if kind_terms.anonymized_only:
            decision.anonymize_kinds.append(kind)
    return decision


@dataclass
class Release:
    """What actually left the PDS for one granted request."""

    vendor: str
    documents: list[PersonalDocument]
    anonymized_counts: dict[str, int]
    revenue: float


class VrmAgent:
    """The fourth party that works for the *user* (the VRM principle)."""

    def __init__(self, pds: PersonalDataServer, terms: Terms) -> None:
        self.pds = pds
        self.terms = terms
        self.total_revenue = 0.0
        self.releases: list[Release] = []

    def handle(self, request: DataRequest) -> Release:
        """Evaluate, audit, and serve (only) the granted parts of a request."""
        decision = evaluate(self.terms, request)
        self.pds.audit.record(
            request.vendor,
            "vendor",
            "share",
            f"vrm:{request.purpose}:granted={decision.granted_kinds}"
            f":refused={sorted(decision.refused)}",
            decision.any_granted,
        )
        if not decision.any_granted:
            raise AccessDenied(
                f"request by {request.vendor!r} refused entirely: "
                f"{decision.refused}"
            )
        documents: list[PersonalDocument] = []
        anonymized_counts: dict[str, int] = {}
        revenue = 0.0
        for kind in decision.granted_kinds:
            matching = self.pds.documents_of_kind(kind)
            revenue += decision.price_per_document[kind] * len(matching)
            if kind in decision.anonymize_kinds:
                # Only the count leaves: the aggregate form of release.
                anonymized_counts[kind] = len(matching)
            else:
                documents.extend(matching)
        release = Release(
            vendor=request.vendor,
            documents=documents,
            anonymized_counts=anonymized_counts,
            revenue=revenue,
        )
        self.total_revenue += revenue
        self.releases.append(release)
        return release
