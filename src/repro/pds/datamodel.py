"""Personal data model: the heterogeneous content a PDS aggregates.

Part I's "Secure storage with a Personal Data Server" slide: a PDS gathers
*everything* about a person — mails, bills, medical records, clickstreams,
administrative forms — in one place. :class:`PersonalDocument` is the common
envelope: a kind, structured attributes, free text, provenance. Bridges
exist to the Part II search engine (text) and to Part III's global queries
(flat attribute records).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.workloads.people import PersonRecord

#: Well-known document kinds (free-form strings are allowed too).
KINDS = (
    "email",
    "bill",
    "medical",
    "photo",
    "form",
    "energy",
    "profile",
    "social",
)

_doc_counter = itertools.count(1)


@dataclass
class PersonalDocument:
    """One item of personal data inside a PDS."""

    kind: str
    text: str = ""
    attributes: dict = field(default_factory=dict)
    source: str = "self"
    timestamp: int = 0
    doc_id: int = field(default_factory=lambda: next(_doc_counter))

    def to_record(self) -> PersonRecord:
        """Flatten for global aggregate queries (kind + attributes)."""
        flat = dict(self.attributes)
        flat["kind"] = self.kind
        return PersonRecord(flat)

    def searchable_text(self) -> str:
        """Text handed to the embedded search engine."""
        attribute_text = " ".join(
            str(value) for value in self.attributes.values()
        )
        return f"{self.kind} {self.text} {attribute_text}".strip()


def medical_note(text: str, diagnosis: str, timestamp: int = 0) -> PersonalDocument:
    """Convenience constructor used by examples and tests."""
    return PersonalDocument(
        kind="medical",
        text=text,
        attributes={"diagnosis": diagnosis},
        source="doctor",
        timestamp=timestamp,
    )


def energy_reading(kwh: int, month: int, timestamp: int = 0) -> PersonalDocument:
    return PersonalDocument(
        kind="energy",
        attributes={"kwh": kwh, "month": month},
        source="smart-meter",
        timestamp=timestamp,
    )


def bill(text: str, amount: float, vendor: str, timestamp: int = 0) -> PersonalDocument:
    return PersonalDocument(
        kind="bill",
        text=text,
        attributes={"amount": amount, "vendor": vendor},
        source=vendor,
        timestamp=timestamp,
    )
