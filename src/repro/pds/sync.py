"""Disconnected synchronization: the medical-folder field experiment.

The Perspectives slides describe a personal social-medical folder whose
local (token) and central (server) copies are *"synchronized without
Internet connection"*: practitioners' **smart badges** physically carry
encrypted deltas between homes and the coordination server — *"no data
re-entered, no network link required"*.

Reconciliation is per-source monotonic: every document carries a
``(source, counter)`` stamp; a replica knows, per source, the highest
counter it holds, so a badge loads exactly the missing suffix. The central
archive stores ciphertext only (it is honest-but-curious, like the SSI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.globalq.protocol import TokenFleet
from repro.pds.datamodel import PersonalDocument
from repro.pds.server import _deserialize_document, _serialize_document


@dataclass(frozen=True)
class StampedDocument:
    """A document plus its replication stamp."""

    source: str
    counter: int
    document: PersonalDocument

    def key(self) -> tuple[str, int]:
        return (self.source, self.counter)


class ReplicaState:
    """What one replica holds: stamped docs + per-source version vector."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._docs: dict[tuple[str, int], StampedDocument] = {}

    # ------------------------------------------------------------------
    @property
    def version_vector(self) -> dict[str, int]:
        vector: dict[str, int] = {}
        for source, counter in self._docs:
            vector[source] = max(vector.get(source, -1), counter)
        return vector

    def documents(self) -> list[StampedDocument]:
        return sorted(self._docs.values(), key=lambda s: s.key())

    def __len__(self) -> int:
        return len(self._docs)

    def add_local(self, source: str, document: PersonalDocument) -> StampedDocument:
        """Author a new document at this replica under ``source``."""
        counter = self.version_vector.get(source, -1) + 1
        stamped = StampedDocument(source, counter, document)
        self._docs[stamped.key()] = stamped
        return stamped

    def integrate(self, stamped: StampedDocument) -> bool:
        """Merge one stamped doc; idempotent. Returns True if new."""
        if stamped.key() in self._docs:
            return False
        self._docs[stamped.key()] = stamped
        return True

    def missing_from(self, vector: dict[str, int]) -> list[StampedDocument]:
        """Documents this replica has that a holder of ``vector`` lacks."""
        return [
            stamped
            for stamped in self.documents()
            if stamped.counter > vector.get(stamped.source, -1)
        ]

    def converged_with(self, other: "ReplicaState") -> bool:
        return {s.key() for s in self.documents()} == {
            s.key() for s in other.documents()
        }


class SmartBadge:
    """The physical courier: carries an encrypted delta, offline.

    The badge is itself a secure token of the fleet, so it may hold the
    plaintext internally; anything at rest in its flash is encrypted with
    the fleet key. We model that by sealing the delta at load time and
    unsealing at delivery.
    """

    def __init__(self, fleet: TokenFleet) -> None:
        self._cipher = fleet.payload_cipher()
        self._sealed: bytes | None = None
        self.carried_documents = 0
        self.carried_bytes = 0

    def load_delta(self, replica: ReplicaState, known_vector: dict[str, int]) -> int:
        """Seal the documents ``replica`` has beyond ``known_vector``."""
        delta = replica.missing_from(known_vector)
        payload = json.dumps(
            [
                [s.source, s.counter, _serialize_document(s.document).decode()]
                for s in delta
            ]
        ).encode()
        self._sealed = self._cipher.encrypt(payload)
        self.carried_documents = len(delta)
        self.carried_bytes = len(self._sealed)
        return len(delta)

    def deliver(self, replica: ReplicaState) -> int:
        """Unseal at the destination replica; returns documents integrated."""
        if self._sealed is None:
            raise ProtocolError("badge is empty: load a delta first")
        entries = json.loads(self._cipher.decrypt(self._sealed))
        integrated = 0
        for source, counter, document_json in entries:
            stamped = StampedDocument(
                source, counter, _deserialize_document(document_json.encode())
            )
            if replica.integrate(stamped):
                integrated += 1
        self._sealed = None
        return integrated


def badge_sync(
    fleet: TokenFleet, left: ReplicaState, right: ReplicaState
) -> tuple[int, int]:
    """One badge round-trip: left -> right, then right -> left.

    Returns ``(docs delivered to right, docs delivered to left)``. After a
    round trip the two replicas are converged for everything that existed
    when the badge was loaded.
    """
    badge = SmartBadge(fleet)
    badge.load_delta(left, right.version_vector)
    to_right = badge.deliver(right)
    badge.load_delta(right, left.version_vector)
    to_left = badge.deliver(left)
    return to_right, to_left
