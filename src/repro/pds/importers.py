"""Source importers: federating a person's data into the PDS.

Part I's storage requirements include *data integration/aggregation*:
"aggregate user's data in a single location... personal data is
heterogeneous" and the reviewed Locker Project "federates data from
different sources". These importers turn the common export formats a
citizen can actually obtain — a mail spool, a bank CSV, a smart-meter CSV —
into :class:`PersonalDocument` batches ready for ingestion.

Parsers are deliberately forgiving (exports in the wild are messy) but
never silent: unparseable lines are returned so the user sees what was
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.pds.datamodel import PersonalDocument


class ImportError_(ReproError):
    """An importer could not make sense of its input at all."""


@dataclass
class ImportReport:
    """Outcome of one import run."""

    documents: list[PersonalDocument] = field(default_factory=list)
    skipped_lines: list[str] = field(default_factory=list)

    @property
    def imported(self) -> int:
        return len(self.documents)


# ----------------------------------------------------------------------
# Mail spool (mbox-flavoured)
# ----------------------------------------------------------------------
def import_mbox(text: str) -> ImportReport:
    """Parse an mbox-style mail spool into ``email`` documents.

    Messages start at ``From `` separator lines; ``Subject:``/``From:``
    headers become attributes, everything after the first blank line is the
    body.
    """
    report = ImportReport()
    messages: list[list[str]] = []
    current: list[str] | None = None
    for line in text.splitlines():
        if line.startswith("From "):
            current = []
            messages.append(current)
        elif current is not None:
            current.append(line)
        elif line.strip():
            report.skipped_lines.append(line)
    for lines in messages:
        headers: dict[str, str] = {}
        body_start = len(lines)
        for index, line in enumerate(lines):
            if not line.strip():
                body_start = index + 1
                break
            name, _, value = line.partition(":")
            if value:
                headers[name.strip().lower()] = value.strip()
        body = "\n".join(lines[body_start:]).strip()
        report.documents.append(
            PersonalDocument(
                kind="email",
                text=f"{headers.get('subject', '')} {body}".strip(),
                attributes={
                    "from": headers.get("from", "unknown"),
                    "subject": headers.get("subject", ""),
                },
                source="mailbox",
            )
        )
    if not messages and text.strip():
        raise ImportError_("input does not look like an mbox spool")
    return report


# ----------------------------------------------------------------------
# Bank statement CSV: date,label,amount
# ----------------------------------------------------------------------
def import_bank_csv(text: str) -> ImportReport:
    """Parse ``date,label,amount`` lines into ``bill`` documents."""
    report = ImportReport()
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.lower().startswith("date,"):
            continue
        parts = [part.strip() for part in stripped.split(",")]
        if len(parts) != 3:
            report.skipped_lines.append(line)
            continue
        date, label, amount_text = parts
        try:
            amount = float(amount_text)
        except ValueError:
            report.skipped_lines.append(line)
            continue
        report.documents.append(
            PersonalDocument(
                kind="bill",
                text=label,
                attributes={"date": date, "amount": amount, "vendor": label},
                source="bank",
            )
        )
    return report


# ----------------------------------------------------------------------
# Smart-meter CSV: month,kwh
# ----------------------------------------------------------------------
def import_meter_csv(text: str) -> ImportReport:
    """Parse ``month,kwh`` readings into ``energy`` documents."""
    report = ImportReport()
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.lower().startswith("month,"):
            continue
        parts = [part.strip() for part in stripped.split(",")]
        if len(parts) != 2:
            report.skipped_lines.append(line)
            continue
        try:
            month = int(parts[0])
            kwh = int(float(parts[1]))
        except ValueError:
            report.skipped_lines.append(line)
            continue
        report.documents.append(
            PersonalDocument(
                kind="energy",
                attributes={"month": month, "kwh": kwh},
                source="smart-meter",
            )
        )
    return report


IMPORTERS = {
    "mbox": import_mbox,
    "bank-csv": import_bank_csv,
    "meter-csv": import_meter_csv,
}


def federate(pds, sources: dict[str, str]) -> dict[str, ImportReport]:
    """Import several ``{format: payload}`` sources into one PDS.

    Returns the per-source reports; all successfully parsed documents are
    ingested (stored + indexed) in one pass.
    """
    reports: dict[str, ImportReport] = {}
    for source_format, payload in sources.items():
        importer = IMPORTERS.get(source_format)
        if importer is None:
            raise ImportError_(
                f"unknown source format {source_format!r}; "
                f"known: {sorted(IMPORTERS)}"
            )
        report = importer(payload)
        pds.ingest_all(report.documents)
        reports[source_format] = report
    return reports
