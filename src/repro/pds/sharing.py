"""Distributed secure sharing: credential proofs + usage control.

Two Part I requirements in one module:

* *"Users must get a proof of legitimacy for the credentials exposed by the
  participants of a data exchange"* — :class:`Credential` is a role
  statement MAC'd by a certification authority key that every genuine token
  carries; tokens verify before serving a share.
* *"Users must not lose control over their data through data sharing"*
  (KuppingerCole's Life Management Platforms) — shares travel as
  :class:`SharingEnvelope`: documents sealed under the fleet key together
  with a :class:`UsagePolicy` (read budget, expiry). Only another genuine
  token can open the envelope, and it enforces the embedded policy — the
  enforcement point moves *with the data*.
"""

from __future__ import annotations

import json

from repro.errors import AccessDenied, IntegrityError, ProtocolError
from repro.globalq.protocol import TokenFleet
from repro.pds.acl import Subject
from repro.pds.datamodel import PersonalDocument
from repro.pds.server import PersonalDataServer, _deserialize_document, _serialize_document


class CertificationAuthority:
    """Issues role credentials all tokens can verify (shared MAC key)."""

    def __init__(self, fleet: TokenFleet, authority_seed: bytes = b"ca") -> None:
        self._cipher = fleet.payload_cipher()
        # A deterministic MAC keyed off the fleet: verify == re-issue+compare.
        import hashlib
        import hmac as hmac_module

        self._key = hashlib.sha256(authority_seed + b"|credentials").digest()
        self._hmac = hmac_module

    def issue(self, subject: Subject, expires_at: int) -> "Credential":
        body = json.dumps([subject.name, subject.role, expires_at]).encode()
        proof = self._hmac.new(self._key, body, "sha256").digest()
        return Credential(
            subject=subject, expires_at=expires_at, proof=proof
        )

    def verify(self, credential: "Credential", now: int) -> bool:
        body = json.dumps(
            [
                credential.subject.name,
                credential.subject.role,
                credential.expires_at,
            ]
        ).encode()
        expected = self._hmac.new(self._key, body, "sha256").digest()
        if not self._hmac.compare_digest(expected, credential.proof):
            return False
        return now <= credential.expires_at


class Credential:
    """A verifiable role statement ('Dr. A is a doctor until t')."""

    def __init__(self, subject: Subject, expires_at: int, proof: bytes) -> None:
        self.subject = subject
        self.expires_at = expires_at
        self.proof = proof


class UsagePolicy:
    """Constraints that travel inside the envelope."""

    def __init__(self, max_reads: int = 1, expires_at: int = 2**31) -> None:
        if max_reads < 1:
            raise ProtocolError("a share must allow at least one read")
        self.max_reads = max_reads
        self.expires_at = expires_at

    def to_json(self) -> list:
        return [self.max_reads, self.expires_at]

    @classmethod
    def from_json(cls, data: list) -> "UsagePolicy":
        return cls(max_reads=data[0], expires_at=data[1])


class SharingEnvelope:
    """Documents + usage policy sealed under the fleet key."""

    def __init__(self, blob: bytes, sender: str, recipient_role: str) -> None:
        self.blob = blob
        self.sender = sender
        self.recipient_role = recipient_role


def create_share(
    pds: PersonalDataServer,
    fleet: TokenFleet,
    doc_ids: list[int],
    recipient_role: str,
    policy: UsagePolicy,
) -> SharingEnvelope:
    """Owner-initiated share of selected documents."""
    documents = [pds.read(pds.owner, doc_id) for doc_id in doc_ids]
    payload = json.dumps(
        {
            "policy": policy.to_json(),
            "recipient_role": recipient_role,
            "documents": [
                _serialize_document(document).decode() for document in documents
            ],
        }
    ).encode()
    cipher = fleet.payload_cipher()
    pds.audit.record(
        pds.owner.name, "owner", "share",
        f"docs:{sorted(doc_ids)}->{recipient_role}", True,
    )
    return SharingEnvelope(
        blob=cipher.encrypt(payload),
        sender=pds.owner.name,
        recipient_role=recipient_role,
    )


class ShareReader:
    """A recipient token enforcing the envelope's usage policy."""

    def __init__(
        self,
        fleet: TokenFleet,
        authority: CertificationAuthority,
        credential: Credential,
    ) -> None:
        self.fleet = fleet
        self.authority = authority
        self.credential = credential
        self._reads: dict[int, int] = {}  # envelope id -> reads used

    def open(
        self, envelope: SharingEnvelope, now: int = 0
    ) -> list[PersonalDocument]:
        """Decrypt and return the shared documents, enforcing usage rules."""
        if not self.authority.verify(self.credential, now):
            raise AccessDenied("credential invalid or expired")
        if self.credential.subject.role != envelope.recipient_role:
            raise AccessDenied(
                f"envelope is for role {envelope.recipient_role!r}, "
                f"credential says {self.credential.subject.role!r}"
            )
        cipher = self.fleet.payload_cipher()
        try:
            payload = json.loads(cipher.decrypt(envelope.blob))
        except IntegrityError as exc:
            raise AccessDenied("envelope is corrupted or forged") from exc
        policy = UsagePolicy.from_json(payload["policy"])
        if now > policy.expires_at:
            raise AccessDenied("share has expired")
        envelope_id = id(envelope)
        used = self._reads.get(envelope_id, 0)
        if used >= policy.max_reads:
            raise AccessDenied(
                f"usage budget exhausted ({policy.max_reads} reads)"
            )
        self._reads[envelope_id] = used + 1
        return [
            _deserialize_document(document.encode())
            for document in payload["documents"]
        ]
