"""Access control: intuitive, user-defined rules over personal documents.

Part I asks for *"intuitive, simple ways for users to define access control
rules"*. The model here: subjects (people or applications) carry a **role**;
rules grant or deny an **action** (read / search / aggregate / share) on
documents selected by **kind**; first matching rule wins, default is deny.
The owner always has every right on her own PDS — with one deliberate
exception mirroring the tutorial's observation that *"a user does not have
all the privileges over the data in her PDS"*: documents whose source set a
``sealed`` attribute (e.g. a doctor's raw notes) refuse even owner reads
while still participating in searches and aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AccessDenied
from repro.pds.datamodel import PersonalDocument

ACTIONS = ("read", "search", "aggregate", "share")

#: Wildcard used in rules to match any kind or any subject.
ANY = "*"


@dataclass(frozen=True)
class Subject:
    """Someone (or something) asking the PDS for data."""

    name: str
    role: str  # e.g. 'owner', 'doctor', 'family', 'app', 'querier'


@dataclass(frozen=True)
class AccessRule:
    """Grant or deny ``action`` on documents of ``kind`` to ``role``."""

    role: str
    action: str
    kind: str = ANY
    allow: bool = True

    def __post_init__(self) -> None:
        if self.action not in ACTIONS and self.action != ANY:
            raise ValueError(
                f"unknown action {self.action!r}; expected one of {ACTIONS}"
            )

    def matches(self, subject: Subject, action: str, kind: str) -> bool:
        return (
            self.role in (ANY, subject.role)
            and self.action in (ANY, action)
            and self.kind in (ANY, kind)
        )


class PrivacyPolicy:
    """An ordered rule list with deny-by-default semantics."""

    def __init__(self, rules: list[AccessRule] | None = None) -> None:
        self.rules: list[AccessRule] = list(rules or [])

    def add(self, rule: AccessRule) -> None:
        self.rules.append(rule)

    def allows(
        self, subject: Subject, action: str, document: PersonalDocument
    ) -> bool:
        """First-match evaluation; owner override; sealed-document override."""
        if document.attributes.get("sealed") and action == "read":
            # Not even the owner reads sealed content in the clear.
            return False
        if subject.role == "owner":
            return True
        for rule in self.rules:
            if rule.matches(subject, action, document.kind):
                return rule.allow
        return False

    def check(
        self, subject: Subject, action: str, document: PersonalDocument
    ) -> None:
        """Raise :class:`AccessDenied` when the policy rejects the access."""
        if not self.allows(subject, action, document):
            raise AccessDenied(
                f"{subject.role} {subject.name!r} may not {action} "
                f"{document.kind!r} document {document.doc_id}"
            )


def default_policy() -> PrivacyPolicy:
    """A sensible starter policy the examples build on.

    Doctors read/search medical data; family searches photos and mails;
    certified global queriers may aggregate (never read) anything; sharing
    is owner-only (no rule — deny).
    """
    return PrivacyPolicy(
        [
            AccessRule(role="doctor", action="read", kind="medical"),
            AccessRule(role="doctor", action="search", kind="medical"),
            AccessRule(role="family", action="search", kind="photo"),
            AccessRule(role="family", action="search", kind="email"),
            AccessRule(role="querier", action="aggregate", kind=ANY),
        ]
    )
