"""E11 — Privacy-preserving publishing through tokens (MetaP-flavoured).

Claims under test: the distributed (token-protocol) anonymization publishes
*exactly* the table the trusted-curator baseline would, for every k; the
achieved anonymity never falls below k; and information loss grows with k —
the utility/privacy curve the PPDP literature always reports.
"""

from __future__ import annotations

import random

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.ppdp.generalize import QuasiIdentifier, age_hierarchy, city_hierarchy
from repro.ppdp.kanon import anonymize_centralized, anonymize_with_tokens
from repro.ppdp.metrics import (
    average_class_ratio,
    discernibility,
    generalization_height,
)
from repro.workloads.people import generate_population

QIS = [
    QuasiIdentifier("age", age_hierarchy()),
    QuasiIdentifier("city", city_hierarchy()),
]


def health_records(num_people: int, seed: int = 71):
    population = generate_population(num_people, seed=seed)
    return [records[1] for records in population]


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E11",
        title="k-anonymous publishing: tokens vs trusted curator",
        claim="identical tables and levels; achieved k >= requested; "
        "information loss grows with k",
        columns=[
            "k", "levels", "achieved_k", "tables_equal",
            "gen_height", "discernibility", "c_avg",
        ],
    )
    records = health_records(120)
    nodes = [PdsNode(i, [record]) for i, record in enumerate(records)]
    fleet = TokenFleet(seed=11)
    for k in (2, 5, 10, 25):
        central = anonymize_centralized(records, QIS, "diagnosis", k)
        distributed = anonymize_with_tokens(
            nodes, fleet, QIS, "diagnosis", k, rng=random.Random(k)
        )
        experiment.add_row(
            k,
            str(distributed.levels),
            distributed.k_of(),
            distributed.records == central.records
            and distributed.levels == central.levels,
            round(generalization_height(distributed, QIS), 3),
            discernibility(distributed),
            round(average_class_ratio(distributed, k), 2),
        )
    return experiment


def test_e11_ppdp(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("tables_equal"))
    achieved = experiment.column("achieved_k")
    requested = experiment.column("k")
    assert all(a >= k for a, k in zip(achieved, requested))
    # Height is not monotone along the lattice's sum-order (two vectors of
    # equal total can differ in normalized height); the robust loss metric
    # is discernibility, which must grow with k. k=2 is still the least
    # generalized recoding overall.
    heights = experiment.column("gen_height")
    assert heights[0] == min(heights)
    disc = experiment.column("discernibility")
    assert disc == sorted(disc)

    records = health_records(60)
    benchmark(anonymize_centralized, records, QIS, "diagnosis", 5)


def test_e11_l_diversity_check(benchmark):
    """Extension: l-diversity of the k-anonymous output is reported."""
    from repro.ppdp.kanon import l_diversity

    experiment = Experiment(
        experiment_id="E11-ldiv",
        title="l-diversity achieved by k-anonymous recodings",
        claim="higher k coalesces classes and never lowers achieved l",
        columns=["k", "achieved_l"],
    )
    records = health_records(120)
    previous = 0
    for k in (2, 10, 25):
        result = anonymize_centralized(records, QIS, "diagnosis", k)
        achieved_l = l_diversity(records, QIS, result.levels, "diagnosis")
        experiment.add_row(k, achieved_l)
        assert achieved_l >= previous
        previous = achieved_l
    print()
    print(render_table(experiment))
    benchmark(lambda: None)
