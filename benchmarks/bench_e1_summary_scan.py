"""E1 — Summary scan vs. full table scan (the "17 IOs vs 640 IOs" slide).

Claim under test: a selection through the Keys+Bloom index costs the small
Bloom-summary log plus one page per (almost always true) positive, an order
of magnitude below scanning the table's data pages; and the gap holds as the
table grows and selectivity varies.
"""

from __future__ import annotations

import time

from repro.bench.harness import Experiment, record_wall_clock, run_and_print
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.relational.keyindex import KeyIndex
from repro.relational.schema import Column, TableSchema
from repro.relational.table import TableStorage

PAGE_SIZE = 512


def build_table(num_rows: int, distinct_cities: int):
    flash = NandFlash(
        FlashGeometry(page_size=PAGE_SIZE, pages_per_block=16, num_blocks=8192)
    )
    allocator = BlockAllocator(flash)
    schema = TableSchema(
        "CUSTOMER",
        [
            Column("CUSkey", "int"),
            Column("Name", "str"),
            Column("Address", "str"),
            Column("Comment", "str"),
            Column("City", "str"),
        ],
        primary_key="CUSkey",
    )
    table = TableStorage(schema, allocator)
    index = KeyIndex("CUSTOMER.City", allocator, bits_per_key=16.0)
    for row in range(num_rows):
        city = f"city-{row % distinct_cities:03d}"
        rowid = table.insert(
            (
                row,
                f"Customer#{row:06d}",
                f"{row % 997} rue de la Paix, BP {row % 89:05d}",
                "standard account, postal contact preferred",
                city,
            )
        )
        index.insert(city, rowid)
    table.flush()
    index.flush()
    return flash, table, index


def full_scan_ios(table: TableStorage, city: str) -> tuple[int, int]:
    """(pages read, matches) for a predicate evaluated by scanning."""
    matches = sum(1 for _, row in table.scan() if row[4] == city)
    return table.data_pages, matches


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E1",
        title="Bloom summary scan vs full table scan",
        claim=(
            "index lookup IOs ~= |summary log| + matching pages, an order "
            "of magnitude below the table's page count (slide: 17 vs 640)"
        ),
        columns=[
            "rows", "distinct", "table_pages", "summary_pages",
            "lookup_ios", "scan_ios", "speedup", "false_pos_pages",
        ],
    )
    for num_rows, distinct in [(2000, 100), (6000, 200), (12000, 200)]:
        _, table, index = build_table(num_rows, distinct)
        city = "city-007"
        expected = [r for r in range(num_rows) if r % distinct == 7]
        start = time.perf_counter()
        assert index.lookup(city) == expected
        record_wall_clock(
            experiment, f"lookup_r{num_rows}", time.perf_counter() - start
        )
        stats = index.last_lookup
        start = time.perf_counter()
        scan_ios, matches = full_scan_ios(table, city)
        record_wall_clock(
            experiment, f"scan_r{num_rows}", time.perf_counter() - start
        )
        assert matches == len(expected)
        experiment.add_row(
            num_rows,
            distinct,
            table.data_pages,
            stats.summary_pages,
            stats.total_pages,
            scan_ios,
            round(scan_ios / max(1, stats.total_pages), 1),
            stats.false_positive_pages,
        )
    return experiment


def test_e1_summary_scan(benchmark):
    experiment = run_and_print(build_experiment)
    # Shape assertions: the index always wins by a wide margin.
    speedups = experiment.column("speedup")
    assert all(speedup > 8 for speedup in speedups)
    lookup = experiment.column("lookup_ios")
    scan = experiment.column("scan_ios")
    assert all(l < s for l, s in zip(lookup, scan))

    _, _, index = build_table(4000, 100)
    benchmark(index.lookup, "city-007")


def test_e1_ablation_bits_per_key(benchmark):
    """Ablation: fewer Bloom bits/key -> smaller summaries, more false reads."""
    experiment = Experiment(
        experiment_id="E1-ablation",
        title="Bloom bits/key trade-off",
        claim="summary size shrinks and false-positive page reads grow "
        "as bits/key decreases",
        columns=["bits_per_key", "summary_pages", "false_pos_pages", "lookup_ios"],
    )
    flash = NandFlash(
        FlashGeometry(page_size=PAGE_SIZE, pages_per_block=16, num_blocks=8192)
    )
    allocator = BlockAllocator(flash)
    rows = 9000
    for bits in (2.0, 4.0, 8.0, 16.0):
        index = KeyIndex(f"city@{bits}", allocator, bits_per_key=bits)
        for row in range(rows):
            index.insert(f"city-{row % 50:03d}", row)
        index.flush()
        index.lookup("city-007")
        stats = index.last_lookup
        experiment.add_row(
            bits, stats.summary_pages, stats.false_positive_pages,
            stats.total_pages,
        )
    print()
    from repro.bench.harness import render_table

    print(render_table(experiment))
    summaries = experiment.column("summary_pages")
    assert summaries == sorted(summaries)  # more bits, more summary pages
    false_pos = experiment.column("false_pos_pages")
    assert false_pos[0] >= false_pos[-1]  # fewer bits, never fewer misreads

    benchmark(lambda: None)
