"""E4 — Pipelined SPJ via Tselect/Tjoin vs the RAM hash-join baseline.

Claim under test (the execution-plan slide): the tutorial's five-table
TPCD-like query runs as merge-intersection of sorted Tselect streams
expanded through Tjoin — in RAM independent of database size — while a
conventional hash join's RAM grows linearly; both produce identical rows.
"""

from __future__ import annotations

import time

from repro.bench.harness import (
    Experiment,
    record_wall_clock,
    render_table,
    run_and_print,
)
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.ram import RamArena
from repro.hardware.token import SecurePortableToken
from repro.relational.baseline import HashJoinExecutor
from repro.relational.query import EmbeddedDatabase
from repro.workloads import tpcd


def make_db(num_lineitems: int) -> EmbeddedDatabase:
    base = smart_usb_token()
    profile = HardwareProfile(
        name="bench-token",
        ram_bytes=64 * 1024,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(
            page_size=1024, pages_per_block=32, num_blocks=4096
        ),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    db = EmbeddedDatabase(
        SecurePortableToken(profile=profile), tpcd.tpcd_schema(), tpcd.ROOT_TABLE
    )
    tpcd.load(db, tpcd.generate(num_lineitems, seed=31))
    db.create_tselect("CUSTOMER", "Mktsegment")
    db.create_tselect("SUPPLIER", "Name")
    return db


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E4",
        title="5-table SPJ: Tselect/Tjoin pipeline vs RAM hash join",
        claim="pipelined plan: flat RAM, IO ~ result size; hash join: RAM "
        "grows with database; identical answers",
        columns=[
            "lineitems", "rows_out", "plan_ios", "plan_ram_B",
            "hashjoin_ram_B", "equal",
        ],
    )
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    for num_lineitems in (400, 1500, 4000):
        db = make_db(num_lineitems)
        start = time.perf_counter()
        rows, stats = db.query(query)
        record_wall_clock(
            experiment, f"query_l{num_lineitems}", time.perf_counter() - start
        )
        baseline_ram = RamArena(10**9)
        baseline_rows = HashJoinExecutor(
            db.schema, db.storages, tpcd.ROOT_TABLE, baseline_ram
        ).execute(query)
        experiment.add_row(
            num_lineitems,
            stats.rows_out,
            stats.flash_page_reads,
            stats.ram_high_water,
            baseline_ram.high_water,
            sorted(rows) == sorted(baseline_rows),
        )
    return experiment


def test_e4_spj(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("equal"))
    plan_ram = experiment.column("plan_ram_B")
    baseline_ram = experiment.column("hashjoin_ram_B")
    assert plan_ram[0] == plan_ram[-1]  # flat pipeline RAM
    assert baseline_ram[-1] > baseline_ram[0] * 5  # baseline grows
    assert all(ram <= 64 * 1024 for ram in plan_ram)

    db = make_db(1000)
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    benchmark(db.query, query)


def test_e4_selectivity_sweep(benchmark):
    """IO of the pipelined plan tracks result size, not table size."""
    experiment = Experiment(
        experiment_id="E4-selectivity",
        title="Plan IO vs predicate selectivity",
        claim="with both Tselects, plan IO scales with matching lineitems",
        columns=["segment", "supplier", "rows_out", "plan_ios"],
    )
    db = make_db(2500)
    for segment in ("HOUSEHOLD", "MACHINERY"):
        for supplier in ("SUPPLIER-0", "SUPPLIER-1"):
            rows, stats = db.query(
                tpcd.household_supplier_query(segment, supplier)
            )
            experiment.add_row(
                segment, supplier, stats.rows_out, stats.flash_page_reads
            )
    print()
    print(render_table(experiment))
    ios = experiment.column("plan_ios")
    out = experiment.column("rows_out")
    # More output never costs fewer IOs (monotone in result size).
    pairs = sorted(zip(out, ios))
    assert all(a[1] <= b[1] * 1.5 + 20 for a, b in zip(pairs, pairs[1:]))

    benchmark(lambda: None)
