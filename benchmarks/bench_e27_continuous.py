"""E27 — Standing queries: encrypted delta-maintenance vs recollection.

Claims under test (Issue 9's acceptance criteria):

* a standing ``SUM(salary)`` subscription maintained purely by folding
  encrypted ``Enc(new) · Enc(old)^-1`` deltas is **bit-exact**: at every
  sealed window boundary, the decrypted folded state equals plaintext
  full recollection over the live population — including under churn
  flips, ``forget()`` and record updates interleaved with the stream;
* steady-state ciphertext traffic is **sublinear in population size**: a
  refresh costs ``O(changed PDSs)`` ciphertexts, not ``O(population)``.
  With a fixed event rate, bytes-per-refresh stays flat from 10k to 1M
  PDSs while the recollect-per-refresh model grows 100x.

Row meaning: one row per population size — ticks driven, windows sealed,
deltas folded, steady-state delta bytes per refresh, the recollect model's
bytes per refresh (``online x 2`` ciphertexts at the same key size), their
ratio, and whether every boundary passed the equality gate. ``meta``
records the traffic model, bootstrap cost (the one unavoidable ``O(N)``
phase, equal to a single recollection), and the sublinearity verdict.

The equality gate raises on the first mismatch, in smoke mode too — the
``continuous-smoke`` CI job gates on it.
"""

from __future__ import annotations

import random
import time

from repro.bench.harness import (
    Experiment,
    record_wall_clock,
    run_and_print,
    scaled,
    smoke_mode,
)
from repro.crypto.paillier import generate_keypair
from repro.globalq.continuous import WindowSpec
from repro.globalq.queries import AggregateQuery
from repro.service import (
    QueryDescriptor,
    ResultCache,
    slim_population,
)
from repro.service.descriptor import FAMILY_SECURE_AGG
from repro.service.standing import StandingRegistry
from repro.workloads.people import CITIES, PersonRecord

QUERY = AggregateQuery.sum("salary")
DESCRIPTOR = QueryDescriptor(FAMILY_SECURE_AGG, QUERY)

#: Sliding window: every ``SLIDE`` ticks a window over the last ``WIDTH``
#: ticks of deltas is sealed and published — the "refresh" being priced.
WIDTH = 4
SLIDE = 2

#: Steady-state traffic must stay flat across a 100x population sweep;
#: event-mix jitter (no-op forgets, revived nodes) allows a small wobble.
FLATNESS_SLACK = 2.0


def parameters() -> dict:
    if smoke_mode():
        return {
            "populations": [200, 400, 800],
            "bits": 128,
            "ticks": 6,
            "events_per_tick": 8,
        }
    return {
        "populations": [10_000, 100_000, 1_000_000],
        "bits": 256,
        "ticks": 12,
        "events_per_tick": 64,
    }


def drive_timeline(
    registry: StandingRegistry,
    sub,
    private,
    ticks: int,
    events_per_tick: int,
    rng: random.Random,
) -> dict:
    """Advance simulated time tick by tick under a seeded event mix.

    Ordering matters: ``advance(t)`` first seals any boundary at ``t``
    (whose panes hold only deltas stamped ``< t``), the equality gate runs
    against the population state those deltas reflect, and only then do
    tick-``t`` events mutate the population (stamping their deltas ``t``).
    """
    population = registry.population
    cities = list(CITIES)
    windows = 0
    equal = 0
    online_at_boundary: list[int] = []
    for t in range(1, ticks + 1):
        for updates in registry.advance(t).values():
            for update in updates:
                windows += 1
                live = (
                    private.decrypt_signed(update.live_value),
                    private.decrypt_signed(update.live_count),
                )
                expected = registry.reference(sub.sub_id)
                if live != expected:
                    raise AssertionError(
                        f"equality gate: folded {live} != recollected "
                        f"{expected} at boundary {update.window_end}"
                    )
                equal += 1
                online_at_boundary.append(population.online_count)
        for _ in range(events_per_tick):
            pds = rng.randrange(len(population))
            roll = rng.random()
            if roll < 0.2:
                population.forget(pds)
            elif roll < 0.6:
                population.update_records(
                    pds,
                    [
                        PersonRecord(
                            {
                                "city": cities[rng.randrange(len(cities))],
                                "salary": float(1200 + rng.randrange(0, 4000)),
                            }
                        )
                    ],
                )
            else:
                population.set_online(pds, not population.is_online(pds))
    return {
        "windows": windows,
        "equal": equal,
        "avg_online": sum(online_at_boundary) / max(1, len(online_at_boundary)),
    }


def run_size(
    experiment: Experiment,
    size: int,
    bits: int,
    ticks: int,
    events_per_tick: int,
) -> dict:
    public, private = generate_keypair(bits, random.Random(41))
    population = slim_population(size)
    cache = ResultCache(4, population)
    registry = StandingRegistry(population, cache=cache)

    start = time.perf_counter()
    sub = registry.subscribe(DESCRIPTOR, WindowSpec(WIDTH, SLIDE), public)
    bootstrap_s = time.perf_counter() - start
    bootstrap_bytes = sub.delta_bytes
    bootstrap_deltas = sub.deltas_emitted
    record_wall_clock(experiment, f"bootstrap_{size}", bootstrap_s)

    start = time.perf_counter()
    outcome = drive_timeline(
        registry, sub, private, ticks, events_per_tick, random.Random(97 + size)
    )
    steady_s = time.perf_counter() - start
    record_wall_clock(experiment, f"steady_{size}", steady_s)
    # Sustained fold rate of the steady phase — the deltas/sec trajectory
    # E28 optimizes, tracked here across PRs at the one-fold-per-delta
    # baseline for regression comparison.
    steady_deltas = sub.deltas_emitted - bootstrap_deltas
    experiment.meta.setdefault("steady_fold_rate_per_s", {})[str(size)] = (
        round(steady_deltas / steady_s, 1) if steady_s > 0 else 0.0
    )

    cipher_bytes = 2 * ((public.n_squared.bit_length() + 7) // 8)
    refreshes = max(1, outcome["windows"])
    steady_bytes = sub.delta_bytes - bootstrap_bytes
    delta_per_refresh = steady_bytes / refreshes
    # Recollect-per-refresh: every online PDS re-sends Enc(value), Enc(count).
    recollect_per_refresh = outcome["avg_online"] * 2 * cipher_bytes
    experiment.add_row(
        size,
        ticks,
        outcome["windows"],
        sub.deltas_emitted,
        round(delta_per_refresh, 1),
        round(recollect_per_refresh, 1),
        round(recollect_per_refresh / max(1.0, delta_per_refresh), 1),
        outcome["equal"] == outcome["windows"],
    )
    return {
        "population": size,
        "bootstrap_deltas": bootstrap_deltas,
        "bootstrap_bytes": bootstrap_bytes,
        "steady_bytes": steady_bytes,
        "delta_bytes_per_refresh": delta_per_refresh,
        "recollect_bytes_per_refresh": recollect_per_refresh,
        "metrics": registry.registry.snapshot(),
    }


def build_experiment() -> Experiment:
    params = parameters()
    experiment = Experiment(
        "e27",
        "Standing queries: encrypted delta-maintenance for live windows",
        "folded window state is bit-exact vs recollection at every "
        "boundary; steady-state ciphertext traffic is O(changes), flat "
        "across a 100x population sweep",
        [
            "population", "ticks", "windows", "deltas",
            "delta_B_refresh", "recollect_B_refresh", "ratio", "exact",
        ],
    )
    experiment.meta["smoke_mode"] = smoke_mode()
    experiment.meta["window"] = {"width": WIDTH, "slide": SLIDE}
    experiment.meta["paillier_bits"] = params["bits"]
    experiment.meta["events_per_tick"] = params["events_per_tick"]
    experiment.meta["traffic_model"] = (
        "delta path: 2 ciphertexts per changed PDS per refresh; recollect "
        "path: 2 ciphertexts per online PDS per refresh"
    )
    sizes = []
    for size in params["populations"]:
        sizes.append(
            run_size(
                experiment,
                size,
                params["bits"],
                params["ticks"],
                params["events_per_tick"],
            )
        )
    experiment.meta["sizes"] = sizes
    per_refresh = [s["delta_bytes_per_refresh"] for s in sizes]
    experiment.meta["traffic_flat"] = bool(
        max(per_refresh) <= FLATNESS_SLACK * min(per_refresh)
    )
    return experiment


def test_e27_continuous(benchmark):
    experiment = run_and_print(build_experiment)
    # The equality gate already raised on any boundary mismatch; the rows
    # must additionally show it actually ran at every size.
    assert all(experiment.column("exact"))
    assert all(windows > 0 for windows in experiment.column("windows"))
    # Sublinearity: bytes-per-refresh flat across the sweep while the
    # recollect model tracks population size.
    assert experiment.meta["traffic_flat"]
    recollect = experiment.column("recollect_B_refresh")
    sizes = experiment.column("population")
    # The recollect model tracks the sweep's population growth (within the
    # wobble churn and forgets introduce); the delta path does not.
    growth = sizes[-1] / sizes[0]
    assert recollect[-1] > 0.3 * growth * recollect[0]
    if not smoke_mode():
        assert max(sizes) == 1_000_000
        # At 1M PDSs a refresh over the delta stream beats recollection by
        # >=100x in ciphertext bytes.
        assert experiment.column("ratio")[-1] >= 100.0

    # pytest-benchmark row: the steady-state fold cost of one small window.
    public, private = generate_keypair(128, random.Random(3))
    population = slim_population(64)
    registry = StandingRegistry(population)
    sub = registry.subscribe(DESCRIPTOR, WindowSpec(WIDTH, SLIDE), public)
    rng = random.Random(11)
    clock = [0]

    def one_tick():
        clock[0] += 1
        registry.advance(clock[0])
        pds = rng.randrange(len(population))
        population.set_online(pds, not population.is_online(pds))

    benchmark(one_tick)
    live = private.decrypt_signed(sub.standing.current()[0])
    assert (live, private.decrypt_signed(sub.standing.current()[1])) == (
        registry.reference(sub.sub_id)
    )


if __name__ == "__main__":
    run_and_print(build_experiment)
