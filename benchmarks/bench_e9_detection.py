"""E9 — Catching the weakly malicious SSI.

Claims under test (the threat-model slide: covert adversaries "must be
prevented via security primitives"): forgery is detected with certainty
(authenticated encryption), replays surface at the querier merge, and
omission is caught by participation audits with probability
1 - (1-f)^k — measured empirically against the analytic curve. Honest runs
never raise a false alarm.
"""

from __future__ import annotations

import random

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.globalq.protocol import PdsNode, TokenFleet, TrustedAggregator
from repro.globalq.queries import AggregateQuery
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.globalq.ssi import SsiBehavior, SupportingServerInfrastructure
from repro.globalq.verification import (
    detection_probability,
    participation_audit,
)
from repro.workloads.people import generate_population

QUERY = AggregateQuery.count(group_by="city", where=(("kind", "profile"),))


def make_nodes(num_pds: int):
    population = generate_population(num_pds, seed=61)
    return [PdsNode(i, records) for i, records in enumerate(population)]


def audit_trial(
    nodes, fleet, drop_fraction: float, sample_size: int, seed: int
) -> bool:
    """One collection under a dropping SSI + one audit; True if caught."""
    ssi = SupportingServerInfrastructure(
        SsiBehavior(drop_fraction=drop_fraction), random.Random(seed)
    )
    for node in nodes:
        ssi.collect(node.contributions(QUERY, fleet))
    outcomes = [
        TrustedAggregator(fleet).aggregate(partition)
        for partition in ssi.partition_random(32)
    ]
    audit = participation_audit(
        {node.pds_id for node in nodes},
        outcomes,
        sample_size,
        random.Random(seed + 1),
    )
    return audit.cheating_detected


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E9",
        title="Omission detection rate vs audit sample size",
        claim="measured detection tracks 1-(1-f)^k; honest runs never flag",
        columns=[
            "drop_fraction", "sample_k", "measured", "analytic",
        ],
    )
    nodes = make_nodes(120)
    fleet = TokenFleet(seed=8)
    trials = 40
    for drop in (0.05, 0.15, 0.4):
        for sample in (3, 10, 30):
            caught = sum(
                1
                for trial in range(trials)
                if audit_trial(nodes, fleet, drop, sample, seed=trial * 7)
            )
            experiment.add_row(
                drop,
                sample,
                round(caught / trials, 3),
                round(detection_probability(drop, sample), 3),
            )
    return experiment


def test_e9_omission_detection(benchmark):
    experiment = run_and_print(build_experiment)
    for row in experiment.rows:
        drop, sample, measured, analytic = row
        assert abs(measured - analytic) < 0.25  # binomial noise over 40 trials
    # Monotone: more sampling or heavier dropping -> better detection.
    by_drop = {}
    for drop, sample, measured, _ in experiment.rows:
        by_drop.setdefault(drop, []).append((sample, measured))
    for series in by_drop.values():
        series.sort()
        assert series[-1][1] >= series[0][1]

    nodes = make_nodes(60)
    fleet = TokenFleet(seed=9)
    benchmark(audit_trial, nodes, fleet, 0.2, 10, 123)


def test_e9_forgery_and_replay(benchmark):
    """Forgery: always detected. Replay: detected at realistic rates.

    Honest runs never flag (no false positives over repeated runs)."""
    experiment = Experiment(
        experiment_id="E9-integrity",
        title="Forgery / replay / honest-run detection",
        claim="forged blobs always fail authentication; replays collide at "
        "the querier; honest runs are silent",
        columns=["behavior", "runs", "detected_runs", "false_positives"],
    )
    nodes = make_nodes(80)
    fleet = TokenFleet(seed=10)
    behaviors = {
        "forge(3)": SsiBehavior(forge_count=3),
        "duplicate(0.2)": SsiBehavior(duplicate_fraction=0.2),
        "honest": SsiBehavior(),
    }
    runs = 10
    for name, behavior in behaviors.items():
        detected = 0
        for trial in range(runs):
            report = SecureAggregationProtocol(
                fleet,
                partition_size=16,
                ssi_behavior=behavior,
                rng=random.Random(trial),
            ).run(nodes, QUERY)
            if report.cheating_detected:
                detected += 1
        false_positives = detected if name == "honest" else 0
        experiment.add_row(name, runs, detected, false_positives)
    print()
    print(render_table(experiment))
    rows = {row[0]: row for row in experiment.rows}
    assert rows["forge(3)"][2] == runs  # certainty
    assert rows["duplicate(0.2)"][2] >= runs * 0.8
    assert rows["honest"][2] == 0

    benchmark(lambda: None)
