"""E3 — Log-only reorganization: sequential index -> B-tree-like index.

Claims under test (the "Scalability => timely reorganize the index" slide):
lookup cost collapses from O(|summary log|) to O(tree height); the
reorganization writes only sequential pages (the flash model proves it by
not raising); temporary sort runs are reclaimed block-wise; and the process
is interruptible while the source index keeps answering.
"""

from __future__ import annotations

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.relational.keyindex import KeyIndex
from repro.relational.reorg import ReorganizationTask, reorganize

PAGE_SIZE = 512


def build_source(num_keys: int, distinct: int):
    flash = NandFlash(
        FlashGeometry(page_size=PAGE_SIZE, pages_per_block=16, num_blocks=16384)
    )
    allocator = BlockAllocator(flash)
    index = KeyIndex("bench", allocator, bits_per_key=16.0)
    for row in range(num_keys):
        index.insert(f"key-{(row * 7919) % distinct:05d}", row)
    index.flush()
    return flash, allocator, index


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E3",
        title="Reorganization: lookup cost before/after, build cost",
        claim="lookups drop from O(summary log) to O(height + matches); "
        "the build issues only sequential programs; temps reclaimed",
        columns=[
            "keys", "before_ios", "after_ios", "height",
            "build_programs", "build_erases", "answers_equal",
        ],
    )
    for num_keys in (5000, 20000, 60000):
        # Hold duplicates-per-key constant (~12) so the after-reorg cost
        # isolates structure height rather than result size.
        flash, allocator, source = build_source(num_keys, distinct=num_keys // 12)
        probe = "key-00007"
        before_answer = source.lookup(probe)
        before_ios = source.last_lookup.total_pages
        snapshot = flash.stats.snapshot()
        reorganized = reorganize(
            source, allocator, RamArena(64 * 1024), sort_buffer_bytes=16 * 1024
        )
        delta = flash.stats.delta(snapshot)
        after_answer = reorganized.lookup(probe)
        after_ios = reorganized.last_lookup.total_pages
        experiment.add_row(
            num_keys,
            before_ios,
            after_ios,
            reorganized.height,
            delta.page_programs,
            delta.block_erases,
            after_answer == before_answer,
        )
    return experiment


def test_e3_reorg(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("answers_equal"))
    before = experiment.column("before_ios")
    after = experiment.column("after_ios")
    assert all(b > a * 2 for b, a in zip(before, after))
    # Lookup cost after reorg is height + duplicate pages: nearly flat,
    # while the sequential index cost grows linearly with keys.
    assert before[-1] > before[0] * 5
    assert after[-1] <= after[0] + 3

    flash, allocator, source = build_source(20000, 400)
    reorganized = reorganize(
        source, allocator, RamArena(64 * 1024), sort_buffer_bytes=16 * 1024
    )
    benchmark(reorganized.lookup, "key-00007")


def test_e3_ablation_sort_buffer(benchmark):
    """Ablation: smaller sort buffers -> more runs/passes -> more writes."""
    experiment = Experiment(
        experiment_id="E3-ablation",
        title="Sort buffer size vs reorganization write cost",
        claim="halving the RAM sort buffer increases sequential write "
        "volume (extra merge passes), never randomizes writes",
        columns=["sort_buffer_B", "steps", "build_programs"],
    )
    for sort_buffer in (2048, 8192, 32768):
        flash, allocator, source = build_source(20000, 400)
        snapshot = flash.stats.snapshot()
        task = ReorganizationTask(
            source, allocator, RamArena(64 * 1024),
            sort_buffer_bytes=sort_buffer,
        )
        task.run()
        delta = flash.stats.delta(snapshot)
        experiment.add_row(sort_buffer, task.completed_steps, delta.page_programs)
    print()
    print(render_table(experiment))
    programs = experiment.column("build_programs")
    assert programs[0] >= programs[-1]

    benchmark(lambda: None)


def test_e3_interruptibility(benchmark):
    """The background property: queries interleave with reorg steps."""
    _, allocator, source = build_source(10000, 200)
    task = ReorganizationTask(
        source, allocator, RamArena(64 * 1024), sort_buffer_bytes=4096
    )
    expected = source.lookup("key-00003")
    steps = 0
    while not task.done:
        task.step()
        steps += 1
        if steps % 3 == 0:
            assert source.lookup("key-00003") == expected
    assert steps > 5
    assert task.result.lookup("key-00003") == expected
    benchmark(lambda: None)
