"""E28 — High-throughput delta ingestion: the deltas/sec knee.

Claims under test (Issue 10's acceptance criteria):

* **exactness is free**: every ingest configuration — one-fold-per-delta
  legacy, PDS-side pane coalescing (``DeltaBatcher``), batched folds of any
  chunk size, sharded folds on 1 or 2 workers — produces **bit-identical**
  pane-product ciphertexts at every sealed window boundary (same integers
  mod n², not merely the same plaintexts), and decrypting the folded state
  equals plaintext recollection over the tracked contribution state;
* **throughput is not**: the batched path sustains ``>= 5x`` the
  application deltas/sec of the PR-9 one-frame-one-fold path, because
  coalescing ``changes_per_pane`` updates of one PDS into a single wire
  delta divides the SSI's fold work (and frame count) by that factor;
* at the service layer, the bounded ingest queue **sheds instead of
  growing**: an open-loop burst past the queue depth raises ``Overloaded``
  per excess frame and every offered delta is accounted folded/shed/
  rejected — none silently vanish.

Three phases:

* **A — fold matrix**: one pre-encrypted delta timeline replayed through
  every (mode, workers, batch) cell at the ``StandingRegistry`` layer, with
  the equality gate armed at every sealed boundary. SSI-side wall clock
  only — PDS-side coalescing cost is measured separately and reported in
  ``meta`` (it is distributed across data owners, not the SSI's bill).
* **B — open-loop knee**: ``OpenLoopDeltaStorm`` fires pre-encoded frames
  at a running ``SsiQueryService`` across an arrival-rate ladder;
  ``find_knee`` locates the highest rate where folds keep up. Legacy mode
  offers one ``DELTA`` frame per delta; batched modes offer coalesced
  ``DELTA_BATCH`` frames, so their application-level knee is the wire knee
  times the coalescing factor.
* **C — overload probe**: a no-yield burst into a tiny ingest queue must
  shed, and ``folded + shed + rejected == offered``.

The equality gate raises on the first mismatch, in smoke mode too — the
``continuous-smoke`` CI job runs this bench with workers=2 armed.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.bench.harness import (
    Experiment,
    record_wall_clock,
    run_and_print,
    smoke_mode,
)
from repro.crypto.paillier import generate_keypair
from repro.globalq.continuous import (
    DeltaBatcher,
    EncryptedDelta,
    FoldShardTask,
    WindowSpec,
    fold_shard,
)
from repro.globalq.parallel import WorkerPool
from repro.globalq.queries import AggregateQuery
from repro.net.codec import (
    KIND_DELTA,
    KIND_DELTA_BATCH,
    Frame,
    encode_delta,
    encode_delta_batch,
)
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    OpenLoopDeltaStorm,
    QueryDescriptor,
    ServiceConfig,
    SsiQueryService,
    find_knee,
    slim_population,
)
from repro.service.descriptor import FAMILY_SECURE_AGG
from repro.service.standing import StandingRegistry

QUERY = AggregateQuery.sum("salary")
DESCRIPTOR = QueryDescriptor(FAMILY_SECURE_AGG, QUERY)

WIDTH = 4
SLIDE = 2

#: Wire knee ladders are counted in *wire* deltas/s (what the SSI folds);
#: application rates multiply by each mode's coalescing factor.
KNEE_THRESHOLD = 0.9


def parameters() -> dict:
    if smoke_mode():
        return {
            "bits": 128,
            "pds_count": 32,
            "ticks": 6,
            "changes_per_pds_per_tick": 8,
            "workers": [1, 2],
            "batch_sizes": [16, 128],
            "fold_shard_size": 16,
            "knee_rates": [1000, 3000, 6000],
            "knee_seconds": 0.25,
            "knee_max_raw": 6000,
            "knee_frame_raw": 128,
            "burst_frames": 64,
        }
    return {
        "bits": 256,
        "pds_count": 128,
        "ticks": 10,
        "changes_per_pds_per_tick": 8,
        "workers": [1, 2],
        "batch_sizes": [64, 512],
        "fold_shard_size": 32,
        "knee_rates": [60000, 120000, 240000, 480000],
        "knee_seconds": 0.25,
        "knee_max_raw": 150000,
        "knee_frame_raw": 256,
        "burst_frames": 512,
    }


# ----------------------------------------------------------------------
# Phase A — the fold matrix
# ----------------------------------------------------------------------
def build_timeline(public, pds_count, ticks, changes_per_pds_per_tick, seed):
    """One pre-encrypted delta timeline plus its plaintext ledger.

    Every PDS changes ``changes_per_pds_per_tick`` times per tick (the hot
    write-storm shape coalescing targets: with pane width ``SLIDE`` that is
    ``changes * SLIDE`` raw deltas per (PDS, pane), coalescing to one wire
    delta). ``expected[b]`` is the plaintext ``(sum, count)`` a full
    recollection would produce at boundary ``b`` — the fold must decrypt to
    exactly it.
    """
    rng = random.Random(seed)
    pool = public.blinding_pool(seed=seed)
    by_tick: list[list[EncryptedDelta]] = []
    running = [0, 0]  # cumulative (value, count) of all deltas so far
    expected: dict[int, tuple[int, int]] = {}
    seqs = dict.fromkeys(range(pds_count), 0)
    counted = set()
    for t in range(ticks):
        if t % SLIDE == 0 and t > 0:
            expected[t] = (running[0], running[1])
        tick: list[EncryptedDelta] = []
        for pds in range(pds_count):
            for _ in range(changes_per_pds_per_tick):
                dv = rng.randrange(-50, 51)
                dc = 0
                if pds not in counted:
                    counted.add(pds)
                    dc = 1
                seqs[pds] += 1
                tick.append(
                    EncryptedDelta(
                        pds_id=pds,
                        seq=seqs[pds],
                        timestamp=t,
                        value_cipher=public.encrypt(dv, pool=pool),
                        count_cipher=public.encrypt(dc, pool=pool),
                    )
                )
                running[0] += dv
                running[1] += dc
        by_tick.append(tick)
    for b in range(SLIDE, ticks + 1, SLIDE):
        if b not in expected:
            expected[b] = (running[0], running[1])
    return by_tick, expected


def fresh_registry(public, pds_count, pool, shard_size):
    population = slim_population(pds_count)
    registry = StandingRegistry(
        population,
        registry=MetricsRegistry(),
        fold_pool=pool,
        fold_shard_size=shard_size,
    )
    sub = registry.subscribe(
        DESCRIPTOR, WindowSpec(WIDTH, SLIDE), public, local_source=False
    )
    return registry, sub


def run_cell(
    public,
    private,
    by_tick,
    expected,
    pds_count,
    mode: str,
    pool,
    shard_size,
    batch_size: int,
) -> dict:
    """Replay the timeline through one ingest configuration.

    Returns the SSI-side wall clock, the PDS-side (coalescing) wall clock,
    the published boundary ciphertexts (for the cross-cell bit-identity
    assertion), and the equality-gate verdict.
    """
    registry, sub = fresh_registry(public, pds_count, pool, shard_size)
    batcher = DeltaBatcher(public.n, sub.spec) if mode != "legacy" else None
    ciphers: list[tuple] = []
    gate_ok = True
    raw = 0
    wire = 0
    ssi_s = 0.0
    pds_s = 0.0
    for t, tick in enumerate(by_tick):
        raw += len(tick)
        if batcher is None:
            entries = [(sub.sub_id, delta) for delta in tick]
        else:
            started = time.perf_counter()
            for delta in tick:
                batcher.add(sub.sub_id, delta)
            entries = batcher.flush()
            pds_s += time.perf_counter() - started
        wire += len(entries)
        started = time.perf_counter()
        if mode == "legacy":
            for sub_id, delta in entries:
                registry.ingest(sub_id, delta)
        else:
            for i in range(0, len(entries), batch_size):
                registry.ingest_many(entries[i : i + batch_size])
        updates = registry.advance(t + 1).get(sub.sub_id, [])
        ssi_s += time.perf_counter() - started
        for update in updates:
            ciphers.append(
                (
                    update.window_end,
                    update.live_value,
                    update.live_count,
                    update.window_value,
                    update.window_count,
                )
            )
            live = (
                private.decrypt_signed(update.live_value),
                private.decrypt_signed(update.live_count),
            )
            if live != expected[update.window_end]:
                gate_ok = False
                raise AssertionError(
                    f"equality gate [{mode}]: folded {live} != recollected "
                    f"{expected[update.window_end]} at {update.window_end}"
                )
    return {
        "raw": raw,
        "wire": wire,
        "ssi_s": ssi_s,
        "pds_s": pds_s,
        "ciphers": ciphers,
        "gate_ok": gate_ok,
        "duplicates": sub.standing.state.duplicates,
    }


def run_matrix(experiment: Experiment, params, public, private) -> dict:
    by_tick, expected = build_timeline(
        public,
        params["pds_count"],
        params["ticks"],
        params["changes_per_pds_per_tick"],
        seed=2028,
    )
    shard = params["fold_shard_size"]
    pool = WorkerPool(max(params["workers"]))
    # Warm the worker processes outside every timed region.
    pool.submit(fold_shard, FoldShardTask(0, 25, (3,), (4,))).result()

    legacy = run_cell(
        public, private, by_tick, expected, params["pds_count"],
        "legacy", None, shard, 1,
    )
    legacy_rate = legacy["raw"] / legacy["ssi_s"]
    experiment.add_row(
        "legacy", 0, 1, legacy["raw"], legacy["wire"],
        round(legacy["ssi_s"], 4), round(legacy_rate, 1), 1.0, True,
    )

    cells = []
    for workers in params["workers"]:
        for batch_size in params["batch_sizes"]:
            cell = run_cell(
                public, private, by_tick, expected, params["pds_count"],
                "batched" if workers == 1 else "batched+sharded",
                pool if workers > 1 else None,
                shard, batch_size,
            )
            # Serial == parallel == legacy: the same integers mod n² at
            # every sealed boundary, for every (workers, batch) cell.
            if cell["ciphers"] != legacy["ciphers"]:
                raise AssertionError(
                    f"bit-identity broke at workers={workers} "
                    f"batch={batch_size}"
                )
            rate = cell["raw"] / cell["ssi_s"]
            speedup = rate / legacy_rate
            experiment.add_row(
                "batched" if workers == 1 else "batched+sharded",
                workers, batch_size, cell["raw"], cell["wire"],
                round(cell["ssi_s"], 4), round(rate, 1),
                round(speedup, 2), cell["gate_ok"],
            )
            cells.append(
                {
                    "workers": workers,
                    "batch": batch_size,
                    "speedup": round(speedup, 2),
                    "pds_side_s": round(cell["pds_s"], 4),
                }
            )
    pool.close()
    return {
        "legacy_deltas_per_s": round(legacy_rate, 1),
        "coalesce_factor": round(
            legacy["raw"] / max(1, coalesced_wire_count(by_tick)), 2
        ),
        "boundaries_checked": len(legacy["ciphers"]),
        "cells": cells,
    }


def coalesced_wire_count(by_tick) -> int:
    """Wire deltas after coalescing: one per (PDS, pane) touched."""
    panes = set()
    for tick in by_tick:
        for delta in tick:
            panes.add((delta.pds_id, delta.timestamp // SLIDE))
    return len(panes)


# ----------------------------------------------------------------------
# Phase B — the open-loop knee
# ----------------------------------------------------------------------
def cipher_palette(public, seed: int, size: int = 48):
    """A small pool of pre-made ciphertexts storm streams sample from.

    Phase B measures the SSI's fold rate — the multiplications it performs
    are magnitude-identical whether the storm's ciphertexts are all fresh
    or drawn from a palette, and the palette keeps frame pre-encoding from
    dominating the bench's own wall clock at the top rates. (Phase A uses
    all-fresh ciphertexts; its equality gate needs real plaintext ledgers.)
    """
    rng = random.Random(seed)
    pool = public.blinding_pool(seed=seed)
    values = [
        public.encrypt(rng.randrange(-20, 21), pool=pool) for _ in range(size)
    ]
    zero_count = public.encrypt(0, pool=pool)
    return values, zero_count


def storm_frames(public, mode: str, raw_count: int, frame_raw: int, seed):
    """Pre-encode one rate point's frames; returns (frames, wire_count).

    Legacy: one ``DELTA`` frame per raw delta. Batched: raw deltas chunked
    ``frame_raw`` at a time through a persistent ``DeltaBatcher`` (seqs
    stay monotone per PDS across frames) into ``DELTA_BATCH`` frames. All
    timestamps are 0 — the knee is about sustained fold rate, not window
    sealing, and Phase A already gates sealing exactness.
    """
    rng = random.Random(seed)
    values, zero_count = cipher_palette(public, seed)
    hot = 32
    seqs = dict.fromkeys(range(hot), 0)
    deltas = []
    for _ in range(raw_count):
        pds = rng.randrange(hot)
        seqs[pds] += 1
        deltas.append(
            EncryptedDelta(
                pds_id=pds,
                seq=seqs[pds],
                timestamp=0,
                value_cipher=rng.choice(values),
                count_cipher=zero_count,
            )
        )
    frames = []
    wire = 0
    if mode == "legacy":
        for i, delta in enumerate(deltas):
            frames.append(
                (
                    Frame(KIND_DELTA, "pds", i + 1, encode_delta(1, delta)),
                    1,
                )
            )
        wire = len(deltas)
    else:
        batcher = DeltaBatcher(public.n, WindowSpec(WIDTH, SLIDE))
        for i in range(0, len(deltas), frame_raw):
            for delta in deltas[i : i + frame_raw]:
                batcher.add(1, delta)
            entries = batcher.flush()
            wire += len(entries)
            frames.append(
                (
                    Frame(
                        KIND_DELTA_BATCH,
                        "pds",
                        len(frames) + 1,
                        encode_delta_batch(entries),
                    ),
                    len(entries),
                )
            )
    return frames, wire


def coalesce_probe(public, params, mode: str) -> float:
    """Raw-per-wire ratio of one mode's frame stream (1.0 for legacy)."""
    if mode == "legacy":
        return 1.0
    _frames, probe_wire = storm_frames(
        public, mode, params["knee_frame_raw"], params["knee_frame_raw"],
        seed=1,
    )
    return params["knee_frame_raw"] / max(1, probe_wire)


async def run_knee_point(
    public, params, mode: str, wire_rate: float, pool, factor: float
):
    """One (mode, rate) cell: fresh service, pre-encoded frames, storm."""
    # Offer the target *wire* rate: generate enough raw deltas that the
    # coalesced stream carries ~wire_rate × seconds wire deltas, capped so
    # frame pre-encoding stays bounded at the top of the ladder.
    raw_count = max(8, int(wire_rate * params["knee_seconds"] * factor))
    raw_count = min(raw_count, params["knee_max_raw"])
    frames, wire = storm_frames(
        public, mode, raw_count, params["knee_frame_raw"],
        seed=int(wire_rate) + (1 if mode == "legacy" else 2),
    )
    config = ServiceConfig(
        pool=pool if mode == "batched+sharded" else None,
        fold_shard_size=params["fold_shard_size"],
    )
    service = SsiQueryService(
        slim_population(64), config=config, registry=MetricsRegistry()
    )
    service.start()
    try:
        service.standing.subscribe(
            DESCRIPTOR, WindowSpec(WIDTH, SLIDE), public, local_source=False
        )
        frame_rate = wire_rate * len(frames) / max(1, wire)
        report = await OpenLoopDeltaStorm(service, seed=7).run(
            frames, frame_rate, report_rate=wire_rate
        )
    finally:
        await service.stop()
    return report, raw_count


async def run_knee_sweep(params, public) -> dict:
    pool = WorkerPool(max(params["workers"]))
    pool.submit(fold_shard, FoldShardTask(0, 25, (3,), (4,))).result()
    sweep = {}
    try:
        for mode in ("legacy", "batched", "batched+sharded"):
            reports = []
            raw_per_wire = coalesce_probe(public, params, mode)
            for rate in params["knee_rates"]:
                report, raw_count = await run_knee_point(
                    public, params, mode, rate, pool, raw_per_wire
                )
                reports.append(report)
                if report.offered:
                    raw_per_wire = raw_count / report.offered
            knee = find_knee(reports, threshold=KNEE_THRESHOLD)
            # The nominal knee (find_knee over offered rates) only moves
            # when shedding starts; an open-loop generator that cannot
            # push frames faster than the service absorbs them saturates
            # *by duration* instead — the burst stretches past its nominal
            # length. "Sustained" is the honest number: deltas actually
            # through the pipe per second of wall clock.
            sustained = max(
                r.completed / r.duration_s
                for r in reports
                if r.duration_s > 0
            )
            sweep[mode] = {
                "knee_wire_deltas_per_s": knee["knee_rate_qps"],
                "knee_efficiency": round(knee["knee_efficiency"], 3),
                "coalesce_factor": round(raw_per_wire, 2),
                "sustained_wire_per_s": round(sustained, 1),
                "sustained_app_per_s": round(sustained * raw_per_wire, 1),
                "points": [
                    {
                        "wire_rate": r.rate,
                        "offered": r.offered,
                        "folded": r.completed,
                        "shed": r.shed,
                        "duration_s": round(r.duration_s, 3),
                        "achieved_wire_per_s": round(
                            r.completed / r.duration_s, 1
                        )
                        if r.duration_s > 0
                        else 0.0,
                    }
                    for r in reports
                ],
            }
    finally:
        pool.close()
    legacy_rate = sweep["legacy"]["sustained_app_per_s"]
    for mode in ("batched", "batched+sharded"):
        sweep[mode]["sustained_vs_legacy"] = round(
            sweep[mode]["sustained_app_per_s"] / max(1.0, legacy_rate), 2
        )
    return sweep


# ----------------------------------------------------------------------
# Phase C — overload probe
# ----------------------------------------------------------------------
async def run_overload_probe(params, public) -> dict:
    """Burst past a tiny ingest queue with no yields: shedding must carry
    the overflow and the delta accounting must balance exactly."""
    config = ServiceConfig(ingest_queue_depth=8, ingest_batch_max=4)
    service = SsiQueryService(
        slim_population(64), config=config, registry=MetricsRegistry()
    )
    service.start()
    try:
        service.standing.subscribe(
            DESCRIPTOR, WindowSpec(WIDTH, SLIDE), public, local_source=False
        )
        frames, _ = storm_frames(
            public, "legacy", params["burst_frames"], 1, seed=99
        )
        for frame, _count in frames:
            service.ingest_frame(frame)  # no yield: the loop never drains
        await service.drain_ingest()
    finally:
        counters = {
            name: service.registry.counter(name).value
            for name in (
                "globalq.ingest.folded",
                "globalq.ingest.shed",
                "globalq.ingest.rejected",
            )
        }
        await service.stop()
    offered = len(frames)
    accounted = sum(counters.values())
    return {
        "offered": offered,
        "folded": counters["globalq.ingest.folded"],
        "shed": counters["globalq.ingest.shed"],
        "rejected": counters["globalq.ingest.rejected"],
        "balanced": accounted == offered,
        "shed_engaged": counters["globalq.ingest.shed"] > 0,
    }


# ----------------------------------------------------------------------
def build_experiment() -> Experiment:
    params = parameters()
    experiment = Experiment(
        "e28",
        "High-throughput delta ingestion: batching, sharding, the knee",
        "every (mode, workers, batch) cell folds bit-identical pane "
        "products and decrypts to recollection; the batched path sustains "
        ">=5x the application deltas/sec of one-frame-one-fold; the "
        "bounded ingest queue sheds instead of growing",
        [
            "mode", "workers", "batch", "raw_deltas", "wire_deltas",
            "ssi_s", "deltas_per_s", "speedup", "exact",
        ],
    )
    experiment.meta["smoke_mode"] = smoke_mode()
    experiment.meta["window"] = {"width": WIDTH, "slide": SLIDE}
    experiment.meta["paillier_bits"] = params["bits"]
    experiment.meta["fold_shard_size"] = params["fold_shard_size"]
    experiment.meta["throughput_model"] = (
        "deltas_per_s charges the SSI only: raw application deltas over "
        "SSI-side fold+advance wall clock. PDS-side coalescing cost is "
        "reported per cell as pds_side_s — it is distributed across data "
        "owners and overlaps SSI work in deployment"
    )
    experiment.meta["sharding_note"] = (
        "at these key sizes one fold is ~microseconds, so shipping shards "
        "to worker processes trades big-int time for IPC time; the "
        "workers=2 cells exist to pin bit-identity of the sharded path, "
        "and the throughput win comes from coalescing + batched folds"
    )

    public, private = generate_keypair(params["bits"], random.Random(41))

    started = time.perf_counter()
    experiment.meta["matrix"] = run_matrix(experiment, params, public, private)
    record_wall_clock(experiment, "phase_a_matrix", time.perf_counter() - started)

    started = time.perf_counter()
    experiment.meta["knee"] = asyncio.run(run_knee_sweep(params, public))
    record_wall_clock(experiment, "phase_b_knee", time.perf_counter() - started)

    started = time.perf_counter()
    experiment.meta["overload"] = asyncio.run(
        run_overload_probe(params, public)
    )
    record_wall_clock(
        experiment, "phase_c_overload", time.perf_counter() - started
    )
    return experiment


def test_e28_ingest(benchmark):
    experiment = run_and_print(build_experiment)
    # Exactness at every cell — the gate already raised on any plaintext
    # mismatch; bit-identity across cells raised inside run_matrix.
    assert all(experiment.column("exact"))
    by_mode: dict[str, list[float]] = {}
    for mode, s in zip(
        experiment.column("mode"), experiment.column("speedup")
    ):
        by_mode.setdefault(mode, []).append(s)
    assert by_mode.get("batched"), "matrix produced no batched cells"
    if smoke_mode():
        # CI boxes are noisy; the full run gates the real >=5x criterion.
        assert max(by_mode["batched"]) >= 1.5
    else:
        # The acceptance criterion: coalescing + batched folds sustain
        # >=5x the one-frame-one-fold path. The sharded cells are gated
        # on exactness only — at 256-bit keys per-fold compute is micro-
        # seconds and worker IPC eats the parallel win (see meta note).
        assert min(by_mode["batched"]) >= 5.0
    overload = experiment.meta["overload"]
    assert overload["shed_engaged"] and overload["balanced"]
    knee = experiment.meta["knee"]
    assert knee["batched"]["sustained_app_per_s"] > 0
    if not smoke_mode():
        # Service-level: the full pipe (frame decode, queue, batch fold)
        # must also sustain >=5x application deltas/sec over one-frame-
        # one-fold — batching wins twice, on frames and on folds.
        assert knee["batched"]["sustained_vs_legacy"] >= 5.0

    # pytest-benchmark row: one coalesced batch fold at the registry layer.
    public, private = generate_keypair(128, random.Random(3))
    by_tick, _expected = build_timeline(public, 16, 2, 4, seed=5)
    registry, sub = fresh_registry(public, 16, None, 16)
    batcher = DeltaBatcher(public.n, sub.spec)
    for tick in by_tick:
        for delta in tick:
            batcher.add(sub.sub_id, delta)
    entries = batcher.flush()
    state = [0]

    def one_batch():
        # Refold the same coalesced batch against a fresh subscription —
        # steady-state ingest_many cost without advance/seal noise.
        reg, s = fresh_registry(public, 16, None, 16)
        reg.ingest_many([(s.sub_id, d) for _sid, d in entries])
        state[0] += 1

    benchmark(one_batch)
    assert state[0] > 0


if __name__ == "__main__":
    run_and_print(build_experiment)
