"""E12 — Time-series extension: summary-skipping range aggregates.

The tutorial's Part II conclusion names time series as a data model the
log-only framework should extend to. Claim under test: a range aggregate
reads the summary log plus at most two boundary data pages — IO nearly
independent of the range width — while a raw scan reads every data page in
the range; downsampling shrinks aged history by the bucket factor using
sequential writes only.
"""

from __future__ import annotations

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.timeseries.downsample import downsample
from repro.timeseries.series import TimeSeriesStore


def make_allocator(blocks=8192) -> BlockAllocator:
    flash = NandFlash(
        FlashGeometry(page_size=256, pages_per_block=16, num_blocks=blocks)
    )
    return BlockAllocator(flash)


def load(num_points: int) -> TimeSeriesStore:
    store = TimeSeriesStore(make_allocator())
    for ts in range(num_points):
        store.append(ts, float((ts * 31) % 211))
    store.flush()
    return store


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E12",
        title="Range SUM: summary skipping vs raw scan",
        claim="aggregate IO = summary pages + <=2 boundary pages, flat in "
        "range width; raw scan IO grows with the range",
        columns=[
            "points", "range_width", "agg_data_pages", "agg_total_ios",
            "scan_data_pages",
        ],
    )
    store = load(40_000)
    for width in (1_000, 10_000, 39_000):
        t0 = 500
        t1 = t0 + width - 1
        expected = sum(float((ts * 31) % 211) for ts in range(t0, t1 + 1))
        assert store.range_aggregate(t0, t1, "SUM") == expected
        agg_stats = store.last_range
        list(store.scan_range(t0, t1))
        scan_stats = store.last_range
        experiment.add_row(
            40_000, width, agg_stats.data_pages, agg_stats.total_pages,
            scan_stats.data_pages,
        )
    return experiment


def test_e12_range_aggregates(benchmark):
    experiment = run_and_print(build_experiment)
    agg_pages = experiment.column("agg_data_pages")
    scan_pages = experiment.column("scan_data_pages")
    assert all(pages <= 2 for pages in agg_pages)  # boundary pages only
    assert scan_pages[-1] > scan_pages[0] * 10  # raw scan grows
    totals = experiment.column("agg_total_ios")
    assert totals[-1] <= totals[0] + 2  # flat in range width

    store = load(10_000)
    benchmark(store.range_aggregate, 100, 9_000, "SUM")


def test_e12_downsampling(benchmark):
    """Aged history shrinks by the bucket factor, sequential writes only."""
    experiment = Experiment(
        experiment_id="E12-downsample",
        title="Downsampling old history",
        claim="points and pages shrink ~linearly with bucket width; no "
        "random writes (flash model would raise)",
        columns=["bucket_width", "points_out", "pages_out"],
    )
    store = load(20_000)
    for width in (10, 100, 1000):
        coarse = downsample(store, make_allocator(), width, aggregate="AVG")
        experiment.add_row(width, coarse.count, coarse.data_pages)
    print()
    print(render_table(experiment))
    points = experiment.column("points_out")
    assert points == [2000, 200, 20]

    benchmark(lambda: None)
