"""E8 — Frequency leak of deterministic tags, and what noise buys back.

Claims under test: with skewed data and a public prior, frequency analysis
re-identifies most tuples' groups from the deterministic-tag histogram; the
attacker's accuracy falls as the fake-tuple ratio rises (complementary noise
falling faster per byte than white noise); and the histogram family's
equi-depth buckets leave the attacker near guessing from the start.
"""

from __future__ import annotations

import random

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.globalq.attacks import frequency_analysis, histogram_flatness
from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.noise import (
    COMPLEMENTARY_NOISE,
    WHITE_NOISE,
    NoisePlan,
    NoiseProtocol,
)
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery
from repro.workloads.people import CITIES, generate_population

QUERY = AggregateQuery.count(group_by="city", where=(("kind", "profile"),))


def setup(num_pds: int = 300):
    population = generate_population(num_pds, seed=51, skew=1.4)
    nodes = [PdsNode(i, records) for i, records in enumerate(population)]
    fleet = TokenFleet(seed=6)
    mapping = {
        fleet.deterministic.encrypt(city.encode()): city for city in CITIES
    }
    prior = {city: 1.0 / (rank + 1) for rank, city in enumerate(CITIES)}
    return nodes, fleet, mapping, prior


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E8",
        title="Attacker accuracy vs fake-tuple ratio",
        claim="tuple re-identification falls with noise; complementary "
        "noise flattens faster than white at equal ratio",
        columns=[
            "mode", "ratio", "tuple_accuracy", "flatness", "bandwidth_kB",
        ],
    )
    nodes, fleet, mapping, prior = setup()
    clean = NoiseProtocol(fleet, rng=random.Random(1)).run(nodes, QUERY)
    true_counts = dict(clean.ssi_tag_histogram)
    for mode in (WHITE_NOISE, COMPLEMENTARY_NOISE):
        for ratio in (0.0, 0.5, 1.0, 2.0, 4.0):
            plan = (
                NoisePlan(mode, ratio, tuple(CITIES))
                if ratio
                else NoisePlan()
            )
            report = NoiseProtocol(fleet, noise=plan, rng=random.Random(2)).run(
                nodes, QUERY
            )
            attack = frequency_analysis(
                report.ssi_tag_histogram, prior, mapping,
                true_tuple_counts=true_counts,
            )
            experiment.add_row(
                mode if ratio else "none",
                ratio,
                round(attack.tuple_accuracy, 3),
                round(histogram_flatness(report.ssi_tag_histogram), 3),
                round(report.comm_bytes / 1024, 1),
            )
    return experiment


def test_e8_noise_privacy(benchmark):
    experiment = run_and_print(build_experiment)
    rows = experiment.rows
    baseline = next(row for row in rows if row[0] == "none")
    assert baseline[2] > 0.5  # attack works on raw deterministic tags
    for mode in (WHITE_NOISE, COMPLEMENTARY_NOISE):
        series = [row for row in rows if row[0] == mode]
        heaviest = max(series, key=lambda row: row[1])
        assert heaviest[2] < baseline[2]  # noise hurts the attacker
        assert heaviest[4] > baseline[4] * 2  # ...at bandwidth cost
        assert heaviest[3] > baseline[3]  # ...because histograms flatten
    # Complementary flattens at least as well as white at max ratio.
    white = max((r for r in rows if r[0] == WHITE_NOISE), key=lambda r: r[1])
    comp = max(
        (r for r in rows if r[0] == COMPLEMENTARY_NOISE), key=lambda r: r[1]
    )
    assert comp[3] >= white[3] * 0.9

    nodes, fleet, _, _ = setup(100)
    protocol = NoiseProtocol(
        fleet,
        noise=NoisePlan(WHITE_NOISE, 1.0, tuple(CITIES)),
        rng=random.Random(3),
    )
    benchmark(protocol.run, nodes, QUERY)


def test_e8_histogram_buckets(benchmark):
    """Ablation: more equi-depth buckets = finer leak, flatter = safer."""
    experiment = Experiment(
        experiment_id="E8-buckets",
        title="Equi-depth bucket count vs leak",
        claim="bucket histogram stays flat; categories leaked <= buckets",
        columns=["buckets", "leaked_categories", "flatness"],
    )
    nodes, fleet, _, prior = setup()
    for buckets in (2, 3, 5):
        report = HistogramProtocol(
            fleet, EquiDepthBucketizer(prior, buckets), rng=random.Random(4)
        ).run(nodes, QUERY)
        experiment.add_row(
            buckets,
            len(report.ssi_bucket_histogram),
            round(histogram_flatness(report.ssi_bucket_histogram), 3),
        )
    print()
    print(render_table(experiment))
    leaked = experiment.column("leaked_categories")
    assert all(l <= b for l, b in zip(leaked, experiment.column("buckets")))
    # Equi-depth keeps buckets far flatter than the raw Zipf tag histogram.
    clean = NoiseProtocol(fleet, rng=random.Random(5)).run(nodes, QUERY)
    raw_flatness = histogram_flatness(clean.ssi_tag_histogram)
    assert min(experiment.column("flatness")) > raw_flatness

    benchmark(lambda: None)
