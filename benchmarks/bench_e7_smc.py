"""E7 — The cost of generic SMC vs the token-assisted alternatives.

Claims under test (Part III's "current solutions" critique):

* Yao's millionaire protocol costs one RSA decryption per *domain value* —
  exponential in the bit-length of the compared values;
* Paillier secure sum pays modular exponentiations per site while the
  masked-ring sum (and, a fortiori, in-token plaintext aggregation) pays
  none — quantifying why cheap trusted hardware changes the game.
"""

from __future__ import annotations

import random
import time

from repro.bench.harness import (
    Experiment,
    record_wall_clock,
    run_and_print,
)
from repro.crypto.paillier import generate_keypair as paillier_keypair
from repro.crypto.rsa import generate_keypair as rsa_keypair
from repro.smc.millionaire import millionaires
from repro.smc.parties import Channel
from repro.smc.secure_sum import paillier_secure_sum, ring_secure_sum

RSA_KEYS = rsa_keypair(bits=256, rng=random.Random(71))
PAILLIER = paillier_keypair(bits=384, rng=random.Random(72))


def build_millionaire_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E7a",
        title="Millionaire protocol cost vs domain size (value bits)",
        claim="decryptions == 2^bits: cost proportional to the size of the "
        "compared values (Yao'82, as dismissed by the tutorial)",
        columns=["value_bits", "domain", "decryptions", "wall_ms"],
    )
    rng = random.Random(7)
    for bits in (3, 4, 5, 6, 7):
        domain = 2**bits
        start = time.perf_counter()
        result = millionaires(
            domain // 2, domain // 3, domain, Channel(), rng, keypair=RSA_KEYS
        )
        elapsed_ms = (time.perf_counter() - start) * 1000
        assert result.alice_at_least_bob  # domain//2 >= domain//3
        experiment.add_row(bits, domain, result.decryptions, round(elapsed_ms, 1))
        record_wall_clock(
            experiment, f"millionaire_bits_{bits}", elapsed_ms / 1000
        )
    return experiment


def build_sum_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E7b",
        title="Secure sum: masked ring vs Paillier vs plaintext",
        claim="ring: zero modexp, 1 message/site; Paillier: 1 modexp/site "
        "and >100x the wall time; all exact",
        columns=["sites", "variant", "modexps", "messages", "wall_ms", "exact"],
    )
    public, private = PAILLIER
    for sites in (5, 20, 50):
        values = [i * 11 for i in range(sites)]
        expected = sum(values)

        start = time.perf_counter()
        channel = Channel()
        ring = ring_secure_sum(values, channel, random.Random(1))
        ring_ms = (time.perf_counter() - start) * 1000
        experiment.add_row(
            sites, "ring", ring.crypto.modexps, channel.stats.messages,
            round(ring_ms, 3), ring.total == expected,
        )

        start = time.perf_counter()
        channel = Channel()
        paillier = paillier_secure_sum(
            values, public, private, channel, random.Random(1)
        )
        paillier_ms = (time.perf_counter() - start) * 1000
        experiment.add_row(
            sites, "paillier", paillier.crypto.modexps,
            channel.stats.messages, round(paillier_ms, 3),
            paillier.total == expected,
        )
        record_wall_clock(experiment, f"ring_sites_{sites}", ring_ms / 1000)
        record_wall_clock(
            experiment, f"paillier_sites_{sites}", paillier_ms / 1000
        )
    return experiment


def test_e7_millionaire(benchmark):
    experiment = run_and_print(build_millionaire_experiment)
    decryptions = experiment.column("decryptions")
    domains = experiment.column("domain")
    assert decryptions == domains  # one decryption per domain value
    # Cost doubles with each extra bit (exponential in value size).
    assert all(b == a * 2 for a, b in zip(decryptions, decryptions[1:]))

    rng = random.Random(9)
    benchmark(
        millionaires, 5, 3, 8, Channel(), rng, RSA_KEYS
    )


def test_e7_secure_sum(benchmark):
    experiment = run_and_print(build_sum_experiment)
    assert all(experiment.column("exact"))
    ring_rows = [row for row in experiment.rows if row[1] == "ring"]
    paillier_rows = [row for row in experiment.rows if row[1] == "paillier"]
    assert all(row[2] == 0 for row in ring_rows)  # no modexp in the ring
    for ring_row, paillier_row in zip(ring_rows, paillier_rows):
        assert paillier_row[2] == ring_row[0] + 1  # n encrypts + 1 decrypt
        assert paillier_row[4] > ring_row[4] * 20  # HE wall-time gap

    values = list(range(20))
    benchmark(ring_secure_sum, values, Channel(), random.Random(3))
