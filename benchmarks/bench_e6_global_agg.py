"""E6 — The three [TNP14] protocol families on the same global aggregate.

Claims under test: all three families return the exact plaintext answer;
costs scale linearly in the number of PDSs; and the families sit at the
positions the tutorial assigns them — secure-aggregation leaks nothing but
makes every token decrypt mixed-group partitions, noise/histogram let the
SSI pre-group at the price of a measured leak.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.noise import WHITE_NOISE, NoisePlan, NoiseProtocol
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.workloads.people import CITIES, generate_population

QUERY = AggregateQuery.count(group_by="city", where=(("kind", "profile"),))


def make_nodes(num_pds: int):
    population = generate_population(num_pds, seed=41, skew=1.1)
    return population, [
        PdsNode(i, records) for i, records in enumerate(population)
    ]


def prior():
    return {city: 1.0 / (rank + 1) for rank, city in enumerate(CITIES)}


def protocols(fleet: TokenFleet):
    return {
        "secure-agg": SecureAggregationProtocol(fleet, rng=random.Random(1)),
        "noise(1x)": NoiseProtocol(
            fleet,
            noise=NoisePlan(WHITE_NOISE, 1.0, tuple(CITIES)),
            rng=random.Random(1),
        ),
        "histogram(3)": HistogramProtocol(
            fleet, EquiDepthBucketizer(prior(), 3), rng=random.Random(1)
        ),
    }


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E6",
        title="Global COUNT GROUP BY city across the protocol families",
        claim="all exact; bytes/messages/token-work linear in #PDS; "
        "leak: none / tag histogram / flat buckets",
        columns=[
            "protocol", "num_pds", "exact", "comm_kB", "messages",
            "token_invocations", "decryptions", "leak_categories",
        ],
    )
    fleet = TokenFleet(seed=3)
    for num_pds in (100, 300, 900):
        population, nodes = make_nodes(num_pds)
        expected = plaintext_answer(population, QUERY)
        for name, protocol in protocols(fleet).items():
            report = protocol.run(nodes, QUERY)
            exact = all(
                report.result.get(group) == pytest.approx(value)
                for group, value in expected.items()
            )
            leak = max(
                len(report.ssi_tag_histogram), len(report.ssi_bucket_histogram)
            )
            experiment.add_row(
                name,
                num_pds,
                exact,
                round(report.comm_bytes / 1024, 1),
                report.comm_messages,
                report.token_invocations,
                report.token_decryptions,
                leak,
            )
    return experiment


def test_e6_global_aggregation(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("exact"))
    rows = experiment.rows
    by_protocol: dict[str, list] = {}
    for row in rows:
        by_protocol.setdefault(row[0], []).append(row)

    for name, series in by_protocol.items():
        bytes_kb = [row[3] for row in series]
        num_pds = [row[1] for row in series]
        # Linear scaling in #PDS: bytes per PDS roughly constant (2x slack).
        per_pds = [kb / n for kb, n in zip(bytes_kb, num_pds)]
        assert max(per_pds) < min(per_pds) * 2, name

    # Leak ordering: secure-agg leaks nothing; histogram leaks <= buckets;
    # noise leaks one tag per apparent group.
    final = {row[0]: row for row in rows if row[1] == 900}
    assert final["secure-agg"][7] == 0
    assert 0 < final["histogram(3)"][7] <= 3
    assert final["noise(1x)"][7] >= len(
        {r[0] for r in [["x"]]}
    )  # at least one tag
    assert final["noise(1x)"][7] > final["histogram(3)"][7]

    _, nodes = make_nodes(150)
    fleet = TokenFleet(seed=3)
    protocol = SecureAggregationProtocol(fleet, rng=random.Random(2))
    benchmark(protocol.run, nodes, QUERY)


def test_e6_aggregate_kinds(benchmark):
    """SUM and AVG behave like COUNT across families."""
    experiment = Experiment(
        experiment_id="E6-aggregates",
        title="SUM / AVG exactness per family",
        claim="every family computes every aggregate exactly",
        columns=["protocol", "aggregate", "exact"],
    )
    population, nodes = make_nodes(150)
    fleet = TokenFleet(seed=5)
    queries = {
        "SUM": AggregateQuery.sum(
            "kwh", group_by="city", where=(("kind", "energy"),)
        ),
        "AVG": AggregateQuery.avg(
            "age", group_by="city", where=(("kind", "profile"),)
        ),
    }
    for agg_name, query in queries.items():
        expected = plaintext_answer(population, query)
        for name, protocol in protocols(fleet).items():
            report = protocol.run(nodes, query)
            exact = all(
                report.result.get(group) == pytest.approx(value)
                for group, value in expected.items()
            )
            experiment.add_row(name, agg_name, exact)
    print()
    print(render_table(experiment))
    assert all(experiment.column("exact"))
    benchmark(lambda: None)
