"""E22 — Crash recovery: mount cost, header overhead, correctness sweep.

Claim under test: recovery needs no journal replay and no free-space
bitmap — a single sequential scan of the programmed pages (exactly one
flash read per live page) rebuilds every log, index and allocator from
the self-describing page headers, while those headers cost only the
spare/OOB area (zero payload capacity, ~5% of programmed bytes at a
512 B page). And the recovery is *correct* at every instant: a reduced
crash sweep (the full one lives in ``tests/fault/``) kills power at
sampled program/erase points of an insert + durable-reorganization
workload, remounts, and checks the durable-prefix properties.

Two measurements:

* **mount cost vs database size** — build, unplug, remount at growing row
  counts; mount flash reads must equal live pages scanned (1.0
  reads/page) and remounted query answers must be bit-identical;
* **recovery-correctness sweep** — crash at ``SWEEP_POINTS`` evenly
  sampled IOs; after each remount the documents log must be an exact
  prefix, lookups a subset of the clean run with no duplicates, and at
  most one torn page may exist per crash.
"""

from __future__ import annotations

from repro.bench.harness import Experiment, run_and_print, scaled
from repro.errors import PowerLossError
from repro.fault import FaultPlan
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.profiles import smart_usb_token
from repro.hardware.ram import RamArena
from repro.relational import KeyIndex, remount_index, reorganize_durably
from repro.storage.log import RecordLog
from repro.storage.recovery import Manifest, mount

GEOM = FlashGeometry(
    page_size=512, pages_per_block=8, num_blocks=1024, spare_size=64
)
KEYS = 29
READ_US = smart_usb_token().flash_cost.read_us


def build_database(rows: int, flash: NandFlash | None = None):
    """Insert ``rows`` keys + documents, durably reorganize, insert a delta.

    Returns the flash chip plus the clean-run query answers — the bit-exact
    reference every remount (clean or post-crash) is compared against.
    """
    flash = flash if flash is not None else NandFlash(GEOM)
    allocator = BlockAllocator(flash)
    manifest = Manifest.create(allocator)
    index = KeyIndex("age", allocator, bits_per_key=8.0)
    docs = RecordLog(allocator, "documents")
    for rowid in range(rows):
        index.insert(rowid % KEYS, rowid)
        docs.append(b"doc-%06d" % rowid)
        if rowid % 64 == 63:
            index.flush()
            docs.flush()
    index.flush()
    docs.flush()
    sorted_index, delta = reorganize_durably(
        index, allocator, RamArena(1 << 20), manifest, sort_buffer_bytes=2048
    )
    for rowid in range(rows, rows + rows // 4):
        delta.insert(rowid % KEYS, rowid)
        docs.append(b"doc-%06d" % rowid)
    delta.flush()
    docs.flush()
    answers = {
        value: sorted(sorted_index.lookup(value) + delta.lookup(value))
        for value in range(KEYS)
    }
    return flash, answers


def remount_database(flash: NandFlash):
    """One full recovery: mount scan, claim every structure, reclaim."""
    session = mount(flash)
    manifest = Manifest.remount(session)
    sorted_index, delta = remount_index(
        session, manifest, "age", bits_per_key=8.0
    )
    docs = session.claim_record_log("documents")
    report = session.finish()
    return sorted_index, delta, docs, report


def measure_mount(rows: int):
    flash, answers = build_database(rows)
    programmed = flash.stats.page_programs
    spare_bytes = flash.stats.spare_bytes
    flash.power_cycle()
    reads_before = flash.stats.page_reads
    session = mount(flash)
    mount_reads = flash.stats.page_reads - reads_before
    manifest = Manifest.remount(session)
    sorted_index, delta = remount_index(
        session, manifest, "age", bits_per_key=8.0
    )
    session.claim_record_log("documents")
    report = session.finish()
    claim_reads = flash.stats.page_reads - reads_before - mount_reads
    got = {
        value: sorted(sorted_index.lookup(value) + delta.lookup(value))
        for value in range(KEYS)
    }
    # Header overhead: OOB bytes per payload byte ever programmed — the
    # entire price of self-describing pages (payload capacity unchanged).
    overhead = spare_bytes / (programmed * GEOM.page_size)
    return {
        "rows": rows,
        "live_pages": report.pages_scanned,
        "mount_reads": mount_reads,
        "claim_reads": claim_reads,
        "mount_time_us": mount_reads * READ_US,
        "reads_per_page": mount_reads / max(1, report.pages_scanned),
        "header_overhead_pct": round(100 * overhead, 2),
        "equal": got == answers,
        "report": report,
    }


def crash_sweep(rows: int, points: int) -> dict:
    """Kill the workload at ``points`` sampled IOs; verify every remount."""
    flash, answers = build_database(rows)
    total_ops = flash.stats.page_programs + flash.stats.block_erases
    stride = max(1, total_ops // points)
    summary = {
        "crash_points_total": total_ops,
        "crash_points_sampled": 0,
        "torn_pages": 0,
        "corrupt_pages": 0,
        "reclaimed_blocks": 0,
        "mount_reads": 0,
        "all_recovered": True,
    }
    for k in range(0, total_ops, stride):
        flash = NandFlash(GEOM)
        plan = FaultPlan(kill_at=k, seed=k).attach(flash)
        try:
            build_database(rows, flash)
        except PowerLossError:
            pass
        assert plan.kills == 1, k
        flash.power_cycle()
        sorted_index, delta, docs, report = remount_database(flash)
        assert report.torn_pages <= 1, k
        # No torn record visible: the documents log is an exact prefix.
        scanned = [record for _, record in docs.scan()]
        assert scanned == [b"doc-%06d" % i for i in range(len(scanned))], k
        # No phantom and no duplicate answers: every lookup is a sorted,
        # duplicate-free subset of the never-crashed run.
        for value in range(KEYS):
            if sorted_index is None:
                got = delta.lookup(value)
            else:
                got = sorted(sorted_index.lookup(value) + delta.lookup(value))
            assert got == sorted(set(got)), (k, value)
            assert set(got) <= set(answers[value]) | set(
                range(rows, rows + rows // 4)
            ), (k, value)
        summary["crash_points_sampled"] += 1
        summary["torn_pages"] += report.torn_pages
        summary["corrupt_pages"] += report.corrupt_pages
        summary["reclaimed_blocks"] += report.reclaimed_blocks
        summary["mount_reads"] += report.flash_reads
    return summary


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="e22",
        title="Crash recovery: mount cost vs db size + correctness sweep",
        claim="mount = 1 sequential read per live page; headers ride the "
        "spare area (~5% overhead, 0 payload loss); durable prefix "
        "recovered at every sampled crash point",
        columns=[
            "rows", "live_pages", "mount_reads", "claim_reads",
            "mount_time_us", "reads_per_page", "header_overhead_pct",
            "equal",
        ],
    )
    experiment.meta["read_us"] = READ_US
    experiment.meta["geometry"] = {
        "page_size": GEOM.page_size,
        "pages_per_block": GEOM.pages_per_block,
        "num_blocks": GEOM.num_blocks,
        "spare_size": GEOM.spare_size,
    }
    last_report = None
    for rows in (scaled(250, 30), scaled(1000, 60), scaled(4000, 120)):
        measured = measure_mount(rows)
        last_report = measured.pop("report")
        experiment.add_row(*measured.values())
    experiment.meta["mount_report_largest"] = last_report.as_dict()
    experiment.meta["crash_sweep"] = crash_sweep(
        scaled(250, 30), points=scaled(24, 6)
    )
    return experiment


def test_e22_recovery(benchmark):
    experiment = run_and_print(build_experiment)
    # Remounted answers are bit-identical at every size, and the scan cost
    # is exactly one flash read per live page — no journal, no replay.
    assert all(experiment.column("equal"))
    assert all(r == 1.0 for r in experiment.column("reads_per_page"))
    # Self-describing pages cost spare bytes only, bounded by the OOB ratio.
    limit = 100 * GEOM.spare_size / GEOM.page_size
    assert all(
        pct <= limit for pct in experiment.column("header_overhead_pct")
    )
    sweep = experiment.meta["crash_sweep"]
    assert sweep["all_recovered"]
    assert sweep["crash_points_sampled"] >= 6

    flash, _ = build_database(scaled(1000, 60))
    flash.power_cycle()
    benchmark(mount, flash)
