"""E23 — Scaling global queries: batched Paillier + sharded collection.

Claims under test (the ROADMAP's million-user north star, applied to
Part III):

* the Paillier collection phase is crypto-bound: batching blinding factors
  through seeded pools (fixed-base windowed precomputation + BPV subset
  products) cuts its wall-clock by >=5x against the pre-PR scalar path
  (one full ``r^n mod n²`` per site), at identical decrypted totals;
* the [TNP14] secure-aggregation family completes a 1M-PDS sweep through
  the sharded executor, and the aggregate is *exactly* equal for every
  worker count — shard seeds, not scheduling, decide every ciphertext.

Row meaning: ``phase`` is ``crypto`` (Paillier secure sum, ``cost_ops`` =
full modular exponentiations) or ``scale`` ([TNP14] secure aggregation,
``cost_ops`` = token decryptions). ``wall_s`` is measured wall-clock (the
collection phase dominates both), also recorded per row in
``meta["wall_clock_s"]``.
"""

from __future__ import annotations

import random
import time

from repro.bench.harness import (
    Experiment,
    record_wall_clock,
    run_and_print,
    scaled,
    smoke_mode,
)
from repro.crypto.paillier import generate_keypair
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.smc.parties import Channel
from repro.smc.secure_sum import paillier_secure_sum
from repro.workloads.people import CITIES, PersonRecord

QUERY = AggregateQuery.sum("salary", group_by="city")

#: Speedup floor of the acceptance criterion (full sizes only).
REQUIRED_SPEEDUP = 5.0


def worker_sweep() -> list[int]:
    return [1, 2] if smoke_mode() else [1, 2, 4, 8]


def make_slim_nodes(count: int, seed: int = 23) -> list[PdsNode]:
    """One flat record per PDS: at 1M nodes the records must stay slim."""
    rng = random.Random(seed)
    cities = list(CITIES)
    return [
        PdsNode(
            i,
            [
                PersonRecord(
                    {
                        "city": cities[rng.randrange(len(cities))],
                        "salary": float(1200 + rng.randrange(0, 4000)),
                    }
                )
            ],
        )
        for i in range(count)
    ]


def crypto_rows(experiment: Experiment) -> float:
    """Paillier secure-sum collection: scalar baseline vs batched shards."""
    bits = scaled(512, 256)
    sites = scaled(4096, 64)
    shard_size = scaled(512, 16)
    public, private = generate_keypair(bits, random.Random(72))
    values = [v * 13 % 100_000 for v in range(sites)]
    expected = sum(values)

    start = time.perf_counter()
    scalar = paillier_secure_sum(
        values, public, private, Channel(), random.Random(1)
    )
    scalar_s = time.perf_counter() - start
    experiment.add_row(
        "crypto", sites, "scalar", 1, scalar.crypto.modexps,
        round(scalar_s, 3), 1.0, scalar.total == expected,
    )
    record_wall_clock(experiment, "crypto_scalar", scalar_s)

    speedup_at_max = 0.0
    for workers in worker_sweep():
        start = time.perf_counter()
        batched = paillier_secure_sum(
            values, public, private, Channel(),
            workers=workers, shard_size=shard_size,
        )
        batched_s = time.perf_counter() - start
        speedup = scalar_s / batched_s
        speedup_at_max = speedup  # sweep ends at the widest worker count
        experiment.add_row(
            "crypto", sites, "batched", workers, batched.crypto.modexps,
            round(batched_s, 3), round(speedup, 1),
            batched.total == expected,
        )
        record_wall_clock(
            experiment, f"crypto_batched_w{workers}", batched_s
        )
    experiment.meta["crypto"] = {
        "key_bits": bits,
        "sites": sites,
        "shard_size": shard_size,
        "scalar_modexps": scalar.crypto.modexps,
        "speedup_at_max_workers": round(speedup_at_max, 2),
    }
    return speedup_at_max


def scale_rows(experiment: Experiment) -> None:
    """[TNP14] secure aggregation up to 1M PDSs: parallel == serial, exact."""
    if smoke_mode():
        populations = [300]
    else:
        populations = [10_000, 100_000, 1_000_000]
    shard_size = scaled(4096, 64)
    for population in populations:
        nodes = make_slim_nodes(population)
        truth = plaintext_answer([n.records for n in nodes], QUERY)
        workers_list = worker_sweep()
        if population >= 1_000_000:
            workers_list = [workers_list[0], workers_list[-1]]
        serial_result = None
        for workers in workers_list:
            protocol = SecureAggregationProtocol(
                TokenFleet(0),
                rng=random.Random(1),
                workers=workers,
                shard_size=shard_size,
            )
            start = time.perf_counter()
            report = protocol.run(nodes, QUERY)
            wall_s = time.perf_counter() - start
            if serial_result is None:
                serial_result = report.result
                serial_s = wall_s
            # The acceptance property: exact equality, not approximation.
            exact = report.result == serial_result == truth
            experiment.add_row(
                "scale", population, "secure-agg", workers,
                report.token_decryptions, round(wall_s, 3),
                round(serial_s / wall_s, 2), exact,
            )
            record_wall_clock(
                experiment, f"scale_{population}_w{workers}", wall_s
            )
        del nodes


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="e23",
        title="Global-query scaling: batched Paillier + sharded collection",
        claim="batched blinding pools cut crypto-bound collection >=5x vs "
        "the scalar path; the sharded executor completes 1M PDSs with "
        "results exactly equal at every worker count",
        columns=[
            "phase", "size", "variant", "workers", "cost_ops", "wall_s",
            "speedup", "exact",
        ],
    )
    experiment.meta["smoke_mode"] = smoke_mode()
    speedup = crypto_rows(experiment)
    scale_rows(experiment)
    experiment.meta["required_speedup"] = REQUIRED_SPEEDUP
    experiment.meta["speedup_ok"] = bool(
        smoke_mode() or speedup >= REQUIRED_SPEEDUP
    )
    return experiment


def test_e23_scale(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("exact"))
    crypto = [row for row in experiment.rows if row[0] == "crypto"]
    assert crypto[0][2] == "scalar"
    if not smoke_mode():
        # Batching collapses the exponentiation count >=10x at every width
        # (pool amortisation needs realistic shard sizes, so full mode only).
        assert all(row[4] * 10 <= crypto[0][4] for row in crypto[1:])
        # Acceptance: >=5x wall-clock at the widest worker sweep.
        assert crypto[-1][6] >= REQUIRED_SPEEDUP
        populations = {row[1] for row in experiment.rows if row[0] == "scale"}
        assert max(populations) == 1_000_000

    public, private = generate_keypair(256, random.Random(7))
    values = list(range(64))
    result = benchmark(
        lambda: paillier_secure_sum(
            values, public, private, Channel(), workers=1, shard_size=32
        )
    )
    assert result.total == sum(values)


if __name__ == "__main__":
    run_and_print(build_experiment)
