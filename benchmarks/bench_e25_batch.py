"""E25 — Columnar batch execution vs tuple-at-a-time (the raw-speed pass).

Claims under test (Issue 7's acceptance criteria):

* the columnar executor answers the E1 summary-scan predicate and the E4
  SPJ workload **bit-identically** to the legacy tuple-at-a-time pipeline —
  same rows, same aggregates, byte-identical simulated ``flash_page_reads``
  (batches form only over pages the plan already reads);
* at the default batch size the wall-clock speedup is ≥ 5× on both
  workloads (full mode; smoke runs assert IO equality only);
* RAM high-water stays within the token arena budget at every batch size —
  the batch buffer is charged to the :class:`RamArena` like a page buffer.

Row meaning: one row per (workload, batch size). ``legacy_ms``/``batch_ms``
are best-of-``repeats`` wall clock for the whole workload; ``ios`` is the
(engine-independent) flash page-read count; ``io_equal`` is the CI gate.

The E4 workload is the mixed query set a service actually sees — the
tutorial's narrow two-Tselect SPJ, a wide one-Tselect five-column
projection, a root-scan query with a string residual, and a grouped AVG —
so the ratio reflects all plan shapes, not just the intersection-dominated
one.
"""

from __future__ import annotations

import time

from repro.bench.harness import (
    Experiment,
    record_wall_clock,
    run_and_print,
    scaled,
    smoke_mode,
)
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.token import SecurePortableToken
from repro.relational.batch import DEFAULT_BATCH_ROWS
from repro.relational.planner import Query
from repro.relational.query import EmbeddedDatabase
from repro.relational.schema import Column, SchemaGraph, TableSchema
from repro.workloads import tpcd

#: Batch sizes swept per workload (the engine default is asserted ≥ 5×).
BATCH_SIZES = [16, DEFAULT_BATCH_ROWS, 256, 1024]


def make_token(page_size: int) -> SecurePortableToken:
    base = smart_usb_token()
    profile = HardwareProfile(
        name="bench-token",
        ram_bytes=64 * 1024,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(
            page_size=page_size, pages_per_block=32, num_blocks=8192
        ),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    return SecurePortableToken(profile=profile)


# ----------------------------------------------------------------------
# E1 workload: the summary-scan predicate as an unindexed column scan
# ----------------------------------------------------------------------
def make_scan_db(num_rows: int, distinct_cities: int) -> EmbeddedDatabase:
    schema = SchemaGraph(
        [
            TableSchema(
                "CUSTOMER",
                [
                    Column("CUSkey", "int"),
                    Column("Name", "str"),
                    Column("Address", "str"),
                    Column("Comment", "str"),
                    Column("City", "str"),
                ],
                primary_key="CUSkey",
            )
        ]
    )
    db = EmbeddedDatabase(make_token(512), schema, "CUSTOMER")
    for row in range(num_rows):
        db.insert(
            "CUSTOMER",
            (
                row,
                f"Customer#{row:06d}",
                f"{row % 997} rue de la Paix, BP {row % 89:05d}",
                "standard account, postal contact preferred",
                f"city-{row % distinct_cities:03d}",
            ),
        )
    db.flush()
    return db


def run_scan_workload(db: EmbeddedDatabase) -> tuple[list[int], int]:
    """(matching rowids, flash page reads) of one predicate scan."""
    reads_before = db.token.flash.stats.page_reads
    rowids = db.lookup("CUSTOMER", "City", "city-007")
    return rowids, db.token.flash.stats.page_reads - reads_before


# ----------------------------------------------------------------------
# E4 workload: the mixed SPJ query set
# ----------------------------------------------------------------------
def make_spj_db(num_lineitems: int) -> EmbeddedDatabase:
    db = EmbeddedDatabase(make_token(1024), tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
    tpcd.load(db, tpcd.generate(num_lineitems, seed=31))
    db.create_tselect("CUSTOMER", "Mktsegment")
    db.create_tselect("SUPPLIER", "Name")
    return db


def spj_queries() -> list[Query]:
    wide_projection = [
        ("CUSTOMER", "Name"),
        ("ORDER", "ORDkey"),
        ("LINEITEM", "LINkey"),
        ("LINEITEM", "Price"),
        ("SUPPLIER", "Name"),
    ]
    return [
        # The tutorial's narrow two-Tselect query (tiny result set).
        tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1"),
        # Wide one-Tselect query: projection cost dominates.
        Query.build(
            filters=[("CUSTOMER", "Mktsegment", "HOUSEHOLD")],
            projection=wide_projection,
        ),
        # Root scan with a string residual: no Tselect applies.
        Query.build(
            filters=[("SUPPLIER", "Nation", "FRANCE")],
            projection=wide_projection,
        ),
    ]


def run_spj_workload(db: EmbeddedDatabase):
    """(rows per query, grouped AVG, flash reads, max RAM high-water)."""
    reads_before = db.token.flash.stats.page_reads
    rows_out = []
    ram_high = 0
    for query in spj_queries():
        rows, stats = db.query(query)
        rows_out.append(rows)
        ram_high = max(ram_high, stats.ram_high_water)
    aggregate, stats = db.aggregate(
        [("CUSTOMER", "Mktsegment", "HOUSEHOLD")],
        ("AVG", "LINEITEM", "Price"),
        group_by=("SUPPLIER", "Name"),
    )
    ram_high = max(ram_high, stats.ram_high_water)
    reads = db.token.flash.stats.page_reads - reads_before
    return rows_out, aggregate, reads, ram_high


# ----------------------------------------------------------------------
def best_of(repeats: int, run) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs (the last run's result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def sweep_workload(
    experiment: Experiment, workload: str, db: EmbeddedDatabase, run, repeats: int
) -> None:
    """One workload's batch-size sweep against its legacy baseline."""
    db.batch_size = None
    legacy_s, legacy_result = best_of(repeats, run)
    record_wall_clock(experiment, f"{workload}_legacy", legacy_s)
    for batch_rows in BATCH_SIZES:
        db.batch_size = batch_rows
        batch_s, batch_result = best_of(repeats, run)
        record_wall_clock(experiment, f"{workload}_batch{batch_rows}", batch_s)
        # Bit-identity: answers and simulated IO may not depend on the
        # executor. ``io_equal`` is what the CI smoke job gates on.
        answers_equal = batch_result[:-2] == legacy_result[:-2]
        io_equal = batch_result[-2] == legacy_result[-2]
        assert answers_equal, f"{workload}@{batch_rows}: answers diverged"
        experiment.add_row(
            workload,
            batch_rows,
            round(legacy_s * 1000, 2),
            round(batch_s * 1000, 2),
            round(legacy_s / batch_s, 2) if batch_s else float("inf"),
            legacy_result[-2],
            io_equal and answers_equal,
            batch_result[-1],
        )


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="e25",
        title="Columnar batch execution: speedup at unchanged IO",
        claim="vectorized masks/gathers answer E1 scans and E4 SPJ "
        "bit-identically to the tuple-at-a-time pipeline with byte-equal "
        "flash reads, ≥5x faster at the default batch size, within the "
        "token RAM budget",
        columns=[
            "workload", "batch_rows", "legacy_ms", "batch_ms",
            "speedup", "ios", "io_equal", "ram_hw_B",
        ],
    )
    experiment.meta["smoke_mode"] = smoke_mode()
    experiment.meta["default_batch_rows"] = DEFAULT_BATCH_ROWS
    repeats = scaled(3, 1)

    scan_db = make_scan_db(scaled(12000, 1200), 200)
    # lookup() returns only rowids; wrap so the result carries (rows, ios,
    # ram_hw) in the shape sweep_workload slices.
    def scan_run():
        scan_db._ram.reset_high_water()
        rowids, reads = run_scan_workload(scan_db)
        return (rowids, reads, scan_db._ram.high_water)

    sweep_workload(experiment, "e1_scan", scan_db, scan_run, repeats)

    spj_db = make_spj_db(scaled(4000, 400))
    def spj_run():
        rows_out, aggregate, reads, ram_high = run_spj_workload(spj_db)
        return (rows_out, aggregate, reads, ram_high)

    sweep_workload(experiment, "e4_spj", spj_db, spj_run, repeats)
    experiment.meta["ram_budget_B"] = 64 * 1024
    return experiment


def test_e25_batch(benchmark):
    experiment = run_and_print(build_experiment)
    # The CI gate (satellite 5): simulated IO is executor-independent.
    assert all(experiment.column("io_equal"))
    # Batch buffers stay inside the token arena at every batch size.
    budget = experiment.meta["ram_budget_B"]
    assert all(ram <= budget for ram in experiment.column("ram_hw_B"))
    if not smoke_mode():
        # The acceptance ratio at the engine's default batch size.
        for row in experiment.rows:
            if row[1] == DEFAULT_BATCH_ROWS:
                assert row[4] >= 5.0, f"{row[0]}: speedup {row[4]} < 5"

    db = make_spj_db(400)
    benchmark(db.query, tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1"))


if __name__ == "__main__":
    run_and_print(build_experiment)
