"""E2 — Pipelined embedded search vs the RAM-hungry container baseline.

Claim under test: the pipelined merge evaluates top-N TF-IDF in RAM
proportional to (#query keywords x page size) + N, *independent of corpus
size*, while the conventional container-per-docid evaluation grows linearly
with the number of matching documents — and both return identical results.
"""

from __future__ import annotations

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.ram import RamArena
from repro.hardware.token import SecurePortableToken
from repro.search.baseline import RamHungrySearch
from repro.search.engine import EmbeddedSearchEngine
from repro.workloads.documents import DocumentCorpus

QUERY = "doctor invoice meeting"


def make_engine(num_docs: int) -> EmbeddedSearchEngine:
    base = smart_usb_token()
    profile = HardwareProfile(
        name="bench-token",
        ram_bytes=64 * 1024,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(
            page_size=2048, pages_per_block=32, num_blocks=2048
        ),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    engine = EmbeddedSearchEngine(SecurePortableToken(profile=profile), 64)
    for document in DocumentCorpus(seed=13).generate(num_docs, words_per_doc=25):
        engine.add_document(document.text)
    engine.flush()
    return engine


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E2",
        title="Search RAM: pipelined merge vs container-per-docid",
        claim="pipelined RAM flat in corpus size; baseline RAM grows "
        "linearly with matching docs; identical top-10",
        columns=[
            "docs", "engine_ram_B", "baseline_ram_B",
            "flash_reads", "results_equal",
        ],
    )
    for num_docs in (500, 2000, 6000):
        engine = make_engine(num_docs)
        ram = engine.token.mcu.ram
        reads_before = engine.token.flash.stats.page_reads
        ram.reset_high_water()
        fast = engine.search(QUERY, n=10)
        flash_reads = engine.token.flash.stats.page_reads - reads_before
        engine_ram = ram.high_water

        baseline_ram = RamArena(10**9)
        slow = RamHungrySearch(engine.index, baseline_ram).search(QUERY, n=10)
        equal = [h.docid for h in fast] == [h.docid for h in slow]
        experiment.add_row(
            num_docs, engine_ram, baseline_ram.high_water, flash_reads, equal
        )
    return experiment


def test_e2_search_ram(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("results_equal"))
    engine_ram = experiment.column("engine_ram_B")
    baseline_ram = experiment.column("baseline_ram_B")
    assert engine_ram[0] == engine_ram[-1]  # flat
    assert baseline_ram[-1] > baseline_ram[0] * 5  # grows with corpus
    # Pipelined RAM fits comfortably in the 64 KB token budget.
    assert all(ram <= 64 * 1024 for ram in engine_ram)

    engine = make_engine(2000)
    benchmark(engine.search, QUERY, 10)


def test_e2_ablation_keywords(benchmark):
    """Ablation: engine RAM grows with query width, not data."""
    experiment = Experiment(
        experiment_id="E2-ablation",
        title="RAM vs number of query keywords",
        claim="pipelined RAM ~= keywords x page size (+ top-N heap)",
        columns=["keywords", "engine_ram_B"],
    )
    engine = make_engine(1500)
    queries = {
        1: "doctor",
        2: "doctor invoice",
        3: "doctor invoice meeting",
        4: "doctor invoice meeting energy",
    }
    for count, query in queries.items():
        engine.token.mcu.ram.reset_high_water()
        engine.search(query, n=10)
        experiment.add_row(count, engine.token.mcu.ram.high_water)
    print()
    print(render_table(experiment))
    ram = experiment.column("engine_ram_B")
    assert ram == sorted(ram)
    page = engine.token.flash.geometry.page_size
    deltas = [b - a for a, b in zip(ram, ram[1:])]
    assert all(delta == page for delta in deltas)

    benchmark(lambda: None)
