"""E26 — Distributed tracing overhead, sampling invariance, flight recorder.

Claims under test (Issue 8's acceptance criteria):

* **overhead** — under an E24-style closed-loop mixed-class load, serving
  with the telemetry bundle installed at a 1% head-sampling rate costs at
  most 2% wall-clock over serving with tracing disabled entirely (0% and
  100% rates are measured alongside for the curve);
* **invariance** — sampling is an observation, never an input: at every
  rate the service returns bit-identical answers, and an embedded Tjoin
  run under any rate performs exactly the same ``flash.page_reads``;
* **flight recorder** — a forced ``Overloaded`` burst dumps a bundle that
  ``repro.obs.check`` validates and that carries the shedding queue
  depths (header details, shed events, and the frozen service registry).

Overhead is measured **paired**: per mode, a traced and an untraced
service serve the same query back to back (order alternating), and the
overhead is the median per-pair wall ratio minus one. Absolute walls on a
shared box swing +-20%; the paired median holds within +-1% in a null
experiment (two untraced services), so it can resolve the 2% ceiling.

Row meaning: ``load`` rows are one serving mode each (``disabled`` or a
sampling rate) — query count, best-of-``repeats`` summed wall seconds,
per-query milliseconds, paired-median overhead vs disabled, spans
recorded; ``flash`` rows are one embedded Tjoin per mode with its exact
page-read count. ``meta`` carries the answer digests per mode (all
equal), the flight-bundle path and its checker verdict, and wall-clock
timings.

``BENCH_SMOKE=1`` runs tiny sizes; the overhead ceiling is only asserted
at full size (a 0.3 s smoke cell cannot resolve 2%).
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import time
from pathlib import Path

from repro.bench.harness import (
    Experiment,
    record_wall_clock,
    run_and_print,
    smoke_mode,
)
from repro.obs import check as obs_check
from repro.obs import telemetry as obs_telemetry
from repro.obs.telemetry import Telemetry
from repro.service import (
    ServiceConfig,
    SsiQueryService,
    slim_population,
    standard_mix,
)
from repro.service.admission import Overloaded

#: Serving modes: None = no telemetry object at all; else sampling rate.
MODES: tuple[tuple[str, float | None], ...] = (
    ("disabled", None),
    ("0%", 0.0),
    ("1%", 0.01),
    ("100%", 1.0),
)

#: The acceptance ceiling: 1%-sampled wall-clock over disabled, percent.
OVERHEAD_CEILING_PCT = 2.0


def parameters() -> dict:
    if smoke_mode():
        return {"population": 120, "queries": 24, "repeats": 2}
    return {"population": 1000, "queries": 240, "repeats": 3}


# ----------------------------------------------------------------------
# Phase 1: closed-loop load at each telemetry mode, paired per query
# ----------------------------------------------------------------------
async def run_paired(rate: float, queries: int, population_size: int):
    """One mode vs tracing-disabled, paired query by query.

    Two identical services serve the same query sequence; for each query
    the traced service (telemetry bundle installed, tracer active) and
    the untraced one (no bundle, tracer off) run back to back, order
    alternating. The per-pair wall ratio cancels host contention — on a
    noisy shared box absolute walls swing ±20%, while the null
    experiment (two untraced services) holds the median ratio within
    ±1% — so ``median(ratio) - 1`` is the tracing overhead.
    """
    from repro import obs

    config = dict(
        max_in_flight=2, max_queue_depth=64, cache_capacity=0, seed=5
    )
    bundle = Telemetry(sample_rate=rate)
    bundle.install()
    obs.set_tracer(None)  # off by default; toggled on per traced query
    try:
        traced = SsiQueryService(
            slim_population(population_size),
            ServiceConfig(**config),
            telemetry=bundle,
        )
        untraced = SsiQueryService(
            slim_population(population_size), ServiceConfig(**config)
        )
        traced.start()
        untraced.start()
        descriptors = standard_mix().descriptors()
        ratios, answers_on, answers_off = [], [], []
        wall_on = wall_off = 0.0
        for index in range(queries):
            descriptor = descriptors[index % len(descriptors)]
            t_on = t_off = 0.0
            for service in (
                (traced, untraced) if index % 2 else (untraced, traced)
            ):
                is_traced = service is traced
                if is_traced:
                    obs.set_tracer(bundle.tracer)
                start = time.perf_counter()
                served = await service.submit(descriptor)
                elapsed = time.perf_counter() - start
                if is_traced:
                    obs.set_tracer(None)
                    t_on = elapsed
                    answers_on.append(served.result)
                else:
                    t_off = elapsed
                    answers_off.append(served.result)
            wall_on += t_on
            wall_off += t_off
            ratios.append(t_on / t_off)
        await traced.stop()
        await untraced.stop()
        spans = len(bundle.tracer.spans)
    finally:
        bundle.shutdown()
    return ratios, wall_on, wall_off, answers_on, answers_off, spans


def answer_digest(answers: list) -> str:
    """Order-sensitive digest of every served answer (bit-identity proxy)."""
    return hashlib.sha256(
        "|".join(repr(a) for a in answers).encode("utf-8")
    ).hexdigest()[:16]


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def load_phase(experiment: Experiment, params: dict) -> None:
    import gc

    # One untimed pass first: process-wide lazy caches (crypto tables,
    # fleet state) warm up exactly once, billed to no mode.
    asyncio.run(run_paired(0.0, params["queries"], params["population"]))
    digests: dict[str, str] = {}
    best_off = float("inf")
    mode_rows = []
    for mode, rate in MODES:
        if rate is None:
            continue
        pooled: list[float] = []
        walls_on: list[float] = []
        spans = 0
        for _ in range(params["repeats"]):
            # Garbage from the previous run must not slow this one's
            # allocations (uncollected heaps drift walls monotonically).
            gc.collect()
            ratios, wall_on, wall_off, on, off, spans = asyncio.run(
                run_paired(rate, params["queries"], params["population"])
            )
            pooled.extend(ratios)
            walls_on.append(wall_on)
            best_off = min(best_off, wall_off)
            digest = answer_digest(on)
            # Traced and untraced answers are identical bytes, and every
            # repeat of every mode agrees.
            assert answer_digest(off) == digest
            assert digests.setdefault(mode, digest) == digest
            digests.setdefault("disabled", digest)
        overhead = (_median(pooled) - 1.0) * 100.0
        experiment.meta.setdefault("overhead_pct", {})[mode] = round(
            overhead, 3
        )
        mode_rows.append((mode, min(walls_on), overhead, spans))
        record_wall_clock(experiment, f"load_{mode}", min(walls_on))
    experiment.add_row(
        "load",
        "disabled",
        params["queries"],
        round(best_off, 4),
        round(best_off / params["queries"] * 1000.0, 3),
        0.0,
        0,
        "-",
    )
    record_wall_clock(experiment, "load_disabled", best_off)
    for mode, wall_on, overhead, spans in mode_rows:
        experiment.add_row(
            "load",
            mode,
            params["queries"],
            round(wall_on, 4),
            round(wall_on / params["queries"] * 1000.0, 3),
            round(overhead, 2),
            spans,
            "-",
        )
    experiment.meta["answer_digests"] = digests


# ----------------------------------------------------------------------
# Phase 2: flash-read invariance on the embedded engine
# ----------------------------------------------------------------------
def make_embedded_db():
    from repro.hardware.flash import FlashGeometry
    from repro.hardware.profiles import HardwareProfile, smart_usb_token
    from repro.hardware.token import SecurePortableToken
    from repro.relational.query import EmbeddedDatabase
    from repro.workloads import tpcd

    base = smart_usb_token()
    profile = HardwareProfile(
        name="e26-token",
        ram_bytes=128 * 1024,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(
            page_size=1024, pages_per_block=32, num_blocks=2048
        ),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    token = SecurePortableToken(profile=profile, cache_pages=16)
    db = EmbeddedDatabase(token, tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
    scale = 40 if smoke_mode() else 150
    tpcd.load(db, tpcd.generate(scale, seed=31))
    db.create_tselect("CUSTOMER", "Mktsegment")
    return db, tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")


def flash_phase(experiment: Experiment) -> None:
    readings: dict[str, tuple] = {}
    for mode, rate in MODES:
        db, query = make_embedded_db()
        before = db.token.flash.stats.page_reads
        if rate is None:
            rows, _ = db.query(query)
        else:
            with Telemetry(sample_rate=rate) as bundle:
                context = bundle.sampler.context_for("e26-flash")
                with obs_telemetry.activate(context):
                    rows, _ = db.query(query)
        delta = db.token.flash.stats.page_reads - before
        readings[mode] = (repr(rows), delta)
        experiment.add_row("flash", mode, 1, "-", "-", "-", "-", delta)
    experiment.meta["flash_reads"] = {m: d for m, (_, d) in readings.items()}
    baseline = readings["disabled"]
    assert baseline[1] > 0
    for mode, reading in readings.items():
        assert reading == baseline, f"mode {mode} diverged from disabled"


# ----------------------------------------------------------------------
# Phase 3: forced Overloaded burst -> validated flight bundle
# ----------------------------------------------------------------------
async def run_burst(dump_dir: Path):
    with Telemetry(sample_rate=1.0, dump_dir=dump_dir) as bundle:
        service = SsiQueryService(
            slim_population(64),
            ServiceConfig(max_in_flight=1, max_queue_depth=1, cache_capacity=0),
            telemetry=bundle,
        )
        service.start()
        descriptor = standard_mix().descriptors()[0]
        try:
            outcomes = await asyncio.gather(
                *(service.submit(descriptor) for _ in range(8)),
                return_exceptions=True,
            )
        finally:
            await service.stop()
        sheds = sum(1 for o in outcomes if isinstance(o, Overloaded))
        return sheds, list(bundle.recorder.dumps)


def burst_phase(experiment: Experiment) -> None:
    dump_dir = Path(
        os.environ.get("BENCH_JSON_DIR") or "."
    ) / "e26_flight"
    sheds, dumps = asyncio.run(run_burst(dump_dir))
    assert sheds > 0 and dumps, "burst produced no shed or no bundle"
    problems = [p for path in dumps for p in obs_check.check_file(path)]
    experiment.meta["flight_bundles"] = [str(p) for p in dumps]
    experiment.meta["flight_sheds"] = sheds
    experiment.meta["flight_check_problems"] = problems
    assert problems == [], problems
    # The bundle carries the shedding queue depths where promised.
    import json

    lines = [
        json.loads(line) for line in dumps[0].read_text().splitlines()
    ]
    assert lines[0]["details"]["queue_depth"] >= 1
    assert lines[-1]["snapshot"]["service.shed_queue_depth"] >= 1


# ----------------------------------------------------------------------
def build_experiment() -> Experiment:
    params = parameters()
    experiment = Experiment(
        experiment_id="e26",
        title="Distributed tracing: overhead, invariance, flight recorder",
        claim="1%-head-sampled tracing costs <=2% wall-clock over tracing "
        "disabled on an E24-style load; sampling at any rate changes no "
        "answer and no flash read; a forced Overloaded burst dumps a "
        "schema-valid flight bundle carrying the shed queue depths",
        columns=[
            "phase", "mode", "queries", "wall_s", "per_query_ms",
            "overhead_pct", "spans", "flash_reads",
        ],
    )
    experiment.meta["smoke_mode"] = smoke_mode()
    experiment.meta["population"] = params["population"]
    experiment.meta["repeats"] = params["repeats"]
    load_phase(experiment, params)
    flash_phase(experiment)
    burst_phase(experiment)
    return experiment


def verify(experiment: Experiment) -> None:
    digests = experiment.meta["answer_digests"]
    # Sampling never changes an answer: every mode served the same bytes.
    assert len(set(digests.values())) == 1, digests
    # Full tracing actually traced; head sampling actually sampled.
    by_mode = {row[1]: row for row in experiment.rows if row[0] == "load"}
    assert by_mode["100%"][6] > by_mode["1%"][6] >= 0
    assert by_mode["0%"][6] == 0
    if not smoke_mode():
        overhead = experiment.meta["overhead_pct"]["1%"]
        assert overhead <= OVERHEAD_CEILING_PCT, (
            f"1%-sampled overhead {overhead:.2f}% exceeds "
            f"{OVERHEAD_CEILING_PCT}%"
        )


def test_e26_telemetry(benchmark):
    verify(run_and_print(build_experiment))


if __name__ == "__main__":
    verify(run_and_print(build_experiment))
