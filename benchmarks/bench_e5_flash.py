"""E5 — Why log structures: random in-place updates vs sequential appends.

Claim under test (the "Severe hardware constraints" slide): NAND erases by
block and programs by page, so updating records in place forces one block
erase + block rewrite per touched page, while the log-structured layout
turns the same workload into pure sequential programs — an order of
magnitude less simulated time and no write amplification.
"""

from __future__ import annotations

import random

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.storage.log import RecordLog

GEOMETRY = FlashGeometry(page_size=512, pages_per_block=16, num_blocks=4096)


def in_place_updates(num_pages: int, num_updates: int, seed: int) -> NandFlash:
    """The naive layout: records at fixed pages, updates rewrite in place.

    An in-place page update on NAND requires erasing the whole enclosing
    block and reprogramming every page of it (no rewrite without erase).
    """
    flash = NandFlash(GEOMETRY)
    per_block = GEOMETRY.pages_per_block
    for page in range(num_pages):
        flash.program_page(page, b"v0")
    rng = random.Random(seed)
    content = {page: b"v0" for page in range(num_pages)}
    for update in range(num_updates):
        page = rng.randrange(num_pages)
        content[page] = b"v%d" % update
        block = GEOMETRY.block_of(page)
        start = GEOMETRY.first_page_of(block)
        # Save the sibling pages, erase the block, rewrite everything.
        block_pages = [
            content.get(p, None) for p in range(start, start + per_block)
        ]
        for p in range(start, start + per_block):
            if content.get(p) is not None:
                flash.read_page(p)
        flash.erase_block(block)
        for offset, value in enumerate(block_pages):
            if value is not None:
                flash.program_page(start + offset, value)
    return flash


def log_updates(num_pages: int, num_updates: int, seed: int) -> NandFlash:
    """The log layout: every update is an append (old versions obsolete)."""
    flash = NandFlash(GEOMETRY)
    log = RecordLog(BlockAllocator(flash), name="updates")
    rng = random.Random(seed)
    for page in range(num_pages):
        log.append(b"init|%d" % page)
    for update in range(num_updates):
        log.append(b"upd|%d|%d" % (rng.randrange(num_pages), update))
    log.flush()
    return flash


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E5",
        title="Random in-place updates vs log-structured appends",
        claim="in-place pays ~1 erase + block rewrite per update; the log "
        "pays sequential programs only (orders of magnitude cheaper)",
        columns=[
            "updates", "inplace_erases", "inplace_programs", "inplace_ms",
            "log_erases", "log_programs", "log_ms", "speedup",
        ],
    )
    num_pages = 512
    for num_updates in (100, 400, 1600):
        naive = in_place_updates(num_pages, num_updates, seed=1)
        logged = log_updates(num_pages, num_updates, seed=1)
        naive_ms = naive.total_time_us() / 1000
        log_ms = logged.total_time_us() / 1000
        experiment.add_row(
            num_updates,
            naive.stats.block_erases,
            naive.stats.page_programs,
            round(naive_ms, 2),
            logged.stats.block_erases,
            logged.stats.page_programs,
            round(log_ms, 2),
            round(naive_ms / log_ms, 1),
        )
    return experiment


def test_e5_flash(benchmark):
    experiment = run_and_print(build_experiment)
    # One erase per update for the naive layout; none for the log.
    assert experiment.column("inplace_erases") == [100, 400, 1600]
    assert all(erases == 0 for erases in experiment.column("log_erases"))
    assert all(speedup > 10 for speedup in experiment.column("speedup"))
    # Write amplification: in-place programs a whole block per update.
    inplace = experiment.column("inplace_programs")
    log = experiment.column("log_programs")
    assert all(a > b * 10 for a, b in zip(inplace, log))

    benchmark(log_updates, 128, 200, 2)


def test_e5_wear(benchmark):
    """Wear: in-place concentrates erases; the log spreads allocation."""
    naive = in_place_updates(256, 800, seed=3)
    worst_wear = max(
        naive.erase_count(block) for block in range(GEOMETRY.num_blocks)
    )
    logged = log_updates(256, 800, seed=3)
    log_wear = max(
        logged.erase_count(block) for block in range(GEOMETRY.num_blocks)
    )
    print(f"\nE5-wear: worst block erases — in-place {worst_wear}, log {log_wear}")
    assert worst_wear > 10
    assert log_wear == 0
    benchmark(lambda: None)
