"""E24 — The SSI as a query service: admission, caching, and the knee.

Claims under test (Issue 6's acceptance criteria):

* under concurrent mixed-class load with churn enabled, **every** completed
  query's aggregate is bit-identical to the one-shot batch driver re-run
  over the (snapshot, seed) the service recorded for it — scheduling,
  caching and churn cannot perturb an answer;
* an open-loop Poisson sweep over arrival rate × worker count × cache size
  exhibits a measurable saturation knee: below it goodput tracks offered
  load, above it queues fill and admission control sheds with the typed
  ``Overloaded`` rejection;
* the version-exact result cache moves the knee to higher rates at equal
  answers (hits are byte-identical replays, never approximations).

Row meaning: one row per sweep cell — offered rate (q/s), scheduler width
(``in_flight``), cache capacity, offered/completed/shed counts, goodput
(q/s), latency p50/p99/p999 (ms), cache hits, and whether every unique
computed answer verified bit-identically. ``meta`` carries the knee per
(in_flight, cache) configuration and the persistent-pool reuse timing.

``SERVICE_SMOKE=1`` (the CI job) runs the same sweep at tiny sizes, like
``BENCH_SMOKE``.
"""

from __future__ import annotations

import asyncio
import os
import random
import time

from repro.bench.harness import (
    Experiment,
    record_wall_clock,
    run_and_print,
    smoke_mode,
)
from repro.globalq.parallel import ShardedCollector, WorkerPool
from repro.globalq.protocol import TokenFleet
from repro.globalq.queries import AggregateQuery
from repro.net.runtime import ChurnModel
from repro.service import (
    MembershipChurn,
    OpenLoopLoadGenerator,
    ServiceConfig,
    SsiQueryService,
    embedded_mix,
    find_knee,
    run_query,
    slim_population,
    standard_mix,
)

#: Goodput/offered floor that still counts as "keeping up" (knee threshold).
KNEE_THRESHOLD = 0.9


def service_smoke() -> bool:
    """Tiny sizes under either the generic or the service CI smoke flag."""
    return smoke_mode() or bool(os.environ.get("SERVICE_SMOKE"))


def parameters() -> dict:
    if service_smoke():
        return {
            "population": 240,
            "rates": [4.0, 16.0],
            "in_flight": [1, 2],
            "caches": [0, 8],
            "duration_s": 0.5,
            "churn_sample": 3,
            "embedded_rates": [4.0, 16.0, 32.0],
            "embedded_rows": 2000,
            "embedded_duration_s": 0.5,
        }
    return {
        "population": 4000,
        "rates": [1.0, 2.0, 4.0, 8.0, 16.0],
        "in_flight": [1, 4],
        "caches": [0, 16],
        "duration_s": 2.0,
        "churn_sample": 4,
        "embedded_rates": [2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
        "embedded_rows": 2000,
        "embedded_duration_s": 2.0,
    }


async def run_cell(
    population_size: int,
    rate: float,
    in_flight: int,
    cache_capacity: int,
    duration_s: float,
    churn_sample: int,
):
    """One sweep cell: fresh population, churn on, open-loop load."""
    population = slim_population(population_size)
    service = SsiQueryService(
        population,
        ServiceConfig(
            max_in_flight=in_flight,
            max_queue_depth=16,
            cache_capacity=cache_capacity,
            record_snapshots=True,
        ),
    )
    service.start()
    churn = MembershipChurn(
        population,
        ChurnModel(offline_fraction=0.25, mean_online=1.5),
        rng=random.Random(int(rate * 100) + in_flight),
        sample=churn_sample,
    )
    churn.start()
    generator = OpenLoopLoadGenerator(
        service, standard_mix(), seed=int(rate * 10) + cache_capacity
    )
    report = await generator.run(rate, duration_s, keep_results=True)
    await churn.stop()
    await service.stop()
    return population, service, report


def verify_bit_identity(population, service, report) -> tuple[int, bool]:
    """Re-run the batch driver for every unique served computation.

    Served answers that share (descriptor, version) share the snapshot and
    seed by construction, so each unique pair verifies all its replays —
    including every cache hit.
    """
    unique = {}
    for served in report.results:
        key = (served.descriptor.canonical(), served.version)
        existing = unique.get(key)
        if existing is not None:
            # A replay (cache hit or identical recomputation) must already
            # be byte-identical to its first serving.
            if (
                existing.result != served.result
                or existing.seed != served.seed
            ):
                return len(unique), False
            continue
        unique[key] = served
    for served in unique.values():
        reference = run_query(
            served.descriptor,
            served.snapshot.nodes,
            population.fleet,
            served.seed,
            service.config.domain,
        )
        if reference.result != served.result:
            return len(unique), False
    return len(unique), True


def sweep(experiment: Experiment) -> None:
    params = parameters()
    reports_by_config: dict[tuple[int, int], list] = {}
    for in_flight in params["in_flight"]:
        for cache_capacity in params["caches"]:
            for rate in params["rates"]:
                start = time.perf_counter()
                population, service, report = asyncio.run(
                    run_cell(
                        params["population"],
                        rate,
                        in_flight,
                        cache_capacity,
                        params["duration_s"],
                        params["churn_sample"],
                    )
                )
                wall_s = time.perf_counter() - start
                verified, exact = verify_bit_identity(
                    population, service, report
                )
                summary = report.latency_ms.summary()
                experiment.add_row(
                    rate,
                    in_flight,
                    cache_capacity,
                    report.offered,
                    report.completed,
                    report.shed,
                    round(report.goodput, 2),
                    round(summary["p50"], 1),
                    round(summary["p99"], 1),
                    round(summary["p999"], 1),
                    report.cache_hits,
                    verified,
                    exact,
                    "-",
                )
                record_wall_clock(
                    experiment,
                    f"cell_r{rate:g}_w{in_flight}_c{cache_capacity}",
                    wall_s,
                )
                reports_by_config.setdefault(
                    (in_flight, cache_capacity), []
                ).append(report)
    experiment.meta["knees"] = {
        f"in_flight={in_flight},cache={cache}": find_knee(
            reports, KNEE_THRESHOLD
        )
        for (in_flight, cache), reports in reports_by_config.items()
    }


async def run_embedded_cell(
    rate: float, duration_s: float, rows: int, batch_size: int | None
):
    """One embedded-spj sweep cell: engine choice via service config.

    Churn is off and the population tiny — this family never touches the
    fleet; the cell isolates the hosted Part II engine's per-query CPU
    cost, which is exactly what the columnar executor changes. Cache is
    off so every admitted query actually executes.
    """
    population = slim_population(24)
    service = SsiQueryService(
        population,
        ServiceConfig(
            max_in_flight=2,
            max_queue_depth=16,
            cache_capacity=0,
            record_snapshots=True,
            embedded_batch_size=batch_size,
        ),
    )
    service.start()
    generator = OpenLoopLoadGenerator(
        service, embedded_mix(rows), seed=int(rate * 10)
    )
    report = await generator.run(rate, duration_s, keep_results=True)
    await service.stop()
    return population, service, report


def embedded_sweep(experiment: Experiment) -> None:
    """Embedded-family rate sweep, legacy vs columnar executor.

    The tentpole's service-level claim: the batch engine's cheaper
    per-query CPU moves the saturation knee to a strictly higher offered
    rate (above 8 q/s) than the tuple-at-a-time engine sustains.
    """
    params = parameters()
    # Prewarm the hosted database so the one-time build cost (shared by
    # both engines via the registry) never lands in a cell's latency.
    from repro.service import run_embedded

    start = time.perf_counter()
    run_embedded(embedded_mix(params["embedded_rows"]).descriptors()[0])
    record_wall_clock(
        experiment, "embedded_db_build", time.perf_counter() - start
    )
    knees = {}
    for engine, batch_size in (("legacy", 0), ("batch", None)):
        reports = []
        for rate in params["embedded_rates"]:
            start = time.perf_counter()
            population, service, report = asyncio.run(
                run_embedded_cell(
                    rate,
                    params["embedded_duration_s"],
                    params["embedded_rows"],
                    batch_size,
                )
            )
            wall_s = time.perf_counter() - start
            verified, exact = verify_bit_identity(
                population, service, report
            )
            summary = report.latency_ms.summary()
            experiment.add_row(
                rate,
                2,
                0,
                report.offered,
                report.completed,
                report.shed,
                round(report.goodput, 2),
                round(summary["p50"], 1),
                round(summary["p99"], 1),
                round(summary["p999"], 1),
                report.cache_hits,
                verified,
                exact,
                engine,
            )
            record_wall_clock(
                experiment, f"embedded_r{rate:g}_{engine}", wall_s
            )
            reports.append(report)
        knees[engine] = find_knee(reports, KNEE_THRESHOLD)
    experiment.meta["embedded_knees"] = knees
    experiment.meta["embedded_rows"] = params["embedded_rows"]


def pool_reuse_rows(experiment: Experiment) -> None:
    """Satellite 1: a persistent WorkerPool amortises process spawning."""
    calls = 4
    population = slim_population(60 if service_smoke() else 600)
    nodes = list(population.snapshot().nodes)
    query = AggregateQuery.sum("salary")

    start = time.perf_counter()
    for _ in range(calls):
        ShardedCollector(workers=2, shard_size=64).collect(
            nodes, query, TokenFleet(0)
        )
    per_call_s = time.perf_counter() - start

    start = time.perf_counter()
    with WorkerPool(workers=2) as pool:
        for _ in range(calls):
            ShardedCollector(shard_size=64, pool=pool).collect(
                nodes, query, TokenFleet(0)
            )
    pooled_s = time.perf_counter() - start

    experiment.meta["pool_reuse"] = {
        "calls": calls,
        "per_call_executor_s": round(per_call_s, 3),
        "persistent_pool_s": round(pooled_s, 3),
        "speedup": round(per_call_s / pooled_s, 2) if pooled_s else None,
    }
    record_wall_clock(experiment, "pool_per_call", per_call_s)
    record_wall_clock(experiment, "pool_persistent", pooled_s)


def build_experiment() -> Experiment:
    params = parameters()
    experiment = Experiment(
        experiment_id="e24",
        title="SSI query service: admission, churn-aware cache, knee",
        claim="a persistent SSI serves concurrent mixed [TNP14] queries "
        "bit-identically to the one-shot driver under churn; open-loop "
        "load locates a saturation knee and the version-exact cache "
        "moves it to higher rates",
        columns=[
            "rate_qps", "in_flight", "cache", "offered", "completed",
            "shed", "goodput_qps", "p50_ms", "p99_ms", "p999_ms",
            "cache_hits", "verified", "exact", "engine",
        ],
    )
    experiment.meta["smoke_mode"] = service_smoke()
    experiment.meta["population"] = params["population"]
    experiment.meta["duration_s"] = params["duration_s"]
    experiment.meta["knee_threshold"] = KNEE_THRESHOLD
    sweep(experiment)
    embedded_sweep(experiment)
    pool_reuse_rows(experiment)
    return experiment


def test_e24_service(benchmark):
    experiment = run_and_print(build_experiment)
    # The acceptance property: every completed answer, in every cell,
    # reproduced bit-identically by the batch driver.
    assert all(experiment.column("exact"))
    assert all(v > 0 for v in experiment.column("verified"))
    # Saturation is observable: the highest-rate uncached narrow config
    # sheds, and each configuration reports a knee.
    knees = experiment.meta["knees"]
    assert knees
    for knee in knees.values():
        assert knee["knee_rate_qps"] > 0
    # The tentpole's service claim, asserted in smoke and full runs alike:
    # the columnar engine sustains embedded-spj load past 8 q/s, and at
    # least as far as the tuple-at-a-time engine does.
    embedded_knees = experiment.meta["embedded_knees"]
    assert embedded_knees["batch"]["knee_rate_qps"] > 8.0
    assert (
        embedded_knees["batch"]["knee_rate_qps"]
        >= embedded_knees["legacy"]["knee_rate_qps"]
    )
    protocol_rows = [row for row in experiment.rows if row[13] == "-"]
    if not service_smoke():
        # Past the knee the service sheds rather than queueing unboundedly.
        shed_total = sum(experiment.column("shed"))
        assert shed_total > 0
        # The cache lifts goodput at the top offered rate (same in_flight).
        top = max(row[0] for row in protocol_rows)
        def goodput(cache):
            return max(
                row[6]
                for row in protocol_rows
                if row[0] == top and row[2] == cache
            )
        assert goodput(16) > goodput(0)

    # pytest-benchmark hook: one served query end to end (tiny population).
    def one_query():
        async def body():
            population = slim_population(60)
            service = SsiQueryService(
                population, ServiceConfig(max_in_flight=1)
            )
            service.start()
            served = await service.submit(standard_mix().descriptors()[1])
            await service.stop()
            return served

        return asyncio.run(body())

    served = benchmark(one_query)
    assert served.result["*"] == 60.0


if __name__ == "__main__":
    run_and_print(build_experiment)
