"""E14 — HW/SW co-design: calibrating RAM to the data treatments.

Part II's conclusion poses the open problem — *"how to calibrate the HW
(RAM) to data-oriented treatments? how to adapt to dynamic variations?"* —
and this bench answers it operationally: the analytic RAM models predict
the simulator's measured high-water marks exactly, the advisor ranks the
device profiles for a workload, and shrinking RAM degrades plans
(multi-pass reorganization, capped query width) instead of failing.
"""

from __future__ import annotations

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.codesign.advisor import evaluate_profile, recommend
from repro.codesign.models import (
    WorkloadSpec,
    reorg_min_single_pass_buffer,
    reorg_passes,
    search_ram,
    spj_ram,
)
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.token import SecurePortableToken
from repro.search.engine import EmbeddedSearchEngine
from repro.workloads import tpcd


def make_token(page_size: int) -> SecurePortableToken:
    base = smart_usb_token()
    return SecurePortableToken(
        profile=HardwareProfile(
            name="calib",
            ram_bytes=64 * 1024,
            cpu_mhz=base.cpu_mhz,
            flash_geometry=FlashGeometry(page_size, 32, 2048),
            flash_cost=base.flash_cost,
            tamper_resistant=True,
        )
    )


def build_prediction_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E14",
        title="Predicted vs measured operation RAM",
        claim="the closed-form models equal the simulator's high-water "
        "marks, byte for byte",
        columns=["operation", "parameters", "predicted_B", "measured_B", "exact"],
    )
    # Search at several query widths.
    token = make_token(2048)
    engine = EmbeddedSearchEngine(token, num_buckets=64)
    for text in ("doctor invoice meeting", "doctor energy", "invoice meeting"):
        engine.add_document(text)
    engine.flush()
    resident = token.mcu.ram.in_use
    queries = {1: "doctor", 2: "doctor invoice", 3: "doctor invoice meeting"}
    for keywords, query in queries.items():
        token.mcu.ram.reset_high_water()
        engine.search(query, n=10)
        measured = token.mcu.ram.high_water - resident
        predicted = search_ram(
            WorkloadSpec(page_size=2048, max_query_keywords=keywords, top_n=10)
        )
        experiment.add_row(
            "search", f"{keywords} keywords", predicted, measured,
            predicted == measured,
        )
    # SPJ with two Tselect streams.
    from repro.relational.query import EmbeddedDatabase

    db = EmbeddedDatabase(make_token(1024), tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
    tpcd.load(db, tpcd.generate(200, seed=3))
    db.create_tselect("CUSTOMER", "Mktsegment")
    db.create_tselect("SUPPLIER", "Name")
    _, stats = db.query(tpcd.household_supplier_query())
    predicted = spj_ram(WorkloadSpec(page_size=1024, max_tselect_streams=2))
    experiment.add_row(
        "spj", "2 Tselect streams", predicted, stats.ram_high_water,
        predicted == stats.ram_high_water,
    )
    return experiment


def build_advisor_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E14-advisor",
        title="Profile ranking for a heavy personal workload",
        claim="bigger devices fit clean; the 16 KB sensor degrades "
        "(multi-pass reorg, capped keywords) but stays functional",
        columns=[
            "profile", "ram_kB", "fits", "reorg_extra_passes",
            "keywords_supported",
        ],
    )
    spec = WorkloadSpec(
        page_size=2048,
        max_query_keywords=6,
        index_entries=300_000,
        index_entry_bytes=18,
    )
    for recommendation in recommend(spec):
        experiment.add_row(
            recommendation.profile_name,
            recommendation.ram_bytes // 1024,
            recommendation.fits,
            recommendation.reorg_passes,
            recommendation.max_keywords_supported,
        )
    return experiment


def test_e14_model_accuracy(benchmark):
    experiment = run_and_print(build_prediction_experiment)
    assert all(experiment.column("exact"))

    spec = WorkloadSpec()
    benchmark(reorg_min_single_pass_buffer, spec)


def test_e14_advisor(benchmark):
    experiment = run_and_print(build_advisor_experiment)
    rows = {row[0]: row for row in experiment.rows}
    assert rows["plug-server"][2]  # plenty of RAM fits
    sensor = rows["flash-sensor"]
    assert not sensor[2]
    assert sensor[3] >= 1  # degraded reorg (multi-pass merges)
    # 6 keyword buffers of 2 KB still fit in 16 KB, so no query cap here;
    # with 4 KB pages the sensor must cap query width.
    wide = WorkloadSpec(page_size=4096, max_query_keywords=6)
    from repro.hardware.profiles import flash_sensor

    capped = evaluate_profile(wide, flash_sensor())
    assert 0 < capped.max_keywords_supported < 6
    assert capped.notes
    # RAM ordering monotone in capability: more RAM never fewer keywords.
    ordered = sorted(experiment.rows, key=lambda row: row[1])
    keywords = [row[4] for row in ordered]
    assert keywords == sorted(keywords)

    benchmark(lambda: None)


def test_e14_dynamic_adaptation(benchmark):
    """Shrinking RAM turns into extra merge passes, not failure."""
    experiment = Experiment(
        experiment_id="E14-dynamic",
        title="Reorg passes as RAM shrinks (500k-entry index)",
        claim="passes grow stepwise as the sort buffer falls below the "
        "square-root law threshold",
        columns=["ram_kB", "extra_passes"],
    )
    spec = WorkloadSpec(page_size=2048, index_entries=500_000)
    threshold = reorg_min_single_pass_buffer(spec)
    for ram_kb in (256, 64, 16, 8):
        buffer = min(ram_kb * 1024, threshold * 4)
        buffer = min(buffer, ram_kb * 1024)
        experiment.add_row(ram_kb, reorg_passes(spec, buffer))
    print()
    print(render_table(experiment))
    passes = experiment.column("extra_passes")
    assert passes == sorted(passes)  # monotone as RAM shrinks
    assert passes[0] == 0 and passes[-1] >= 1

    benchmark(lambda: None)
