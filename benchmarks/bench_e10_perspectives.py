"""E10 — The perspective deployments behave as promised.

Claims under test: the medical folder converges without any network link
(badge rounds only) and never re-enters data; Folk-IS delivers every bundle
through physical encounters with latency falling as encounter density
rises; Trusted Cells survive device loss via the encrypted cloud archive.
"""

from __future__ import annotations

import statistics

from repro.apps.folkis import FolkNetwork
from repro.apps.medical import MedicalDeployment
from repro.apps.trustedcells import EncryptedCloudStore, SensorEvent, TrustedCell
from repro.bench.harness import Experiment, render_table, run_and_print
from repro.globalq.protocol import TokenFleet


def build_medical_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E10a",
        title="Medical folder: convergence through badge visits",
        claim="after a closing badge tour every patient home equals the "
        "central folder; badge moves each doc at most once per replica",
        columns=[
            "patients", "rounds", "authored", "badge_moves",
            "converged_after_tour",
        ],
    )
    for patients, rounds in ((5, 20), (20, 80), (50, 200)):
        deployment = MedicalDeployment(num_patients=patients, seed=patients)
        stats = deployment.simulate_rounds(rounds)
        deployment.final_sync_all()
        converged = all(
            deployment.patient_converged(p) for p in range(patients)
        )
        experiment.add_row(
            patients, rounds, stats.documents_authored,
            stats.badge_documents_moved, converged,
        )
    return experiment


def build_folkis_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E10b",
        title="Folk-IS: delivery latency vs encounter density",
        claim="every bundle delivered; median latency falls as encounters "
        "per step rise (epidemic routing)",
        columns=[
            "nodes", "encounters_per_step", "bundles", "delivered",
            "median_latency", "max_latency",
        ],
    )
    for nodes, density in ((40, 4), (40, 12), (120, 12), (120, 40)):
        network = FolkNetwork(
            num_nodes=nodes, seed=3, encounters_per_step=density
        )
        for i in range(10):
            network.send(i, nodes - 1 - i, b"report-%d" % i)
        network.run_until_delivered()
        latencies = network.delivery_latencies()
        experiment.add_row(
            nodes, density, len(network.bundles), len(latencies),
            statistics.median(latencies), max(latencies),
        )
    return experiment


def test_e10_medical(benchmark):
    experiment = run_and_print(build_medical_experiment)
    assert all(experiment.column("converged_after_tour"))
    # No data re-entered: each document crosses to central once and to each
    # of the other homes at most once, so moves <= authored x (patients + 1).
    for row in experiment.rows:
        patients, _, authored, moves, _ = row
        assert moves <= authored * (patients + 1)

    deployment = MedicalDeployment(num_patients=5, seed=1)
    benchmark(deployment.simulate_rounds, 5)


def test_e10_folkis(benchmark):
    experiment = run_and_print(build_folkis_experiment)
    assert experiment.column("bundles") == experiment.column("delivered")
    rows = experiment.rows
    # Same population, more encounters -> no slower (compare rows 0/1, 2/3).
    assert rows[1][4] <= rows[0][4]
    assert rows[3][4] <= rows[2][4]

    def run_small():
        network = FolkNetwork(num_nodes=20, seed=5, encounters_per_step=6)
        network.send(0, 19, b"x")
        network.run_until_delivered()

    benchmark(run_small)


def test_e10_trusted_cells(benchmark):
    """Durability: a lost cell is rebuilt from the encrypted archive."""
    experiment = Experiment(
        experiment_id="E10c",
        title="Trusted Cells: encrypted archive restore",
        claim="all documents recovered; the cloud never stores plaintext",
        columns=["readings", "restored", "cloud_kB", "plaintext_leaks"],
    )
    for readings in (10, 100):
        fleet = TokenFleet(seed=readings)
        cloud = EncryptedCloudStore()
        cell = TrustedCell("alice", fleet, cloud)
        for month in range(readings):
            cell.ingest_sensor(
                SensorEvent("meter", {"kwh": 100 + month, "month": month})
            )
        restored = cell.restore_from_cloud()
        leaks = sum(
            1 for blob in cloud.snoop(cell.cell_id) if b"meter" in blob
        )
        experiment.add_row(
            readings,
            restored.pds.document_count,
            round(cloud.stored_bytes(cell.cell_id) / 1024, 1),
            leaks,
        )
    print()
    print(render_table(experiment))
    assert experiment.column("readings") == experiment.column("restored")
    assert all(leaks == 0 for leaks in experiment.column("plaintext_leaks"))

    benchmark(lambda: None)
