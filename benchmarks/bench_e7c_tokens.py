"""E7c — Tokens change the complexity class of secure comparison & mining.

The "SMC Using Tokens" slide's quantitative content:

* the millionaires' problem drops from O(2^bits) RSA decryptions (the 1982
  protocol, E7a) to O(bits) **symmetric** operations with a garbled
  comparator whose oblivious transfers run through a tamper-proof token;
* the [CKV+02] application — association rules over horizontally
  partitioned data — mines the exact centralized ruleset with one masked
  ring sum per candidate itemset and zero public-key operations.
"""

from __future__ import annotations

import random

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.crypto.rsa import generate_keypair as rsa_keypair
from repro.smc.association import mine_centralized, mine_distributed
from repro.smc.garbled import garbled_millionaires
from repro.smc.millionaire import millionaires
from repro.smc.parties import Channel

RSA_KEYS = rsa_keypair(bits=256, rng=random.Random(81))


def build_comparison_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E7c",
        title="Millionaires: Yao'82 (exponential) vs garbled+token (linear)",
        claim="1982: modexps = 2^bits; garbled circuit with token-OT: "
        "symmetric ops ~ 9 x bits, zero modexps",
        columns=[
            "bits", "yao82_modexps", "garbled_sym_ops", "garbled_modexps",
            "ot_transfers", "agree",
        ],
    )
    rng = random.Random(5)
    for bits in (3, 5, 7):
        domain = 2**bits
        alice, bob = domain - 2, domain // 3 + 1
        old = millionaires(alice, bob, domain, Channel(), rng, keypair=RSA_KEYS)
        new = garbled_millionaires(alice - 1, bob - 1, bits, Channel(), rng)
        experiment.add_row(
            bits,
            old.crypto.modexps,
            new.crypto.symmetric_ops,
            new.crypto.modexps,
            new.ot_transfers,
            old.alice_at_least_bob == new.alice_at_least_bob,
        )
    return experiment


def make_sites(num_sites: int, transactions_per_site: int, seed: int):
    rng = random.Random(seed)
    catalogue = ["bread", "butter", "milk", "jam", "eggs", "tea"]
    sites = []
    for _ in range(num_sites):
        site = []
        for _ in range(transactions_per_site):
            basket = {
                item for item in catalogue if rng.random() < 0.4
            } or {"bread"}
            site.append(basket)
        sites.append(site)
    return sites


def build_mining_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E7c-mining",
        title="Association rules over partitioned sites ([CKV+02])",
        claim="distributed rules == centralized rules; cost = one ring "
        "secure sum per candidate itemset",
        columns=[
            "sites", "transactions", "rules", "secure_sums", "comm_kB",
            "equal_to_centralized",
        ],
    )
    for num_sites in (3, 6):
        sites = make_sites(num_sites, 40, seed=num_sites)
        pooled = [t for site in sites for t in site]
        # Random 0.4-density baskets: pair supports sit around 0.16, so
        # thresholds must admit pairs for any rules to exist at all.
        central = mine_centralized(pooled, 0.12, 0.4)
        channel = Channel()
        report = mine_distributed(sites, 0.12, 0.4, channel, random.Random(1))
        experiment.add_row(
            num_sites,
            len(pooled),
            len(report.rules),
            report.secure_sums,
            round(report.comm_bytes / 1024, 1),
            [r.key() for r in report.rules] == [r.key() for r in central],
        )
    return experiment


def test_e7c_token_comparison(benchmark):
    experiment = run_and_print(build_comparison_experiment)
    assert all(experiment.column("agree"))
    assert all(m == 0 for m in experiment.column("garbled_modexps"))
    old = experiment.column("yao82_modexps")
    new = experiment.column("garbled_sym_ops")
    # Old: 2^bits decryptions (+1 encryption) — doubles per extra bit;
    # new grows by a constant amount per bit.
    assert old[0] - 1 == 2**3 and old[-1] - 1 == 2**7
    assert new[-1] - new[1] <= (new[1] - new[0]) * 2 + 10

    benchmark(
        garbled_millionaires, 100, 57, 8, Channel(), random.Random(2)
    )


def test_e7c_distributed_mining(benchmark):
    experiment = run_and_print(build_mining_experiment)
    assert all(experiment.column("equal_to_centralized"))
    assert all(rules > 0 for rules in experiment.column("rules"))

    sites = make_sites(3, 25, seed=9)
    benchmark(
        mine_distributed, sites, 0.3, 0.6, Channel(), random.Random(3)
    )
