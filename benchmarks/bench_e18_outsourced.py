"""E18 — Outsourced encrypted databases ([HILM02]/[HIM04] bucketization).

Part III cites Hacigümüş's bucketization as the foundation of the
histogram protocol family. Claims under test: range queries over the
encrypted outsourced table are exact after client post-filtering; the
false-positive transfer shrinks as buckets multiply while the provider's
bucket histogram sharpens — the trade-off curve the tutorial imports.
"""

from __future__ import annotations

import random

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.globalq.attacks import histogram_flatness
from repro.outsourced.hacigumus import OutsourcedDatabase, RangeBucketMap

KEY = b"0123456789abcdef"


def make_db(num_buckets: int, seed: int) -> OutsourcedDatabase:
    rng = random.Random(seed)
    return OutsourcedDatabase(
        KEY, {"age": RangeBucketMap(0, 100, num_buckets, rng)}, rng=rng
    )


def load(db: OutsourcedDatabase, count: int, seed: int):
    rng = random.Random(seed)
    rows = [
        {"id": i, "age": min(100, int(rng.gauss(40, 18)) % 101)}
        for i in range(count)
    ]
    for row in rows:
        db.insert(row)
    return rows


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E18",
        title="Bucketization: precision vs leak as buckets grow",
        claim="exact answers always; false-positive transfer falls with "
        "bucket count; the provider's histogram gets sharper (lower "
        "flatness on skewed data)",
        columns=[
            "buckets", "exact", "rows_transferred", "rows_matching",
            "fp_ratio", "histogram_flatness",
        ],
    )
    for buckets in (2, 4, 16, 50):
        db = make_db(buckets, seed=buckets)
        rows = load(db, 1500, seed=7)
        expected = sorted(
            row["id"] for row in rows if 35 <= row["age"] <= 45
        )
        answer, cost = db.range_query("age", 35, 45)
        exact = sorted(row["id"] for row in answer) == expected
        flatness = histogram_flatness(
            dict(db.server.observations.bucket_histogram)
        )
        experiment.add_row(
            buckets, exact, cost.rows_transferred, cost.rows_matching,
            round(cost.false_positive_ratio, 3), round(flatness, 3),
        )
    return experiment


def test_e18_bucketization_tradeoff(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("exact"))
    fp = experiment.column("fp_ratio")
    assert fp[0] > fp[-1]  # more buckets, fewer false positives
    assert fp[-1] < 0.5
    matching = experiment.column("rows_matching")
    assert len(set(matching)) == 1  # answers identical at every granularity
    # The leak direction: fine buckets expose the gaussian's shape, so the
    # observed histogram is less flat than with coarse buckets.
    flatness = experiment.column("histogram_flatness")
    assert flatness[-1] < flatness[0]

    db = make_db(16, seed=3)
    load(db, 400, seed=3)
    benchmark(db.range_query, "age", 30, 50)
