"""E16 — Hierarchical (XML-like) documents on the log framework.

Part II's extension list starts with XML. Claims under test: tree documents
flatten into path postings whose chains answer exact and ``//``-pattern
queries correctly (cross-checked against naive evaluation); probe IO is the
queried path's chain, not the store; the path dictionary stays schema-sized
however much data arrives (the RAM-budget argument for this design).
"""

from __future__ import annotations

import random

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hierarchical.store import HierarchicalStore

CITIES = ["lyon", "paris", "nice", "lille"]
DIAGNOSES = ["flu", "healthy", "asthma"]


def make_store(num_buckets=64) -> HierarchicalStore:
    flash = NandFlash(
        FlashGeometry(page_size=512, pages_per_block=16, num_blocks=8192)
    )
    return HierarchicalStore(BlockAllocator(flash), num_buckets=num_buckets)


def generate_form(rng: random.Random) -> dict:
    return {
        "patient": {
            "address": {"city": rng.choice(CITIES), "zip": rng.randrange(10)},
            "age": rng.randrange(18, 90),
            "visits": [
                {"diagnosis": rng.choice(DIAGNOSES), "cost": rng.randrange(20, 80)}
                for _ in range(rng.randrange(1, 4))
            ],
        }
    }


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E16",
        title="Path queries over flattened tree documents",
        claim="exact and //-pattern answers equal naive evaluation; the "
        "path dictionary stays schema-sized as documents grow",
        columns=[
            "docs", "distinct_paths", "probe_reads", "store_pages", "correct",
        ],
    )
    for num_docs in (200, 1000, 4000):
        rng = random.Random(17)
        store = make_store()
        documents = [generate_form(rng) for _ in range(num_docs)]
        for document in documents:
            store.add_document(document)
        store.flush()

        expected = sorted(
            i for i, doc in enumerate(documents)
            if doc["patient"]["address"]["city"] == "lyon"
            and any(
                v["diagnosis"] == "flu" for v in doc["patient"]["visits"]
            )
        )
        flash = store.buckets.log.flash
        reads_before = flash.stats.page_reads
        answer = store.find_all([("//city", "lyon"), ("//diagnosis", "flu")])
        probe_reads = flash.stats.page_reads - reads_before
        experiment.add_row(
            num_docs,
            len(store.paths),
            probe_reads,
            store.buckets.flushed_pages,
            answer == expected,
        )
    return experiment


def test_e16_path_queries(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("correct"))
    # The path vocabulary is fixed by the document shape, not the volume.
    paths = experiment.column("distinct_paths")
    assert paths[0] == paths[-1] == 5
    # Probing two paths reads their chains, far below the store size.
    reads = experiment.column("probe_reads")
    pages = experiment.column("store_pages")
    assert all(r < p for r, p in zip(reads, pages))

    store = make_store()
    rng = random.Random(3)
    for _ in range(500):
        store.add_document(generate_form(rng))
    store.flush()
    benchmark(store.find, "//city", "lyon")


def test_e16_bucket_ablation(benchmark):
    """More buckets -> shorter chains -> cheaper probes (same answers)."""
    experiment = Experiment(
        experiment_id="E16-buckets",
        title="Bucket count vs probe cost",
        claim="probe IO shrinks as the path hash space widens",
        columns=["buckets", "probe_reads"],
    )
    rng = random.Random(9)
    documents = [generate_form(rng) for _ in range(1500)]
    answers = {}
    for buckets in (1, 8, 64):
        store = make_store(num_buckets=buckets)
        for document in documents:
            store.add_document(document)
        store.flush()
        flash = store.buckets.log.flash
        before = flash.stats.page_reads
        answers[buckets] = store.find("//diagnosis", "flu")
        experiment.add_row(buckets, flash.stats.page_reads - before)
    print()
    print(render_table(experiment))
    assert answers[1] == answers[8] == answers[64]
    reads = experiment.column("probe_reads")
    assert reads[0] > reads[-1]

    benchmark(lambda: None)
