"""E17 — The inherent difficulty of private graph queries.

Part III's conclusion: *"graph based queries have an inherent difficulty
because the security must be assured all along a path"*. Claims under test:
rounds cannot be collapsed (rounds == path length, always); hiding the
access pattern costs population x rounds contacts (padded mode); the
centralized alternative is one round but leaks the whole graph; answers are
identical across all three evaluations.
"""

from __future__ import annotations

import networkx as nx

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.globalq.graphq import (
    DistributedGraph,
    centralized_reachability,
    private_reachability,
)
from repro.globalq.protocol import TokenFleet
from repro.smc.parties import Channel


def make_graph(num_nodes: int, seed: int = 5):
    graph = nx.connected_watts_strogatz_graph(num_nodes, 4, 0.1, seed=seed)
    adjacency = {node: set(graph.neighbors(node)) for node in graph}
    return DistributedGraph(adjacency, TokenFleet(seed=seed)), graph


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E17",
        title="Private path queries: rounds, contacts and leak",
        claim="rounds == distance (sequential along the path); padded mode "
        "hides the pattern at n x rounds contacts; centralized is 1 round "
        "+ full graph leak",
        columns=[
            "nodes", "distance", "mode", "rounds", "contacts",
            "pattern_leak", "comm_kB",
        ],
    )
    for num_nodes in (40, 120):
        dgraph, graph = make_graph(num_nodes)
        source = 0
        target = max(
            graph.nodes, key=lambda n: nx.shortest_path_length(graph, 0, n)
        )
        distance = nx.shortest_path_length(graph, source, target)
        runs = {
            "private": private_reachability(
                dgraph, source, target, 32, Channel()
            ),
            "padded": private_reachability(
                dgraph, source, target, 32, Channel(), padded=True
            ),
            "centralized": centralized_reachability(
                dgraph, source, target, Channel()
            ),
        }
        for mode, report in runs.items():
            assert report.distance == distance
            leak = (
                "full-graph"
                if mode == "centralized"
                else f"{report.observed_contacts}/{num_nodes} tokens"
            )
            experiment.add_row(
                num_nodes, distance, mode, report.rounds,
                report.token_contacts, leak,
                round(report.comm_bytes / 1024, 1),
            )
    return experiment


def test_e17_private_graph_queries(benchmark):
    experiment = run_and_print(build_experiment)
    rows = experiment.rows
    for row in rows:
        _, distance, mode, rounds, contacts, leak, _ = row
        if mode in ("private", "padded"):
            assert rounds == distance  # sequential along the path
        if mode == "centralized":
            assert rounds == 1
    padded = [row for row in rows if row[2] == "padded"]
    for row in padded:
        nodes, distance, _, rounds, contacts, leak, _ = row
        assert contacts == nodes * rounds  # the uniform-pattern price
        assert leak == f"{nodes}/{nodes} tokens"
    private = [row for row in rows if row[2] == "private"]
    for row in private:
        nodes = row[0]
        observed = int(row[5].split("/")[0])
        assert observed < nodes  # the access-pattern leak is real

    dgraph, _ = make_graph(40)
    benchmark(private_reachability, dgraph, 0, 20, 32, Channel())


def test_e17_rounds_track_distance(benchmark):
    """Rounds grow exactly with distance on a path graph."""
    experiment = Experiment(
        experiment_id="E17-distance",
        title="Rounds vs distance (path graph)",
        claim="one SSI round per hop, no way around it",
        columns=["distance", "rounds"],
    )
    fleet = TokenFleet(seed=7)
    length = 12
    adjacency = {i: set() for i in range(length + 1)}
    for i in range(length):
        adjacency[i].add(i + 1)
        adjacency[i + 1].add(i)
    dgraph = DistributedGraph(adjacency, fleet)
    for target in (2, 5, 9, 12):
        report = private_reachability(dgraph, 0, target, 20, Channel())
        experiment.add_row(target, report.rounds)
    print()
    print(render_table(experiment))
    assert experiment.column("distance") == experiment.column("rounds")

    benchmark(lambda: None)
