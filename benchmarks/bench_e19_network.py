"""E19 — The async [TNP14] protocol over a lossy, churning network.

Claims under test: the :mod:`repro.net` runtime scales a noise-based global
aggregate to thousands of concurrent PDS nodes; with 5-10% message loss and
10% node churn the reliable-delivery layer (retransmission + deduplication)
still returns *exactly* the synchronous driver's answer; and the cost of
unreliability is visible as retransmitted frames, not wrong results.
"""

from __future__ import annotations

import random
import time

from repro.bench.harness import Experiment, run_and_print
from repro.globalq.async_protocol import NOISE_BASED, AsyncGlobalQuery
from repro.globalq.noise import WHITE_NOISE, NoisePlan, NoiseProtocol
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery
from repro.net import ChurnModel, LinkProfile
from repro.workloads.people import CITIES, generate_population

QUERY = AggregateQuery.count(group_by="city", where=(("kind", "profile"),))
NOISE = NoisePlan(WHITE_NOISE, 1.0, tuple(CITIES))
CHURN = ChurnModel(offline_fraction=0.10, mean_online=0.03)

#: (num_pds, loss probability) sweep; the 2000-node 5%-loss row is the
#: acceptance configuration for the subsystem.
SWEEP = [(100, 0.0), (500, 0.05), (2000, 0.05), (5000, 0.10)]


def make_nodes(num_pds: int):
    population = generate_population(num_pds, seed=41, skew=1.1)
    return [PdsNode(i, records) for i, records in enumerate(population)]


def run_pair(num_pds: int, loss: float):
    nodes = make_nodes(num_pds)
    sync_report = NoiseProtocol(
        TokenFleet(3), noise=NOISE, rng=random.Random(1)
    ).run(nodes, QUERY)
    driver = AsyncGlobalQuery(
        NOISE_BASED,
        TokenFleet(3),
        noise=NOISE,
        rng=random.Random(1),
        link=LinkProfile(latency_ms=10.0, jitter_ms=5.0, loss=loss),
        churn=CHURN if loss else None,
        num_tokens=16,
        token_failure_rate=0.1,
        deadline=120.0,
    )
    start = time.perf_counter()
    report = driver.run_sync(nodes, QUERY)
    elapsed = time.perf_counter() - start
    return sync_report, report, elapsed


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E19",
        title="Async noise-based COUNT over a lossy churning network",
        claim="exactly the synchronous answer at every scale; loss and "
        "churn cost retransmissions, never correctness",
        columns=[
            "num_pds", "loss_pct", "exact", "frames", "retrans_pct",
            "dropped", "reassigned", "comm_kB", "wall_s",
        ],
    )
    for num_pds, loss in SWEEP:
        sync_report, report, elapsed = run_pair(num_pds, loss)
        metrics = report.net_metrics
        retrans = (
            100.0
            * (metrics.sent_by_kind["CONTRIB"] - report.tuples_sent)
            / max(1, report.tuples_sent)
        )
        experiment.add_row(
            num_pds,
            round(loss * 100),
            report.result == sync_report.result,
            metrics.frames_sent,
            round(retrans, 1),
            metrics.frames_dropped,
            report.aggregator_retries,
            round(report.comm_bytes / 1024, 1),
            round(elapsed, 2),
        )
    return experiment


def test_e19_network_scale(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("exact"))
    # The acceptance row: >= 2000 nodes, 5% loss, 10% churn completed.
    assert any(
        row[0] >= 2000 and row[1] == 5 for row in experiment.rows
    )
    # Lossy rows really were lossy.
    for row in experiment.rows:
        if row[1] > 0:
            assert row[5] > 0, row

    nodes = make_nodes(300)
    driver = AsyncGlobalQuery(
        NOISE_BASED,
        TokenFleet(3),
        noise=NOISE,
        rng=random.Random(1),
        link=LinkProfile(latency_ms=10.0, jitter_ms=5.0, loss=0.05),
        churn=CHURN,
        token_failure_rate=0.1,
    )
    benchmark(driver.run_sync, nodes, QUERY)
