"""E20 — RAM-charged page cache: IO-time reduction curve.

Claim under test: an LRU page cache whose capacity is charged against the
token's :class:`RamArena` cuts simulated flash read time by >= 30% on
repeated-query workloads at 16 pages, while staying *invisible* to results —
every workload returns bit-identical answers with the cache enabled, and a
0-page cache reproduces the uncached token's exact ``FlashStats`` counts.

Three workloads sweep cache size x access pattern:

* ``tselect`` — the same Tselect-indexed SPJ query executed repeatedly;
* ``search``  — the same top-N TF-IDF query (double-scan: the IDF counting
  pass warms the bucket chains the merge pass re-reads);
* ``reorg``   — build/reorganize/drop churn, the adversarial case for
  invalidation (recycled blocks must never serve stale pages).
"""

from __future__ import annotations

from repro import obs
from repro.bench.harness import (
    Experiment,
    attach_profile,
    profile_requested,
    run_and_print,
    scaled,
)
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.ram import RamArena
from repro.hardware.token import SecurePortableToken
from repro.relational.keyindex import KeyIndex
from repro.relational.query import EmbeddedDatabase
from repro.relational.reorg import reorganize
from repro.search.engine import EmbeddedSearchEngine
from repro.workloads import tpcd
from repro.workloads.documents import DocumentCorpus

RAM_BYTES = 128 * 1024  # the tutorial's "tiny RAM" secure-MCU profile
CACHE_SWEEP = (0, 4, 8, 16)
QUERY_REPEATS = 5
SEARCH_QUERY = "doctor invoice meeting"


def make_token(cache_pages: int, page_size: int = 1024) -> SecurePortableToken:
    base = smart_usb_token()
    profile = HardwareProfile(
        name="bench-token-128k",
        ram_bytes=RAM_BYTES,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(
            page_size=page_size, pages_per_block=32, num_blocks=4096
        ),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    return SecurePortableToken(profile=profile, cache_pages=cache_pages)


def read_time_us(token: SecurePortableToken, reads: int) -> float:
    return reads * token.flash.cost_model.read_us


# ----------------------------------------------------------------------
# Workload: repeated Tselect-indexed SPJ query
# ----------------------------------------------------------------------
def make_db(cache_pages: int) -> EmbeddedDatabase:
    token = make_token(cache_pages)
    db = EmbeddedDatabase(token, tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
    tpcd.load(db, tpcd.generate(scaled(800, 60), seed=31))
    db.create_tselect("CUSTOMER", "Mktsegment")
    db.create_tselect("SUPPLIER", "Name")
    return db


def run_tselect(cache_pages: int):
    db = make_db(cache_pages)
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    reads_before = db.token.flash.stats.page_reads
    rows = None
    hits = misses = 0
    for _ in range(QUERY_REPEATS):
        rows, stats = db.query(query)
        hits += stats.cache.hits
        misses += stats.cache.misses
    reads = db.token.flash.stats.page_reads - reads_before
    return sorted(rows), reads, read_time_us(db.token, reads), hits, misses, db


# ----------------------------------------------------------------------
# Workload: repeated top-N TF-IDF search (double-scan)
# ----------------------------------------------------------------------
def make_engine(cache_pages: int) -> EmbeddedSearchEngine:
    token = make_token(cache_pages, page_size=2048)
    engine = EmbeddedSearchEngine(token, 128)
    corpus = DocumentCorpus(seed=13)
    for document in corpus.generate(scaled(1000, 80), words_per_doc=25):
        engine.add_document(document.text)
    engine.flush()
    return engine


def run_search(cache_pages: int):
    engine = make_engine(cache_pages)
    reads_before = engine.token.flash.stats.page_reads
    hits = misses = 0
    results = None
    for _ in range(QUERY_REPEATS):
        results = engine.search(SEARCH_QUERY, n=10)
        hits += engine.last_search_stats.cache.hits
        misses += engine.last_search_stats.cache.misses
    reads = engine.token.flash.stats.page_reads - reads_before
    answer = [(hit.docid, round(hit.score, 9)) for hit in results]
    return answer, reads, read_time_us(engine.token, reads), hits, misses, engine


# ----------------------------------------------------------------------
# Workload: reorganization churn (build -> reorg -> drop, repeatedly)
# ----------------------------------------------------------------------
def run_reorg(cache_pages: int):
    token = make_token(cache_pages)
    scratch = RamArena(64 * 1024)
    reads_before = token.flash.stats.page_reads
    answer = []
    rounds = scaled(4, 2)
    per_round = scaled(500, 60)
    for round_no in range(rounds):
        index = KeyIndex(f"T.k{round_no}", token.allocator)
        for rowid in range(per_round):
            index.insert((rowid * 7 + round_no) % 29, rowid)
        index.flush()
        for key in range(29):  # warm, then reorganize under the cache
            index.lookup(key)
        sorted_index = reorganize(
            index, token.allocator, scratch, name=f"churn{round_no}"
        )
        index.drop()
        answer.append([sorted_index.lookup(key) for key in range(29)])
        sorted_index.drop()
    reads = token.flash.stats.page_reads - reads_before
    cache = token.page_cache
    hits = cache.stats.hits if cache is not None else 0
    misses = cache.stats.misses if cache is not None else 0
    return answer, reads, read_time_us(token, reads), hits, misses, token


WORKLOADS = {
    "tselect": run_tselect,
    "search": run_search,
    "reorg": run_reorg,
}


# ----------------------------------------------------------------------
# --profile: one fully-traced Tselect workload, token birth to last query
# ----------------------------------------------------------------------
def profiled_tselect():
    """Trace load + index build + repeated queries on a 16-page-cache token.

    Everything the token does happens inside the profile's root span, so the
    per-span ``self_counters`` flash reads sum *exactly* to the token's
    ``FlashStats`` totals — the invariant the E21 attribution test pins.
    """
    token = make_token(16)
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    with obs.profile(token=token) as prof:
        db = EmbeddedDatabase(token, tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
        tpcd.load(db, tpcd.generate(scaled(800, 60), seed=31))
        db.create_tselect("CUSTOMER", "Mktsegment")
        db.create_tselect("SUPPLIER", "Name")
        for _ in range(QUERY_REPEATS):
            db.query(query)
    return prof, token


def attach_tselect_profile(experiment: Experiment) -> None:
    prof, token = profiled_tselect()
    attach_profile(experiment, prof)
    experiment.meta["profile"]["flash_totals"] = {
        "page_reads": token.flash.stats.page_reads,
        "page_programs": token.flash.stats.page_programs,
        "block_erases": token.flash.stats.block_erases,
    }


def build_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="e20",
        title="Page cache: flash read time vs cache size x workload",
        claim=">=30% read-time reduction at 16 pages on repeated queries; "
        "bit-identical answers; cache-0 == uncached FlashStats",
        columns=[
            "workload", "cache_pages", "flash_reads", "read_time_us",
            "hits", "misses", "equal", "ram_high_water_B",
        ],
    )
    experiment.meta["ram_budget_bytes"] = RAM_BYTES
    experiment.meta["query_repeats"] = QUERY_REPEATS
    reductions: dict[str, float] = {}
    for name, run in WORKLOADS.items():
        baseline_answer = None
        baseline_time = None
        for cache_pages in CACHE_SWEEP:
            answer, reads, time_us, hits, misses, owner = run(cache_pages)
            token = getattr(owner, "token", owner)
            if cache_pages == 0:
                baseline_answer, baseline_time = answer, time_us
                equal = True
            else:
                equal = answer == baseline_answer
            experiment.add_row(
                name, cache_pages, reads, time_us, hits, misses, equal,
                token.mcu.ram.high_water,
            )
            if cache_pages == CACHE_SWEEP[-1] and baseline_time:
                reductions[name] = 1.0 - time_us / baseline_time
            if token.page_cache is not None:
                experiment.meta[f"{name}_cache_{cache_pages}"] = {
                    "hits": token.page_cache.stats.hits,
                    "misses": token.page_cache.stats.misses,
                    "evictions": token.page_cache.stats.evictions,
                    "invalidations": token.page_cache.stats.invalidations,
                    "pinned_high_water": token.page_cache.stats.pinned_high_water,
                    "cache_ram_bytes": token.page_cache.ram_bytes,
                }
    experiment.meta["read_time_reduction_at_16_pages"] = {
        name: round(value, 4) for name, value in reductions.items()
    }
    if profile_requested():
        attach_tselect_profile(experiment)
    return experiment


def test_e20_cache_sweep(benchmark):
    experiment = run_and_print(build_experiment)
    assert all(experiment.column("equal"))
    assert all(ram <= RAM_BYTES for ram in experiment.column("ram_high_water_B"))
    reductions = experiment.meta["read_time_reduction_at_16_pages"]
    # The headline acceptance bar: repeated-query workloads save >= 30% of
    # simulated flash read time with a 16-page cache vs cache disabled.
    assert reductions["tselect"] >= 0.30, reductions
    assert reductions["search"] >= 0.30, reductions
    # Churn still benefits (warm lookups before each reorg) and, more
    # importantly, stayed bit-identical through block recycling above.
    assert reductions["reorg"] > 0.0, reductions

    db = make_db(16)
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    benchmark(db.query, query)


def test_e20_cache_zero_reproduces_uncached_flashstats(benchmark):
    """A 0-page cache is a pure pass-through: exact FlashStats parity."""
    cached_db = make_db(0)  # token built with cache_pages=0 -> no cache
    cached_db.token.enable_page_cache(0)  # explicit 0-capacity cache
    plain_db = make_db(0)
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    for _ in range(3):
        cached_rows, _ = cached_db.query(query)
        plain_rows, _ = plain_db.query(query)
        assert sorted(cached_rows) == sorted(plain_rows)
    cached_stats = cached_db.token.flash.stats
    plain_stats = plain_db.token.flash.stats
    assert cached_stats.page_reads == plain_stats.page_reads
    assert cached_stats.page_programs == plain_stats.page_programs
    assert cached_stats.block_erases == plain_stats.block_erases
    # Every lookup was a miss: the pass-through counted but cached nothing.
    assert cached_db.token.page_cache.stats.hits == 0
    assert cached_db.token.page_cache.cached_pages == 0

    benchmark(lambda: None)


def test_e20_cache_ram_charged_within_budget(benchmark):
    """Cache memory comes out of the 128 KB arena, never beyond it."""
    token = make_token(16)
    assert token.page_cache is not None
    assert token.mcu.ram.in_use >= token.page_cache.ram_bytes
    assert token.mcu.ram.budget_bytes == RAM_BYTES
    token.disable_page_cache()
    assert token.mcu.ram.in_use == 0

    benchmark(lambda: None)
