"""E13 — Key-value extension: Bloom-pruned gets and log-only compaction.

The framework applied to the NoSQL model the tutorial names. Claims under
test: a ``get`` touches the summary log plus ~one data page regardless of
store size (unlike the RAM-per-key designs the tutorial reviews, the token
keeps **zero** RAM per key); update-heavy histories are compacted into a
fresh store via external sort with only sequential writes, reclaiming dead
versions block-wise.
"""

from __future__ import annotations

import random

from repro.bench.harness import Experiment, render_table, run_and_print
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.keyvalue.kv import LogKeyValueStore


def make_allocator(blocks=16384) -> BlockAllocator:
    flash = NandFlash(
        FlashGeometry(page_size=256, pages_per_block=16, num_blocks=blocks)
    )
    return BlockAllocator(flash)


def build_get_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E13",
        title="KV get cost vs store size (zero RAM per key)",
        claim="get = summary scan + ~1 data page; data pages touched stay "
        "flat as the store grows; summary log ~10x smaller than data",
        columns=["records", "data_pages", "get_summary_ios", "avg_get_data_ios"],
    )
    for num_records in (2_000, 8_000, 24_000):
        store = LogKeyValueStore(make_allocator(), bits_per_key=16.0)
        for i in range(num_records):
            store.put(f"user:{i:06d}".encode(), b"profile" * 3)
        store.flush()
        # Average over 20 probes: a single key's Bloom positions are fixed
        # across the (equal-sized) page filters, so per-key cost is spiky.
        data_ios = []
        for probe_index in range(0, num_records, num_records // 20):
            probe = f"user:{probe_index:06d}".encode()
            assert store.get(probe) == b"profile" * 3
            data_ios.append(store.last_get.data_pages)
        experiment.add_row(
            num_records,
            store.data_pages,
            store.last_get.summary_pages,
            round(sum(data_ios) / len(data_ios), 2),
        )
    return experiment


def build_compaction_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E13-compaction",
        title="Compaction of update-heavy histories",
        claim="live state preserved exactly; space shrinks by the dead-"
        "version ratio; sequential writes only",
        columns=[
            "writes", "distinct_keys", "pages_before", "pages_after",
            "reclaim_factor", "state_equal",
        ],
    )
    rng = random.Random(4)
    for writes, distinct in ((4_000, 100), (12_000, 100), (12_000, 2_000)):
        allocator = make_allocator()
        store = LogKeyValueStore(allocator, bits_per_key=12.0)
        model: dict[bytes, bytes] = {}
        for i in range(writes):
            key = f"k{rng.randrange(distinct):05d}".encode()
            if rng.random() < 0.1:
                store.delete(key)
                model.pop(key, None)
            else:
                value = f"v{i}".encode()
                store.put(key, value)
                model[key] = value
        store.flush()
        before = store.data_pages
        compacted = store.compact(RamArena(64 * 1024), sort_buffer_bytes=8192)
        store.drop()
        experiment.add_row(
            writes,
            distinct,
            before,
            compacted.data_pages,
            round(before / max(1, compacted.data_pages), 1),
            compacted.items() == model,
        )
    return experiment


def test_e13_get_cost(benchmark):
    experiment = run_and_print(build_get_experiment)
    data_ios = experiment.column("avg_get_data_ios")
    # 1 true page + mean Bloom false positives (pages x fpr stays small).
    assert all(ios <= 5 for ios in data_ios)
    summaries = experiment.column("get_summary_ios")
    pages = experiment.column("data_pages")
    assert all(s < p / 5 for s, p in zip(summaries, pages))

    store = LogKeyValueStore(make_allocator(), bits_per_key=12.0)
    for i in range(4000):
        store.put(f"user:{i:06d}".encode(), b"v")
    store.flush()
    benchmark(store.get, b"user:002000")


def test_e13_compaction(benchmark):
    experiment = run_and_print(build_compaction_experiment)
    assert all(experiment.column("state_equal"))
    factors = experiment.column("reclaim_factor")
    # Update-heavy history (12k writes on 100 keys) reclaims massively;
    # the wide-key run reclaims little (few dead versions).
    assert factors[1] > 20
    assert factors[1] > factors[2]

    benchmark(lambda: None)
