"""E15 — Decentralized social networks: hosting availability & anonymity.

Part I's DSN review (Safebook/PeerSoN/Diaspora*) centres on two challenges:
secure message hosting and anonymous transfer. Claims under test: post
availability under churn follows ``1 - (1-p)^(mirrors+1)`` and rises with
the replication factor; mirrors only ever hold ciphertext; onion relays
see exactly their two neighbours and never the payload or (beyond the first
hop) the source.
"""

from __future__ import annotations

import statistics

from repro.apps.dsn import DecentralizedSocialNetwork
from repro.bench.harness import Experiment, render_table, run_and_print


def build_availability_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E15",
        title="Post availability vs mirrors and churn",
        claim="measured availability tracks 1-(1-p)^(m+1); replication "
        "compensates churn",
        columns=["mirrors", "p_online", "measured", "analytic"],
    )
    network = DecentralizedSocialNetwork(num_users=60, avg_friends=8, seed=5)
    for mirrors in (1, 3, 6):
        post = network.publish(0, "payload", mirrors=mirrors)
        actual_holders = sum(
            1 for user in network.users if (0, post.post_id) in user.mirrored
        )
        for p_online in (0.2, 0.5, 0.8):
            measured = network.availability(
                0, post.post_id, p_online, trials=600
            )
            analytic = 1 - (1 - p_online) ** (actual_holders + 1)
            experiment.add_row(
                actual_holders, p_online, round(measured, 3), round(analytic, 3)
            )
    return experiment


def build_anonymity_experiment() -> Experiment:
    experiment = Experiment(
        experiment_id="E15-routing",
        title="Anonymous transfer: what relays observe",
        claim="payload never visible to relays; source known only to the "
        "first relay; path length ~ graph diameter",
        columns=[
            "messages", "relay_events", "payload_leaks",
            "source_exposures", "median_path",
        ],
    )
    network = DecentralizedSocialNetwork(num_users=80, avg_friends=6, seed=9)
    paths = []
    source_exposures = 0
    for index in range(40):
        source = index % 20
        target = 79 - (index % 20)
        path = network.send_message(source, target, f"msg-{index}")
        paths.append(len(path) - 1)
        observations = network.relay_log[-(len(path) - 2):] if len(path) > 2 else []
        for obs in observations:
            if obs.previous_hop == source:
                source_exposures += 1  # only the first relay borders the src
    payload_leaks = sum(
        1 for obs in network.relay_log if obs.payload_visible
    )
    experiment.add_row(
        40,
        len(network.relay_log),
        payload_leaks,
        source_exposures,
        statistics.median(paths),
    )
    return experiment


def test_e15_availability(benchmark):
    experiment = run_and_print(build_availability_experiment)
    for mirrors, p_online, measured, analytic in experiment.rows:
        assert abs(measured - analytic) < 0.08  # binomial noise, 600 trials
    # More mirrors -> higher availability at fixed churn.
    at_half = [
        (row[0], row[2]) for row in experiment.rows if row[1] == 0.5
    ]
    at_half.sort()
    assert at_half[-1][1] >= at_half[0][1]

    network = DecentralizedSocialNetwork(num_users=30, seed=2)
    post = network.publish(0, "x", mirrors=3)
    benchmark(network.availability, 0, post.post_id, 0.5, 100)


def test_e15_anonymity(benchmark):
    experiment = run_and_print(build_anonymity_experiment)
    row = experiment.rows[0]
    messages, relay_events, payload_leaks, source_exposures, median_path = row
    assert payload_leaks == 0
    # Only the relay adjacent to the source can border it: at most one
    # exposure per message, and that relay still cannot *distinguish*
    # source from forwarder.
    assert source_exposures <= messages
    assert median_path >= 2  # multi-hop in a sparse trust graph

    benchmark(lambda: None)
