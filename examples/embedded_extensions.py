"""The extension tour: time series, key-value and XML-like data on a token.

Part II's conclusion asks for the log-only framework to be extended to
"other data models: XML, time series, ... key-value stores". This example
runs all three extensions side by side on simulated token flash, with the
IO accounting that justifies each design.

Run with:  python examples/embedded_extensions.py
"""

import random

from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.hierarchical.store import HierarchicalStore
from repro.keyvalue.kv import LogKeyValueStore
from repro.timeseries.downsample import downsample
from repro.timeseries.series import TimeSeriesStore


def make_allocator() -> BlockAllocator:
    flash = NandFlash(
        FlashGeometry(page_size=512, pages_per_block=16, num_blocks=8192)
    )
    return BlockAllocator(flash)


def main() -> None:
    rng = random.Random(2014)

    print("== 1. Time series: a year of smart-meter readings ==")
    series = TimeSeriesStore(make_allocator())
    for hour in range(24 * 365):
        series.append(hour, 0.2 + (hour % 24) * 0.05 + rng.random() * 0.1)
    series.flush()
    total = series.range_aggregate(0, 24 * 365, "SUM")
    print(f"points: {series.count}; annual kWh: {total:.0f}")
    march = series.range_aggregate(24 * 59, 24 * 90 - 1, "AVG")
    stats = series.last_range
    print(f"March hourly average: {march:.2f} kWh "
          f"({stats.summary_pages} summary + {stats.data_pages} data pages)")
    monthly = downsample(series, make_allocator(), 24 * 30, aggregate="SUM")
    print(f"downsampled to {monthly.count} monthly totals "
          f"({monthly.data_pages} pages vs {series.data_pages})")

    print("\n== 2. Key-value: settings & counters with update churn ==")
    kv = LogKeyValueStore(make_allocator(), bits_per_key=16.0)
    for day in range(365):
        kv.put(b"config:language", b"fr")
        kv.put(b"counter:logins", str(day * 3).encode())
        kv.put(f"note:{day % 40}".encode(), f"updated day {day}".encode())
    kv.flush()
    print(f"writes: {kv.record_count}; data pages: {kv.data_pages}")
    print(f"counter:logins = {kv.get(b'counter:logins').decode()}")
    compacted = kv.compact(RamArena(64 * 1024), sort_buffer_bytes=4096)
    kv.drop()
    print(f"after compaction: {compacted.data_pages} pages "
          f"({len(compacted.items())} live keys)")

    print("\n== 3. Hierarchical: administrative forms with path queries ==")
    store = HierarchicalStore(make_allocator(), num_buckets=32)
    cities = ["lyon", "paris", "nice"]
    for i in range(500):
        store.add_document(
            {
                "declaration": {
                    "year": 2013 + i % 2,
                    "household": {
                        "city": cities[i % 3],
                        "members": [
                            {"age": 30 + i % 40},
                            {"age": 28 + i % 35},
                        ],
                    },
                    "income": 20_000 + (i * 137) % 30_000,
                }
            }
        )
    store.flush()
    print(f"documents: {store.doc_count}; distinct paths: {store.paths}")
    lyon_2014 = store.find_all(
        [("//city", "lyon"), ("declaration/year", 2014)]
    )
    print(f"2014 declarations from lyon: {len(lyon_2014)}")
    incomes = store.values_at("declaration/income")
    print(f"mean declared income: {sum(incomes) / len(incomes):.0f} EUR")


if __name__ == "__main__":
    main()
