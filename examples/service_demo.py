"""The SSI as a long-lived query service, end to end over the bus.

Everything the service PR adds, in one run: PDS endpoints registered on a
:class:`NodeRuntime` whose churn flips feed straight into the service's
population (bus connectivity *is* membership), two queriers submitting
``QUERY`` frames over the simulated network, admission control shedding a
burst with typed ``REJECT`` frames, the version-exact result cache serving
hits until a churn flip or a citizen's ``forget()`` invalidates them — and
every computed answer re-verified bit-identically against the one-shot
batch driver on the snapshot/seed the service recorded.

Run with:  python examples/service_demo.py
"""

import asyncio
import random

from repro.net.bus import LinkProfile, MessageBus
from repro.net.codec import (
    KIND_REJECT,
    KIND_RESULT,
    Frame,
    KIND_QUERY,
    decode_json_payload,
    encode_json_payload,
)
from repro.net.runtime import ChurnModel, NodeRuntime
from repro.globalq.queries import AggregateQuery
from repro.service import (
    QueryDescriptor,
    ServiceConfig,
    ServicePopulation,
    SsiQueryService,
    run_query,
    standard_mix,
)
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.workloads.people import CITIES, PersonRecord

NUM_PDS = 60


def build_population(runtime: NodeRuntime) -> ServicePopulation:
    """One PDS per runtime endpoint; churn flips follow the bus."""
    rng = random.Random(17)
    nodes = []
    for i in range(NUM_PDS):
        runtime.register_node(f"pds-{i}")
        nodes.append(
            PdsNode(
                i,
                [
                    PersonRecord(
                        {
                            "city": CITIES[rng.randrange(len(CITIES))],
                            "salary": float(1500 + rng.randrange(3000)),
                        }
                    )
                ],
            )
        )
    population = ServicePopulation(nodes, TokenFleet(0))
    population.bind_runtime(
        runtime,
        lambda name: int(name[4:]) if name.startswith("pds-") else None,
    )
    return population


async def querier(
    bus, name: str, requests, replies: list, sequential: bool = False
) -> None:
    """Submit descriptors as QUERY frames; collect RESULT/REJECT replies.

    ``sequential`` waits for each answer before the next request (a polite
    closed-loop client); the default fires the whole batch open-loop.
    """
    endpoint = bus.register(name)
    for seq, descriptor in enumerate(requests):
        body = dict(descriptor.to_dict(), request_id=f"{name}/{seq}")
        await endpoint.send(
            "ssi", Frame(KIND_QUERY, name, seq, encode_json_payload(body))
        )
        if sequential:
            frame = await endpoint.recv(timeout=30.0)
            replies.append((frame.kind, decode_json_payload(frame.payload)))
    if not sequential:
        for _ in requests:
            frame = await endpoint.recv(timeout=30.0)
            replies.append((frame.kind, decode_json_payload(frame.payload)))


async def main() -> None:
    bus = MessageBus(
        rng=random.Random(2), default_link=LinkProfile(latency_ms=5.0)
    )
    runtime = NodeRuntime(
        bus,
        churn=ChurnModel(offline_fraction=0.15, mean_online=10.0),
        rng=random.Random(9),
    )
    population = build_population(runtime)
    service = SsiQueryService(
        population,
        ServiceConfig(
            max_in_flight=2,
            max_queue_depth=4,
            cache_capacity=8,
            record_snapshots=True,
        ),
    )
    ssi_endpoint = bus.register("ssi")

    print(f"== SSI query service over {NUM_PDS} churning PDSs ==")
    service.start()
    server = asyncio.ensure_future(service.serve_endpoint(ssi_endpoint))
    runtime.start_churn()

    mix = standard_mix()
    # Alice walks the four query classes twice: recomputations on the
    # first pass, cache hits on the second — until churn invalidates.
    walk = mix.descriptors() * 2
    replies_a: list = []
    await querier(bus, "alice", walk, replies_a, sequential=True)

    print("\n-- alice: the four [TNP14] classes, twice --")
    for kind, body in replies_a:
        assert kind == KIND_RESULT
        first = next(iter(sorted(body["result"].items())))
        print(
            f"  {body['request_id']}: v{body['version']} "
            f"{'cache-hit ' if body['cached'] else 'computed  '}"
            f"{body['latency_ms']:7.1f} ms   {first[0]}={first[1]:g}"
        )

    # Mallory hammers a burst of distinct queries (salary floors dodge the
    # cache): the bounded queues shed the overflow with typed REJECTs.
    burst = [
        QueryDescriptor(
            "secure-agg",
            AggregateQuery.count(where=(("salary", ">", float(floor)),)),
        )
        for floor in range(1500, 4500, 250)
    ]
    replies_b: list = []
    await querier(bus, "mallory", burst, replies_b)
    rejected = [b for k, b in replies_b if k == KIND_REJECT]
    answered = [b for k, b in replies_b if k == KIND_RESULT]
    print(
        f"\n-- mallory's burst of {len(burst)}: {len(answered)} answered, "
        f"{len(rejected)} shed (queue limit "
        f"{service.config.max_queue_depth}) --"
    )

    # A citizen exercises the right to be forgotten: the cache entry for
    # every aggregate dies with the deletion, the next query recomputes.
    await runtime.stop_churn()  # everyone reconnects: deltas are exact
    before = await service.submit(mix.descriptors()[0])
    removed = population.forget(7)
    after = await service.submit(mix.descriptors()[0])
    print(
        f"\n-- forget(): pds 7 deleted {removed} record(s); "
        f"SUM(salary) {before.result['*']:g} -> {after.result['*']:g} "
        f"(v{before.version} -> v{after.version}, recomputed="
        f"{not after.cached}) --"
    )

    # Every computed answer reproduces bit-identically from its recorded
    # (descriptor, snapshot, seed) triple through the one-shot driver.
    for served in (before, after):
        reference = run_query(
            served.descriptor,
            served.snapshot.nodes,
            population.fleet,
            served.seed,
            service.config.domain,
        )
        assert reference.result == served.result
    print("   bit-identity vs the batch driver: verified")

    server.cancel()
    try:
        await server
    except asyncio.CancelledError:
        pass
    await service.stop()

    snapshot = service.metrics_snapshot()
    latency = snapshot["service.latency_ms"]
    print("\n-- service accounting (repro.obs) --")
    print(
        f"  completed={snapshot['service.completed']} "
        f"shed={snapshot.get('service.shed', 0)} "
        f"cache hits={snapshot['service.cache.hits']} "
        f"invalidations={snapshot['service.cache.invalidations']} "
        f"churn flips={population.churn_events}"
    )
    print(
        f"  latency ms: p50={latency['p50']:.1f} "
        f"p99={latency['p99']:.1f} p999={latency['p999']:.1f}"
    )
    await bus.close()


if __name__ == "__main__":
    asyncio.run(main())
