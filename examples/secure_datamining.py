"""Secure computation, before and after tokens (Part III's argument).

Walks the tutorial's Part III narrative with running code: the classical
toolbox (millionaires' 1982 protocol, Clifton primitives), the token-era
alternative (garbled comparator with token-assisted OT), and the toolkit's
flagship application — association rules over data that never leaves its
sites unmasked.

Run with:  python examples/secure_datamining.py
"""

import random

from repro.crypto.rsa import generate_keypair
from repro.smc.association import mine_centralized, mine_distributed
from repro.smc.garbled import garbled_millionaires
from repro.smc.millionaire import millionaires
from repro.smc.parties import Channel
from repro.smc.secure_sum import ring_secure_sum
from repro.smc.set_ops import make_commutative_keys, secure_set_union


def main() -> None:
    rng = random.Random(7)

    print("== 1. The millionaires' problem, 1982 style (exponential) ==")
    keys = generate_keypair(bits=256, rng=rng)
    for bits in (4, 6, 8):
        domain = 2**bits
        result = millionaires(
            domain // 2, domain // 3, domain, Channel(), rng, keypair=keys
        )
        print(f"  {bits}-bit values: {result.decryptions} RSA decryptions")

    print("\n== 2. The same comparison with a garbled circuit + token OT ==")
    for bits in (4, 8, 16, 32):
        result = garbled_millionaires(
            (1 << bits) - 2, (1 << (bits - 1)), bits, Channel(), rng
        )
        print(f"  {bits:>2}-bit values: {result.crypto.symmetric_ops} symmetric "
              f"ops, {result.crypto.modexps} modexps, "
              f"{result.ot_transfers} token-OT transfers")

    print("\n== 3. Clifton toolkit primitives ==")
    channel = Channel()
    total = ring_secure_sum([120, 340, 85, 410], channel, rng)
    print(f"  secure sum of hospital caseloads: {total.total} "
          f"({channel.stats.messages} masked messages, 0 modexps)")
    union_keys = make_commutative_keys(3, rng, prime_bits=48)
    union = secure_set_union(
        [{"flu", "measles"}, {"flu", "asthma"}, {"covid"}],
        union_keys,
        Channel(),
    )
    print(f"  secure union of diagnoses seen: {sorted(union.items)}")

    print("\n== 4. Association rules without pooling the data ==")
    sites = [
        [{"bread", "butter"}, {"bread", "butter", "milk"}, {"bread"}],
        [{"butter", "milk"}, {"bread", "butter"}, {"bread", "milk"}],
        [{"bread", "butter", "jam"}, {"milk"}, {"bread", "butter"}],
    ]
    pooled = [basket for site in sites for basket in site]
    central = mine_centralized(pooled, 0.3, 0.7)
    channel = Channel()
    report = mine_distributed(sites, 0.3, 0.7, channel, rng)
    match = [r.key() for r in report.rules] == [r.key() for r in central]
    print(f"  {len(report.rules)} rules mined via {report.secure_sums} secure "
          f"sums ({report.comm_bytes} B on the wire)")
    print(f"  identical to centralized Apriori: {match}")
    for rule in report.rules[:3]:
        print(f"    {sorted(rule.antecedent)} -> {sorted(rule.consequent)} "
              f"(support {rule.support:.2f}, confidence {rule.confidence:.2f})")


if __name__ == "__main__":
    main()
