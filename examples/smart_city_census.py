"""Smart-city census: global aggregate queries over a PDS population.

The societal application Part III motivates: a statistics office queries
hundreds of citizens' PDSs through an untrusted cloud (SSI). The example
runs the same GROUP BY query through all three [TNP14] protocol families,
compares their cost/leak profiles, mounts the frequency-analysis attack the
deterministic family is vulnerable to, and shows a cheating SSI being
caught.

Run with:  python examples/smart_city_census.py
"""

import random

from repro.globalq.attacks import frequency_analysis, histogram_flatness
from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.noise import WHITE_NOISE, NoisePlan, NoiseProtocol
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.globalq.ssi import SsiBehavior
from repro.pds.acl import Subject
from repro.pds.population import PdsPopulation
from repro.workloads.people import CITIES


def main() -> None:
    print("== 1. A population of 150 full Personal Data Servers ==")
    population = PdsPopulation(150, seed=9, skew=1.3)
    querier = Subject("statistics-office", "querier")
    nodes = population.nodes_for(querier)  # each PDS applies its policy
    print(f"citizens: {len(population)}; "
          f"records released: {sum(len(n.records) for n in nodes)}")

    query = AggregateQuery.count(group_by="city", where=(("kind", "profile"),))
    truth = plaintext_answer(
        [node.records for node in nodes], query
    )
    print(f"ground truth: { {g: int(v) for g, v in sorted(truth.items())} }")

    print("\n== 2. The three protocol families on the same query ==")
    prior = {city: 1.0 / (rank + 1) for rank, city in enumerate(CITIES)}
    protocols = {
        "secure-aggregation": SecureAggregationProtocol(
            population.fleet, rng=random.Random(1)
        ),
        "noise-based (1x fakes)": NoiseProtocol(
            population.fleet,
            noise=NoisePlan(WHITE_NOISE, 1.0, tuple(CITIES)),
            rng=random.Random(1),
        ),
        "histogram-based (3 buckets)": HistogramProtocol(
            population.fleet, EquiDepthBucketizer(prior, 3),
            rng=random.Random(1),
        ),
    }
    reports = {}
    for name, protocol in protocols.items():
        report = protocol.run(nodes, query)
        reports[name] = report
        exact = all(abs(report.result[g] - v) < 1e-9 for g, v in truth.items())
        leak = max(len(report.ssi_tag_histogram), len(report.ssi_bucket_histogram))
        print(f"  {name:<28} exact={exact}  comm={report.comm_bytes // 1024} kB  "
              f"token-invocations={report.token_invocations}  "
              f"leaked-categories={leak}")

    print("\n== 3. What the curious SSI can infer (frequency analysis) ==")
    clean = NoiseProtocol(population.fleet, rng=random.Random(2)).run(nodes, query)
    mapping = {
        population.fleet.deterministic.encrypt(c.encode()): c for c in CITIES
    }
    attack = frequency_analysis(clean.ssi_tag_histogram, prior, mapping)
    print(f"  deterministic tags, no noise: attacker re-identifies "
          f"{attack.tuple_accuracy:.0%} of tuples")
    noisy = reports["noise-based (1x fakes)"]
    attack_noisy = frequency_analysis(
        noisy.ssi_tag_histogram, prior, mapping,
        true_tuple_counts=dict(clean.ssi_tag_histogram),
    )
    print(f"  with 1x fake tuples:          accuracy drops to "
          f"{attack_noisy.tuple_accuracy:.0%} "
          f"(tag flatness {histogram_flatness(noisy.ssi_tag_histogram):.2f})")

    print("\n== 4. A weakly malicious SSI gets caught ==")
    cheating = SecureAggregationProtocol(
        population.fleet,
        ssi_behavior=SsiBehavior(forge_count=4, duplicate_fraction=0.1),
        partition_size=16,
        rng=random.Random(3),
    ).run(nodes, query)
    print(f"  forged blobs rejected: {cheating.integrity_failures}")
    print(f"  replays detected:      {cheating.duplicates_detected}")
    print(f"  cheating detected:     {cheating.cheating_detected}")


if __name__ == "__main__":
    main()
