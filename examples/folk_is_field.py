"""Folk-IS: personal-data services with zero infrastructure.

A village of 60 participants, each carrying a few-dollar secure token.
Health reports travel to the district registrar only through physical
encounters (delay-tolerant epidemic routing); couriers carry ciphertext
they cannot read. The example measures delivery latency and shows that an
embedded search engine still works at the destination.

Run with:  python examples/folk_is_field.py
"""

import statistics

from repro.apps.folkis import FolkNetwork
from repro.hardware.token import SecurePortableToken
from repro.search.engine import EmbeddedSearchEngine


def main() -> None:
    print("== 1. A 60-person village, no network, one registrar (node 0) ==")
    network = FolkNetwork(num_nodes=60, seed=14, encounters_per_step=10)

    reports = [
        (5, b"vaccination record measles child-3"),
        (17, b"harvest yield maize 1200kg"),
        (33, b"water point contamination suspected east well"),
        (41, b"birth declaration girl 2014-03-02"),
        (58, b"vaccination record polio child-1"),
    ]
    bundles = [network.send(origin, 0, payload) for origin, payload in reports]
    print(f"queued {len(bundles)} reports for the registrar")

    print("\n== 2. Encounters until every report arrives ==")
    steps = network.run_until_delivered()
    latencies = network.delivery_latencies()
    print(f"steps simulated: {steps}")
    print(f"latency (encounter rounds): median={statistics.median(latencies)}, "
          f"max={max(latencies)}")
    sample = bundles[0]
    print(f"in transit, bundle {sample.bundle_id} was ciphertext: "
          f"{sample.blob[:16].hex()}...")

    print("\n== 3. The registrar's token indexes what arrived ==")
    registrar = EmbeddedSearchEngine(SecurePortableToken(owner="registrar"))
    for bundle in bundles:
        registrar.add_document(network.read_payload(bundle).decode())
    registrar.flush()
    for hit in registrar.search("vaccination record", n=3):
        print(f"  doc {hit.docid} score={hit.score:.2f}")

    print("\n== 4. Denser mixing delivers faster ==")
    for density in (5, 20):
        probe = FolkNetwork(num_nodes=60, seed=14, encounters_per_step=density)
        for origin, payload in reports:
            probe.send(origin, 0, payload)
        probe.run_until_delivered()
        lat = probe.delivery_latencies()
        print(f"  encounters/step={density:<3} median latency="
              f"{statistics.median(lat)}")


if __name__ == "__main__":
    main()
