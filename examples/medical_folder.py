"""The personal social-medical folder field experiment, simulated.

Patients keep their folders at home on secure tokens; practitioners carry
smart badges that synchronize homes with the central coordination server
during visits — no network link, no data re-entered. This example drives a
two-week visit schedule and also publishes a k-anonymous prevalence table
through the token protocols.

Run with:  python examples/medical_folder.py
"""

import random

from repro.apps.medical import MedicalDeployment, Practitioner
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.ppdp.generalize import QuasiIdentifier, age_hierarchy, city_hierarchy
from repro.ppdp.kanon import anonymize_with_tokens
from repro.workloads.people import generate_population


def main() -> None:
    print("== 1. Deploy: 12 patients, 3 practitioners, 1 central server ==")
    deployment = MedicalDeployment(
        num_patients=12,
        practitioners=[
            Practitioner("dr-dupont", "doctor"),
            Practitioner("nurse-claire", "nurse"),
            Practitioner("sw-karim", "social-worker"),
        ],
        seed=4,
    )

    print("\n== 2. Two weeks of home visits (badge sync, offline) ==")
    stats = deployment.simulate_rounds(40)
    print(f"visits: {stats.visits}")
    print(f"documents authored: {stats.documents_authored}")
    print(f"documents carried by badges: {stats.badge_documents_moved}")
    print(f"patients converged mid-campaign: "
          f"{stats.converged_patients}/{stats.total_patients}")

    print("\n== 3. Closing badge tour -> full convergence ==")
    deployment.final_sync_all()
    converged = all(
        deployment.patient_converged(p) for p in range(12)
    )
    print(f"all folders consistent with the center: {converged}")
    print(f"central folder size: {len(deployment.central)} documents")

    print("\n== 4. Anonymous epidemiology over patients' PDSs ==")
    health = [records[1] for records in generate_population(40, seed=12)]
    nodes = [PdsNode(i, [record]) for i, record in enumerate(health)]
    qis = [
        QuasiIdentifier("age", age_hierarchy()),
        QuasiIdentifier("city", city_hierarchy()),
    ]
    result = anonymize_with_tokens(
        nodes, TokenFleet(seed=13), qis, "diagnosis", k=4,
        rng=random.Random(1),
    )
    print(f"published {len(result.records)} rows at generalization "
          f"levels {result.levels} (achieved k={result.k_of()})")
    for row in result.records[:5]:
        print(f"  age={row[0]:<7} region={row[1]:<6} diagnosis={row[2]}")


if __name__ == "__main__":
    main()
