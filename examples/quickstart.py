"""Quickstart: one citizen's Personal Data Server, end to end.

Creates Alice's PDS on a simulated secure token, aggregates heterogeneous
personal documents, searches them with the embedded engine, exercises the
access-control rules (doctor vs random app), shares a document under a
travelling usage policy, and finally verifies the tamper-evident audit
trail.

Run with:  python examples/quickstart.py
"""

from repro.errors import AccessDenied
from repro.globalq.protocol import TokenFleet
from repro.pds.acl import Subject
from repro.pds.datamodel import PersonalDocument, bill, energy_reading, medical_note
from repro.pds.server import PersonalDataServer
from repro.pds.sharing import (
    CertificationAuthority,
    ShareReader,
    UsagePolicy,
    create_share,
)


def main() -> None:
    print("== 1. Create Alice's PDS (secure token + default policy) ==")
    pds = PersonalDataServer(owner="alice")
    print(f"token: {pds.token!r}")

    print("\n== 2. Aggregate heterogeneous personal data ==")
    pds.ingest_all(
        [
            medical_note("annual checkup, blood pressure normal", "healthy"),
            medical_note("flu diagnosed, rest prescribed", "flu"),
            bill("electricity invoice march", 84.50, "edf"),
            bill("water invoice march", 31.20, "veolia"),
            energy_reading(kwh=320, month=3),
            PersonalDocument(kind="email", text="meeting agenda project kickoff"),
        ]
    )
    print(f"documents stored: {pds.document_count}")

    print("\n== 3. Embedded search (inside the token, tiny RAM) ==")
    for hit, document in pds.search(pds.owner, "invoice march"):
        print(f"  doc {document.doc_id:>3} [{document.kind}] score={hit.score:.2f}")

    print("\n== 4. Access control: the doctor vs a random app ==")
    doctor = Subject("dr-b", "doctor")
    app = Subject("adtech", "app")
    medical = pds.documents_of_kind("medical")[0]
    print(f"doctor reads medical doc -> {pds.read(doctor, medical.doc_id).text!r}")
    try:
        pds.read(app, medical.doc_id)
    except AccessDenied as exc:
        print(f"app read denied       -> {exc}")

    print("\n== 5. Secure sharing with usage control ==")
    fleet = TokenFleet(seed=1)
    authority = CertificationAuthority(fleet)
    envelope = create_share(
        pds, fleet, [medical.doc_id], "doctor", UsagePolicy(max_reads=1)
    )
    credential = authority.issue(doctor, expires_at=1000)
    reader = ShareReader(fleet, authority, credential)
    shared = reader.open(envelope, now=0)
    print(f"doctor opened share    -> {shared[0].text!r}")
    try:
        reader.open(envelope, now=0)
    except AccessDenied as exc:
        print(f"second read refused    -> {exc}")

    print("\n== 6. Accountability: the audit chain ==")
    for entry in pds.audit.entries()[-4:]:
        verdict = "ALLOW" if entry.allowed else "DENY"
        print(f"  #{entry.sequence} {entry.role:<7} {entry.action:<6} "
              f"{entry.target:<28} {verdict}")
    print(f"audit chain intact: {pds.audit.verify_chain()}")


if __name__ == "__main__":
    main()
