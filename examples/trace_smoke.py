"""One Tselect query + one tiny async census, end to end under the tracer.

This is the CI ``trace-smoke`` workload: it exercises every instrumented
layer in a few seconds — flash page IO through the page cache, the
Tselect/Tjoin probes of an SPJ query, and the [TNP14] collection/
partitioning/aggregation phases over the lossy asyncio network — then
writes both trace artifacts so ``python -m repro.obs.check`` can validate
the schema:

* ``TRACE_smoke.json``  — Chrome ``trace_event``, loadable in Perfetto;
* ``TRACE_smoke.jsonl`` — the line-delimited span log.

Run with:  PYTHONPATH=src python examples/trace_smoke.py [output_dir]
"""

import random
import sys

from repro import obs
from repro.globalq.async_protocol import NOISE_BASED, AsyncGlobalQuery
from repro.globalq.noise import WHITE_NOISE, NoisePlan
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery
from repro.hardware.token import SecurePortableToken
from repro.net import LinkProfile
from repro.relational.query import EmbeddedDatabase
from repro.workloads import tpcd
from repro.workloads.people import CITIES, generate_population


def traced_tselect(token: SecurePortableToken) -> int:
    """Load a small TPC-D-like folder and run one indexed SPJ query."""
    with obs.span("smoke.tselect"):
        db = EmbeddedDatabase(token, tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
        tpcd.load(db, tpcd.generate(80, seed=7))
        db.create_tselect("CUSTOMER", "Mktsegment")
        query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
        rows, _ = db.query(query)
    return len(rows)


def traced_census() -> int:
    """Run a 60-node noise-based census over a lossy simulated network."""
    with obs.span("smoke.census"):
        population = generate_population(60, seed=41, skew=1.1)
        nodes = [PdsNode(i, records) for i, records in enumerate(population)]
        query = AggregateQuery.count(
            group_by="city", where=(("kind", "profile"),)
        )
        driver = AsyncGlobalQuery(
            NOISE_BASED,
            TokenFleet(2),
            noise=NoisePlan(WHITE_NOISE, 1.0, tuple(CITIES)),
            rng=random.Random(1),
            link=LinkProfile(latency_ms=2.0, jitter_ms=1.0, loss=0.02),
            num_tokens=4,
        )
        report = driver.run_sync(nodes, query)
    return report.net_metrics.frames_sent


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    token = SecurePortableToken(cache_pages=16)
    with obs.profile(token=token) as prof:
        rows = traced_tselect(token)
        frames = traced_census()

    paths = prof.write(out_dir, stem="smoke")
    snapshot = prof.snapshot()
    print(f"tselect rows: {rows}; census frames: {frames}")
    print(
        f"spans: {len(prof.tracer.spans)}; "
        f"flash reads: {snapshot['flash.page_reads']}; "
        f"cache hits: {snapshot['cache.hits']}; "
        f"sim time: {prof.tracer.now_us() / 1000:.1f} ms"
    )
    print()
    print(prof.top(limit=12))
    for kind, path in paths.items():
        print(f"{kind}: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
