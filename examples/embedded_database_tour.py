"""Part II tour: the embedded relational engine on one secure token.

Loads the tutorial's TPCD-like schema into a token-resident database, shows
the Keys+Bloom summary scan, reorganizes an index into the B-tree-like
structure (log-only, interruptible), and runs the slide's five-table
select-project-join query through Tselect/Tjoin with IO/RAM accounting.

Run with:  python examples/embedded_database_tour.py
"""

from repro.hardware.ram import RamArena
from repro.hardware.token import SecurePortableToken
from repro.relational.baseline import HashJoinExecutor
from repro.relational.keyindex import KeyIndex
from repro.relational.query import EmbeddedDatabase
from repro.relational.reorg import ReorganizationTask
from repro.workloads import tpcd


def main() -> None:
    print("== 1. Load the TPCD-like database into a secure token ==")
    token = SecurePortableToken(owner="alice")
    db = EmbeddedDatabase(token, tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
    data = tpcd.generate(num_lineitems=1200, seed=7)
    tpcd.load(db, data)
    print(f"rows loaded: {data.total_rows} "
          f"(LINEITEM={len(data.lineitems)}, ORDER={len(data.orders)}, ...)")

    print("\n== 2. Summary scan on a Keys+Bloom index ==")
    db.create_key_index("CUSTOMER", "Mktsegment")
    index = db.attr_indexes[("CUSTOMER", "Mktsegment")]
    index.flush()
    rowids = index.lookup("HOUSEHOLD")
    stats = index.last_lookup
    print(f"HOUSEHOLD customers: {len(rowids)}")
    print(f"IOs: {stats.summary_pages} summary pages + {stats.keys_pages} "
          f"keys pages ({stats.false_positive_pages} false positives)")

    print("\n== 3. Log-only reorganization (interruptible) ==")
    staging = KeyIndex("demo", token.allocator)
    for row in range(8000):
        staging.insert(f"v-{row % 500:04d}", row)
    staging.flush()
    staging.lookup("v-0042")
    before = staging.last_lookup.total_pages
    task = ReorganizationTask(
        staging, token.allocator, RamArena(64 * 1024), sort_buffer_bytes=8192
    )
    steps = 0
    while task.step():
        steps += 1  # the index stays queryable between steps
    reorganized = task.result
    reorganized.lookup("v-0042")
    print(f"reorganized in {steps} background steps")
    print(f"lookup cost: {before} IOs (sequential) -> "
          f"{reorganized.last_lookup.total_pages} IOs "
          f"(tree of height {reorganized.height})")

    print("\n== 4. The tutorial's 5-table SPJ query, pipelined ==")
    db.create_tselect("CUSTOMER", "Mktsegment")
    db.create_tselect("SUPPLIER", "Name")
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    rows, exec_stats = db.query(query)
    print(f"rows out: {exec_stats.rows_out}")
    print(f"flash page reads: {exec_stats.flash_page_reads}")
    print(f"RAM high-water: {exec_stats.ram_high_water} B "
          f"(budget {token.profile.ram_bytes} B)")
    for row in rows[:3]:
        print(f"  {row}")

    print("\n== 5. Cross-check against a RAM hash join ==")
    baseline_ram = RamArena(10**9)
    baseline = HashJoinExecutor(
        db.schema, db.storages, tpcd.ROOT_TABLE, baseline_ram
    ).execute(query)
    print(f"hash join matches: {sorted(rows) == sorted(baseline)}")
    print(f"hash join RAM: {baseline_ram.high_water} B "
          f"(vs pipelined {exec_stats.ram_high_water} B)")


if __name__ == "__main__":
    main()
