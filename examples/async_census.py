"""The census query as thousands of concurrent nodes on a lossy network.

The synchronous drivers in ``examples/smart_city_census.py`` execute the
[TNP14] phases as in-process calls. This example runs the *same* protocol
through the :mod:`repro.net` asyncio runtime: every PDS is its own task,
frames cross a simulated network with latency, jitter and 5% loss, 10% of
nodes are offline at any instant, and a pool of trusted tokens claims
partitions concurrently — some of which walk away mid-partition. The
reliable-delivery layer (retransmit + dedup) makes the answer come out
*exactly* equal to the synchronous run on the same seeds.

Run with:  python examples/async_census.py
"""

import random
import time

from repro.globalq.async_protocol import (
    FAMILIES,
    HISTOGRAM_BASED,
    NOISE_BASED,
    AsyncGlobalQuery,
)
from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.noise import WHITE_NOISE, NoisePlan, NoiseProtocol
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.net import ChurnModel, LinkProfile
from repro.workloads.people import CITIES, generate_population

QUERY = AggregateQuery.count(group_by="city", where=(("kind", "profile"),))
NOISE = NoisePlan(WHITE_NOISE, 1.0, tuple(CITIES))
PRIOR = {city: 1.0 / (rank + 1) for rank, city in enumerate(CITIES)}


def sync_protocol(family: str):
    if family == NOISE_BASED:
        return NoiseProtocol(TokenFleet(3), noise=NOISE, rng=random.Random(1))
    if family == HISTOGRAM_BASED:
        return HistogramProtocol(
            TokenFleet(3), EquiDepthBucketizer(PRIOR, 3), rng=random.Random(1)
        )
    return SecureAggregationProtocol(TokenFleet(3), rng=random.Random(1))


def async_driver(family: str) -> AsyncGlobalQuery:
    return AsyncGlobalQuery(
        family,
        TokenFleet(3),
        noise=NOISE if family == NOISE_BASED else None,
        bucketizer=(
            EquiDepthBucketizer(PRIOR, 3) if family == HISTOGRAM_BASED else None
        ),
        rng=random.Random(1),
        link=LinkProfile(latency_ms=10.0, jitter_ms=5.0, loss=0.05),
        churn=ChurnModel(offline_fraction=0.10, mean_online=0.03),
        num_tokens=16,
        token_failure_rate=0.1,
    )


def main() -> None:
    print("== 1. A 1000-citizen census over an unreliable network ==")
    population = generate_population(1000, seed=41, skew=1.1)
    nodes = [PdsNode(i, records) for i, records in enumerate(population)]
    truth = plaintext_answer(population, QUERY)
    print(f"nodes: {len(nodes)}; link: 10ms +/- 5ms, 5% loss; "
          "churn: 10% offline at any instant; 10% of tokens walk away")

    print("\n== 2. All three families, async == sync ==")
    for family in FAMILIES:
        sync_report = sync_protocol(family).run(nodes, QUERY)
        start = time.perf_counter()
        report = async_driver(family).run_sync(nodes, QUERY)
        elapsed = time.perf_counter() - start
        metrics = report.net_metrics
        print(f"{family:20s} equal={report.result == sync_report.result} "
              f"exact={report.result == truth} "
              f"frames={metrics.frames_sent} "
              f"dropped={metrics.frames_dropped} "
              f"reassigned={report.aggregator_retries} "
              f"wall={elapsed:.2f}s")

    print("\n== 3. What the unreliability cost (noise-based family) ==")
    report = async_driver(NOISE_BASED).run_sync(nodes, QUERY)
    metrics = report.net_metrics
    for key, value in metrics.summary().items():
        print(f"  {key}: {value}")
    retrans = metrics.sent_by_kind["CONTRIB"] - report.tuples_sent
    print(f"  retransmitted CONTRIB frames: {retrans} "
          f"({100.0 * retrans / report.tuples_sent:.1f}% of uploads)")
    print("\nEvery lost frame was retried, every duplicate deduplicated:")
    print(f"  result == plaintext truth: {report.result == truth}")


if __name__ == "__main__":
    main()
